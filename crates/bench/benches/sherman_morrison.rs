//! Criterion micro-benchmark behind ABL-SM: the raw linear-algebra kernels —
//! a Sherman–Morrison rank-one update vs. a fresh Cholesky solve, plus the
//! dot-product kernel every prediction bottoms out in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use velox_bench::FixtureRng;
use velox_linalg::{IncrementalRidge, RidgeProblem, Vector};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for &d in &[100usize, 300, 600] {
        let mut rng = FixtureRng::new(d as u64);
        let xs: Vec<Vector> = (0..32).map(|_| rng.vector(d)).collect();

        group.bench_with_input(BenchmarkId::new("sm_rank_one_update", d), &d, |b, &d| {
            let mut inc = IncrementalRidge::new(d, 1.0);
            let mut i = 0;
            b.iter(|| {
                inc.observe(&xs[i % xs.len()], 1.0).unwrap();
                i += 1;
            });
        });

        group.bench_with_input(BenchmarkId::new("cholesky_solve", d), &d, |b, &d| {
            let mut prob = RidgeProblem::new(d, 1.0);
            for x in &xs {
                prob.observe(x, 1.0).unwrap();
            }
            b.iter(|| prob.solve().unwrap());
        });

        group.bench_with_input(BenchmarkId::new("dot_product", d), &d, |b, _| {
            let a = &xs[0];
            let c2 = &xs[1];
            b.iter(|| a.dot(c2).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_kernels
}
criterion_main!(benches);
