//! Criterion micro-benchmark behind FIG4: topK serving latency, cached vs
//! uncached, for representative dimensions and itemset sizes.

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use velox_batch::AlsConfig;
use velox_bench::FixtureRng;
use velox_core::{Item, Velox, VeloxConfig};
use velox_models::MatrixFactorizationModel;

fn deploy(d: usize, cache_capacity: usize) -> Velox {
    let mut rng = FixtureRng::new(7 + d as u64);
    let mut table = HashMap::new();
    for item in 0..512u64 {
        table.insert(item, rng.vector(d));
    }
    let model = MatrixFactorizationModel::from_table(
        "bench",
        table,
        0.0,
        AlsConfig { rank: d, ..Default::default() },
    )
    .unwrap();
    let mut weights = HashMap::new();
    weights.insert(0u64, rng.vector(d));
    let mut config = VeloxConfig::single_node();
    config.prediction_cache_capacity = cache_capacity;
    Velox::deploy(Arc::new(model), weights, config)
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    for &d in &[2000usize, 5000] {
        let uncached = deploy(d, 1);
        let cached = deploy(d, 64 * 1024);
        for &n in &[100usize, 400] {
            let items: Vec<Item> = (0..n as u64).map(Item::Id).collect();
            group.bench_with_input(
                BenchmarkId::new(format!("uncached_d{d}"), n),
                &n,
                |b, _| {
                    b.iter(|| uncached.top_k(0, &items).unwrap());
                },
            );
            cached.top_k(0, &items).unwrap(); // warm
            group.bench_with_input(
                BenchmarkId::new(format!("cached_d{d}"), n),
                &n,
                |b, _| {
                    b.iter(|| cached.top_k(0, &items).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_topk
}
criterion_main!(benches);
