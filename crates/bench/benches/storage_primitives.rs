//! Criterion micro-benchmark for the storage substrate on the serving hot
//! path: namespace point reads/writes, LRU hits, observation-log appends,
//! and snapshot codec throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use velox_storage::codec::{decode_vector_table, encode_vector_table};
use velox_storage::{LruCache, Namespace, ObservationLog};

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");

    let ns: Namespace<Vec<f64>> = Namespace::new("bench");
    for k in 0..10_000u64 {
        ns.put(k, vec![k as f64; 16]);
    }
    group.bench_function("namespace_get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            let v = ns.get(k % 10_000);
            k += 1;
            v
        });
    });
    group.bench_function("namespace_put", |b| {
        let mut k = 0u64;
        b.iter(|| {
            ns.put(k % 10_000, vec![1.0; 16]);
            k += 1;
        });
    });

    group.bench_function("lru_hit", |b| {
        let mut lru: LruCache<u64, f64> = LruCache::new(1024);
        for k in 0..1024u64 {
            lru.put(k, k as f64);
        }
        let mut k = 0u64;
        b.iter(|| {
            let v = lru.get(&(k % 1024)).copied();
            k += 1;
            v
        });
    });

    group.bench_function("obslog_append", |b| {
        let log = ObservationLog::new();
        let mut k = 0u64;
        b.iter(|| {
            log.append(k % 1000, k % 500, 1.0);
            k += 1;
        });
    });

    let entries: Vec<(u64, Vec<f64>)> = (0..500u64).map(|k| (k, vec![0.5; 64])).collect();
    group.bench_function("codec_encode_500x64", |b| {
        b.iter(|| encode_vector_table(&entries));
    });
    let encoded = encode_vector_table(&entries);
    group.bench_function("codec_decode_500x64", |b| {
        b.iter(|| decode_vector_table(encoded.clone()).unwrap());
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_storage
}
criterion_main!(benches);
