//! Criterion micro-benchmark behind FIG3: one online user-weight update at
//! various model dimensions, naive vs. Sherman–Morrison.
//!
//! The harness binary `fig3_update_latency` prints the full paper-shaped
//! sweep; this bench gives statistically rigorous per-point numbers for the
//! dimensions where both strategies are fast enough for Criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use velox_bench::FixtureRng;
use velox_online::{UpdateStrategy, UserOnlineModel};

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_update");
    for &d in &[50usize, 100, 200, 400] {
        let mut rng = FixtureRng::new(42 + d as u64);
        let xs: Vec<velox_linalg::Vector> = (0..64).map(|_| rng.vector(d)).collect();
        group.bench_with_input(BenchmarkId::new("naive", d), &d, |b, &d| {
            let mut model = UserOnlineModel::new(d, 1.0, UpdateStrategy::Naive);
            let mut i = 0;
            b.iter(|| {
                model.observe(&xs[i % xs.len()], 0.5).unwrap();
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("sherman_morrison", d), &d, |b, &d| {
            let mut model = UserOnlineModel::new(d, 1.0, UpdateStrategy::ShermanMorrison);
            let mut i = 0;
            b.iter(|| {
                model.observe(&xs[i % xs.len()], 0.5).unwrap();
                i += 1;
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_updates
}
criterion_main!(benches);
