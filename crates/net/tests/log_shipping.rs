//! Loopback multi-node integration: end-to-end serving, WAL log
//! shipping, and crash recovery over real TCP sockets.
//!
//! These tests are the acceptance gate for the `velox-net` subsystem:
//!
//! - a 3-node loopback cluster serves predict/observe with routing to the
//!   owning node (both client-side routing and one-hop forwarding);
//! - the TCP backend computes bit-identical scores to the in-process
//!   simulator behind the same `Transport` trait;
//! - killing the owner — even losing its disk — loses **no acknowledged
//!   observation**: replicas hold every shipped record in their own WALs
//!   and recovery replays them in timestamp order;
//! - a scripted `FaultPlan` kills and recovers real servers mid-workload.

use std::sync::Arc;
use std::time::Duration;

use velox_cluster::transport::{SimTransport, Transport};
use velox_cluster::{Cluster, ClusterConfig, FaultAction, FaultEvent, FaultPlan};
use velox_net::{NetCluster, NetClusterConfig, Request, Response};
use velox_storage::ScratchDir;

const DIM: usize = 3;
const LR: f64 = 0.1;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 5) as f64 / 4.0).collect()
}

fn seeded_items() -> Vec<(u64, Vec<f64>)> {
    (0..24u64).map(|i| (i, item_features(i))).collect()
}

fn start_net(wal_root: Option<&ScratchDir>, user_replication: usize) -> NetCluster {
    let cluster = NetCluster::start(NetClusterConfig {
        n_nodes: 3,
        user_replication,
        lr: LR,
        wal_root: wal_root.map(|d| d.path().to_path_buf()),
        workers: 8,
        request_timeout: Duration::from_secs(2),
        ..Default::default()
    })
    .expect("start loopback cluster");
    cluster.publish_item_features(seeded_items());
    cluster
}

/// A deterministic little workload: (uid, item, label) triples.
fn workload(n: usize) -> Vec<(u64, u64, f64)> {
    (0..n as u64).map(|i| (i % 7, i % 24, if (i * i) % 3 == 0 { 1.0 } else { 0.0 })).collect()
}

#[test]
fn three_node_cluster_serves_predict_and_observe_end_to_end() {
    let net = start_net(None, 2);
    for (uid, item, y) in workload(50) {
        let ack = net.observe(uid, item, y).expect("observe acked");
        assert_eq!(ack.node, net.home_of_user(uid), "observe must land at the owner");
        assert_eq!(ack.shipped_to, 1, "one replica must receive the record before the ack");
    }
    for uid in 0..7u64 {
        let p = net.predict(uid, (uid * 3) % 24).expect("predict");
        assert_eq!(p.node, net.home_of_user(uid), "predict must be served by the owner");
        assert!(!p.routed, "client-side routing hits the owner directly");
        assert!(!p.cold_start, "observed users must not be cold");
        assert!(p.score.is_finite());
    }
}

#[test]
fn non_owner_forwards_one_hop_to_the_owner() {
    let net = start_net(None, 1);
    net.observe(5, 2, 1.0).expect("observe");
    let home = net.home_of_user(5);
    let other = (home + 1) % 3;
    let direct = net.client(home).unwrap();
    let via = net.client(other).unwrap();

    let at_home = direct
        .call(&Request::Predict { uid: 5, item_id: 2, no_forward: false, epoch: 0 })
        .expect("direct call");
    let via_other = via
        .call(&Request::Predict { uid: 5, item_id: 2, no_forward: false, epoch: 0 })
        .expect("routed call");
    match (at_home, via_other) {
        (
            Response::Predicted { score: a, forwarded: f1, node: n1, .. },
            Response::Predicted { score: b, forwarded: f2, node: n2, .. },
        ) => {
            assert_eq!(a, b, "forwarded answer must match the owner's");
            assert!(!f1, "owner answers locally");
            assert!(f2, "non-owner must take the forwarding hop");
            assert_eq!(n1, home as u32);
            assert_eq!(n2, home as u32, "forwarded reply reports the owner as the scorer");
        }
        other => panic!("unexpected responses: {other:?}"),
    }
}

/// The same single-threaded workload through the simulator and through
/// real sockets must produce bit-identical scores: both backends share
/// routing (same salts), the LMS update routine, and the accumulation
/// order.
#[test]
fn tcp_backend_agrees_with_in_process_simulator() {
    let sim_cluster = Arc::new(Cluster::new(ClusterConfig {
        n_nodes: 3,
        user_replication: 2,
        item_replication: 3,
        ..Default::default()
    }));
    for (item, x) in seeded_items() {
        sim_cluster.put_item_features(item, x);
    }
    let sim = SimTransport::new(sim_cluster, LR);
    let net = start_net(None, 2);

    for (uid, item, y) in workload(120) {
        let a = sim.observe(uid, item, y).expect("sim observe");
        let b = net.observe(uid, item, y).expect("net observe");
        assert_eq!(a.node, b.node, "both backends must route uid {uid} to the same owner");
    }
    for uid in 0..7u64 {
        for item in 0..24u64 {
            let a = sim.predict(uid, item).expect("sim predict");
            let b = net.predict(uid, item).expect("net predict");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "backends disagree at uid {uid} item {item}: sim {} vs net {}",
                a.score,
                b.score
            );
        }
    }
}

/// Kill the owner of a user *and destroy its disk*. Every acknowledged
/// observation must survive in the replica's shipped log, serve reads
/// during the outage (failover), and flow back into the reborn owner.
#[test]
fn kill_owner_lose_disk_loses_no_acknowledged_observation() {
    let scratch = ScratchDir::new("velox-net-shipping");
    let net = start_net(Some(&scratch), 2);

    let uid = 4u64;
    let owner = net.home_of_user(uid);
    let mut acked = Vec::new();
    for i in 0..30u64 {
        let item = i % 24;
        let y = if i % 2 == 0 { 1.0 } else { 0.0 };
        let ack = net.observe(uid, item, y).expect("observe acked");
        assert_eq!(ack.shipped_to, 1, "ack implies the record reached the replica");
        acked.push(ack.ts);
    }
    let before = net.fetch_weights(uid).expect("fetch").expect("user has weights");

    net.kill_node_lose_disk(owner);

    // Failover: the replica serves reads from its shipped state.
    let p = net.predict(uid, 3).expect("failover predict");
    assert!(p.routed, "predict must fail over off the dead owner");
    assert_ne!(p.node, owner);

    // Observes keep working during the outage (acting owner = replica).
    let outage_ack = net.observe(uid, 5, 1.0).expect("observe during outage");
    assert_ne!(outage_ack.node, owner);
    assert!(
        outage_ack.ts > *acked.iter().max().unwrap(),
        "acting owner must assign timestamps above everything it has seen"
    );

    // Recover with an empty disk: everything must come back over PullLog.
    let pulled = net.recover_node(owner).expect("recovery");
    assert!(pulled as usize >= acked.len(), "recovery pulled {pulled} < {} acked", acked.len());

    // The reborn owner serves again, with state that includes every
    // acknowledged record (the pre-kill ones and the outage one).
    let p = net.predict(uid, 3).expect("predict after recovery");
    assert_eq!(p.node, owner, "home node serves again after recovery");
    assert!(!p.routed);
    let after = net.fetch_weights(uid).expect("fetch").expect("weights survived");
    assert_eq!(after.len(), before.len());
    for v in &after {
        assert!(v.is_finite());
    }

    // Stronger: replay the acked timestamps out of the reborn owner's log.
    let client = net.client(owner).unwrap();
    match client.call(&Request::PullLog { from_ts: 0 }).expect("pull log") {
        Response::Log { records } => {
            let have: std::collections::HashSet<u64> =
                records.iter().filter(|r| r.uid == uid).map(|r| r.timestamp).collect();
            for ts in &acked {
                assert!(have.contains(ts), "acknowledged record ts={ts} lost in recovery");
            }
            assert!(have.contains(&outage_ack.ts), "outage-time record lost in recovery");
        }
        other => panic!("unexpected reply {other:?}"),
    }
}

/// Recovery with an intact disk replays the local WAL and only tops up
/// from peers (records acknowledged while the node was down).
#[test]
fn recovery_with_local_wal_replays_and_tops_up() {
    let scratch = ScratchDir::new("velox-net-walrec");
    let net = start_net(Some(&scratch), 2);

    let uid = 9u64;
    let owner = net.home_of_user(uid);
    for i in 0..10u64 {
        net.observe(uid, i % 24, 1.0).expect("observe");
    }
    net.kill_node(owner); // disk survives
    let during = net.observe(uid, 1, 0.0).expect("observe during outage");
    assert_ne!(during.node, owner);
    let pulled = net.recover_node(owner).expect("recover");
    // Only the records shipped while down need pulling; the first ten
    // replay from the local WAL (dedup may still re-offer them).
    assert!(pulled >= 1, "the outage-time record must come back from the replica");
    let p = net.predict(uid, 1).expect("predict after recovery");
    assert_eq!(p.node, owner);
}

/// A scripted fault plan fires against the request clock and kills /
/// recovers *real servers*; the workload keeps being served throughout.
#[test]
fn scripted_fault_plan_runs_over_real_sockets() {
    let scratch = ScratchDir::new("velox-net-chaos");
    let net = start_net(Some(&scratch), 2);

    // Find the owner of uid 0 and script its death and rebirth.
    let victim = net.home_of_user(0);
    net.install_fault_plan(FaultPlan::scripted(vec![
        FaultEvent { at_request: 20, node: victim, action: FaultAction::Kill },
        FaultEvent { at_request: 40, node: victim, action: FaultAction::Recover },
    ]));

    let mut served = 0usize;
    for i in 0..60u64 {
        let uid = i % 5;
        if net.observe(uid, i % 24, 1.0).is_ok() {
            served += 1;
        }
    }
    net.clear_fault_plan();
    assert_eq!(served, 60, "with replication 2 every observe must be acked across the kill window");
    assert_eq!(
        net.node_health(victim),
        velox_cluster::NodeHealth::Up,
        "scripted recovery must have fired"
    );
    // The victim served its partition again after recovery.
    let p = net.predict(0, 0).expect("predict after scripted recovery");
    assert!(p.score.is_finite());
}
