//! Seeded corruption fuzz for the `velox-net` frame codec and RPC
//! decoder, mirroring `velox-storage`'s `codec_fuzz` battery.
//!
//! A frame arrives off a socket, so the codec is a trust boundary against
//! the network: torn frames (peer died mid-write), bit rot (flips), and
//! hostile length prefixes. The decoder must always return an error —
//! never panic, never hand corrupted bytes to the RPC layer, and never
//! let a corrupt length allocate unbounded memory. The CRC-32 header
//! makes the single-bit-flip guarantee unconditional for the payload.

use std::io::Cursor;

use velox_data::VeloxRng;
use velox_net::frame::{
    read_frame, read_frame_ext, write_frame, write_frame_ext, FrameError, FrameMeta,
};
use velox_net::rpc::{build_chunk, chunk_crc, verify_chunk, Request, Response};
use velox_obs::TraceContext;
use velox_storage::Observation;

const SEED: u64 = 0x5EED_F4A3;
const TRUNCATIONS: usize = 300;
const BIT_FLIPS: usize = 600;
const GARBAGE_BLOBS: usize = 200;

fn random_payload(rng: &mut VeloxRng) -> Vec<u8> {
    let len = (rng.below(512) + 1) as usize;
    (0..len).map(|_| rng.below(256) as u8).collect()
}

fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, payload).expect("encode");
    buf
}

/// Decodes one frame and (when requested) checks it matches `expect`.
fn decodes_to(bytes: &[u8], expect: Option<&[u8]>) -> bool {
    match read_frame(&mut Cursor::new(bytes)) {
        Ok(p) => {
            if let Some(want) = expect {
                assert_eq!(p, want, "frame decoded to different bytes than were sent");
            }
            true
        }
        Err(_) => false,
    }
}

#[test]
fn frames_survive_truncation_battery() {
    let mut rng = VeloxRng::seed_from(SEED);
    for round in 0..4 {
        let payload = random_payload(&mut rng);
        let raw = encode_frame(&payload);
        assert!(decodes_to(&raw, Some(&payload)), "round {round}: pristine frame must decode");
        for t in 0..TRUNCATIONS {
            let cut = if t == 0 { 0 } else { (rng.below(raw.len() as u64 - 1) + 1) as usize };
            if cut == raw.len() {
                continue;
            }
            assert!(
                !decodes_to(&raw[..cut], None),
                "round {round}: accepted a {cut}-byte truncation of {} bytes",
                raw.len()
            );
        }
    }
}

#[test]
fn frames_survive_bit_flip_battery() {
    let mut rng = VeloxRng::seed_from(SEED ^ 1);
    for round in 0..4 {
        let payload = random_payload(&mut rng);
        let raw = encode_frame(&payload);
        for _ in 0..BIT_FLIPS {
            let byte = rng.below(raw.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            let mut flipped = raw.clone();
            flipped[byte] ^= 1 << bit;
            // A flip in the payload or checksum must be rejected. A flip
            // in the length prefix may still frame correctly only if the
            // resulting bytes pass the checksum — which requires the
            // payload to be unchanged; assert equality whenever accepted.
            if decodes_to(&flipped, Some(&payload)) {
                panic!(
                    "round {round}: accepted a bit flip at byte {byte} bit {bit} \
                     (decode matched, so the flip was silently absorbed)"
                );
            }
        }
    }
}

#[test]
fn oversized_lengths_fail_fast_without_allocation() {
    let mut rng = VeloxRng::seed_from(SEED ^ 2);
    for _ in 0..100 {
        // Length prefixes from MAX_FRAME_LEN+1 up to u32::MAX.
        let len = velox_net::MAX_FRAME_LEN as u64 + 1 + rng.below(u32::MAX as u64 / 2);
        let mut buf = Vec::new();
        buf.extend_from_slice(&(len as u32).to_be_bytes());
        buf.extend_from_slice(&rng.next_u64().to_be_bytes()[..4]);
        buf.extend(std::iter::repeat_n(0u8, 16));
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(FrameError::TooLarge(_) | FrameError::Corrupt(_))
        ));
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = VeloxRng::seed_from(SEED ^ 3);
    for _ in 0..GARBAGE_BLOBS {
        let len = rng.below(128) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        // Both layers must reject arbitrary bytes without panicking. The
        // frame layer may accept a garbage blob only in the astronomically
        // unlikely case the CRC matches; the RPC decoders below must not
        // panic either way.
        let _ = read_frame(&mut Cursor::new(&garbage));
        let _ = Request::decode(&garbage);
        let _ = Response::decode(&garbage);
    }
}

fn random_ctx(rng: &mut VeloxRng) -> TraceContext {
    TraceContext {
        trace_id: rng.next_u64() | 1,
        span_id: rng.next_u64() | 1,
        sampled: rng.below(2) == 1,
    }
}

fn encode_traced_frame(payload: &[u8], ctx: &TraceContext) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame_ext(&mut buf, payload, Some(ctx)).expect("encode traced");
    buf
}

/// Decodes one extended frame, asserting payload and metadata match when
/// the decode is accepted.
fn ext_decodes_to(bytes: &[u8], expect: Option<(&[u8], &FrameMeta)>) -> bool {
    match read_frame_ext(&mut Cursor::new(bytes)) {
        Ok((p, meta)) => {
            if let Some((want, want_meta)) = expect {
                assert_eq!(p, want, "traced frame decoded to different payload bytes");
                assert_eq!(&meta, want_meta, "traced frame decoded to different metadata");
            }
            true
        }
        Err(_) => false,
    }
}

/// The truncation battery over frames carrying a header-extension trace
/// TLV: every proper prefix must be rejected, exactly like plain frames.
#[test]
fn traced_frames_survive_truncation_battery() {
    let mut rng = VeloxRng::seed_from(SEED ^ 4);
    for round in 0..4 {
        let payload = random_payload(&mut rng);
        let ctx = random_ctx(&mut rng);
        let meta = FrameMeta { trace: Some(ctx), unknown_exts: 0 };
        let raw = encode_traced_frame(&payload, &ctx);
        assert!(
            ext_decodes_to(&raw, Some((&payload, &meta))),
            "round {round}: pristine traced frame must decode"
        );
        for t in 0..TRUNCATIONS {
            let cut = if t == 0 { 0 } else { (rng.below(raw.len() as u64 - 1) + 1) as usize };
            if cut == raw.len() {
                continue;
            }
            assert!(
                !ext_decodes_to(&raw[..cut], None),
                "round {round}: accepted a {cut}-byte truncation of a {}-byte traced frame",
                raw.len()
            );
        }
    }
}

/// The bit-flip battery over traced frames. The extension section — the
/// flag bit, `ext_len`, and the TLV bytes — is covered by the same CRC as
/// the payload, so a flip anywhere (including clearing `FLAG_EXT` itself,
/// which re-frames the bytes) must never be silently absorbed: either the
/// read errors, or it reproduces the exact payload *and* trace context.
#[test]
fn traced_frames_survive_bit_flip_battery() {
    let mut rng = VeloxRng::seed_from(SEED ^ 5);
    for round in 0..4 {
        let payload = random_payload(&mut rng);
        let ctx = random_ctx(&mut rng);
        let meta = FrameMeta { trace: Some(ctx), unknown_exts: 0 };
        let raw = encode_traced_frame(&payload, &ctx);
        for _ in 0..BIT_FLIPS {
            let byte = rng.below(raw.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            let mut flipped = raw.clone();
            flipped[byte] ^= 1 << bit;
            if ext_decodes_to(&flipped, Some((&payload, &meta))) {
                panic!(
                    "round {round}: accepted a bit flip at byte {byte} bit {bit} \
                     of a traced frame (decode matched, so the flip was silently absorbed)"
                );
            }
        }
    }
}

/// Full single-bit-flip coverage of one traced RPC frame: every flip is
/// rejected, or decodes to the identical payload and trace context.
#[test]
fn traced_rpc_frame_rejects_every_single_bit_flip() {
    let ctx = TraceContext {
        trace_id: 0xfeed_beef_cafe_f00d,
        span_id: 0x0123_4567_89ab_cdef,
        sampled: true,
    };
    let payload =
        Request::Observe { uid: 3, item_id: 9, y: 0.75, no_forward: true, obs_id: 42, epoch: 0 }
            .encode();
    let raw = encode_traced_frame(&payload, &ctx);
    let meta = FrameMeta { trace: Some(ctx), unknown_exts: 0 };
    for byte in 0..raw.len() {
        for bit in 0..8 {
            let mut flipped = raw.clone();
            flipped[byte] ^= 1 << bit;
            if let Ok((p, m)) = read_frame_ext(&mut Cursor::new(&flipped)) {
                assert_eq!(
                    (p, m),
                    (payload.clone(), meta),
                    "flip at byte {byte} bit {bit} absorbed"
                );
            }
        }
    }
}

/// Every RPC message survives full single-bit-flip coverage of its frame:
/// the flip is either rejected at the frame layer or (impossible with
/// CRC-32, but pinned anyway) decodes to the identical message.
#[test]
fn rpc_frames_reject_every_single_bit_flip() {
    let messages = [
        Request::Predict { uid: 77, item_id: 12, no_forward: false, epoch: 3 }.encode(),
        Request::Observe { uid: 3, item_id: 9, y: 0.75, no_forward: true, obs_id: 42, epoch: 0 }
            .encode(),
        Request::ShipLog {
            records: vec![Observation { uid: 1, item_id: 2, y: 0.5, timestamp: 42 }],
            obs_ids: vec![9],
        }
        .encode(),
        Response::Predicted { score: 0.25, node: 1, forwarded: true, cold_start: false }.encode(),
        Response::Observed { node: 0, ts: 7, shipped_to: 1 }.encode(),
    ];
    for payload in &messages {
        let raw = encode_frame(payload);
        for byte in 0..raw.len() {
            for bit in 0..8 {
                let mut flipped = raw.clone();
                flipped[byte] ^= 1 << bit;
                if let Ok(decoded) = read_frame(&mut Cursor::new(&flipped)) {
                    assert_eq!(
                        &decoded, payload,
                        "frame layer accepted altered bytes as different payload"
                    );
                }
            }
        }
    }
}

/// Chaos corruptor: a multi-frame stream (the shape a persistent RPC
/// connection carries) hit mid-stream by truncation, bit flips, and
/// frame duplication — the same injections `LinkChaos` performs on live
/// sockets. The connection must fail closed: every frame that decodes
/// at all must be byte-identical to one that was sent, in order; the
/// first corrupted frame kills the rest of the stream (no resync onto a
/// payload that was never sent).
#[test]
fn chaos_corrupted_streams_fail_closed_never_misparse() {
    let mut rng = VeloxRng::seed_from(SEED ^ 6);
    for _ in 0..120 {
        // A stream of 2–5 frames, with one duplicated mid-stream the way
        // the chaos client re-sends a frame.
        let n = (rng.below(4) + 2) as usize;
        let payloads: Vec<Vec<u8>> = (0..n).map(|_| random_payload(&mut rng)).collect();
        let mut sent: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let dup_at = (rng.below(n as u64)) as usize;
        sent.insert(dup_at, sent[dup_at]);

        let mut stream = Vec::new();
        for p in &sent {
            stream.extend_from_slice(&encode_frame(p));
        }

        // One mid-stream injury: truncate the tail, or flip a bit.
        let injured = match rng.below(3) {
            0 => {
                let cut = (rng.below(stream.len() as u64 - 1) + 1) as usize;
                stream[..cut].to_vec()
            }
            1 => {
                let byte = rng.below(stream.len() as u64) as usize;
                let mut s = stream.clone();
                s[byte] ^= 1 << (rng.below(8) as u8);
                s
            }
            _ => stream.clone(), // duplication alone must decode cleanly
        };

        let mut cursor = Cursor::new(injured.as_slice());
        let mut decoded = 0usize;
        // Fail closed: the first undecodable frame ends the connection;
        // nothing after it is interpreted.
        while let Ok(frame) = read_frame(&mut cursor) {
            assert!(decoded < sent.len(), "stream yielded more frames than were sent");
            assert_eq!(
                frame, sent[decoded],
                "frame {decoded} decoded to bytes that were never sent"
            );
            decoded += 1;
        }
        assert!(decoded <= sent.len());
    }
}

/// The membership-plane wire surface for the batteries below: map
/// exchange (`GetMap`/`InstallMap`/`Map`) and the migration checkpoint
/// stream (`PullPartition`/`PushPartition`/`Partition`).
fn sample_map() -> velox_cluster::PartitionMap {
    velox_cluster::PartitionMap::bootstrap(3, 2, 0xC0FFEE)
        .expect("bootstrap")
        .with_member(3)
        .expect("join")
}

/// Every migration/epoch RPC rejects every truncation at the decode
/// layer — a torn checkpoint stream or cutover frame must fail closed,
/// never install a partial map or a partial weights batch.
#[test]
fn migration_rpcs_reject_every_truncation() {
    let requests = [
        Request::GetMap.encode(),
        Request::InstallMap { map: sample_map() }.encode(),
        Request::PullPartition { partition: 7 }.encode(),
        Request::PushPartition { entries: vec![(42, vec![0.5, 0.25]), (7, vec![1.0])] }.encode(),
    ];
    for raw in &requests {
        assert!(Request::decode(raw).is_ok(), "pristine request must decode");
        for cut in 0..raw.len() {
            assert!(
                Request::decode(&raw[..cut]).is_err(),
                "accepted a {cut}-byte truncation of a {}-byte request",
                raw.len()
            );
        }
    }
    let responses = [
        Response::Map { map: sample_map() }.encode(),
        Response::Partition { entries: vec![(1, vec![1.0, 0.5]), (9, vec![0.25])] }.encode(),
    ];
    for raw in &responses {
        assert!(Response::decode(raw).is_ok(), "pristine response must decode");
        for cut in 0..raw.len() {
            assert!(
                Response::decode(&raw[..cut]).is_err(),
                "accepted a {cut}-byte truncation of a {}-byte response",
                raw.len()
            );
        }
    }
}

/// A bit flip inside an epoch stamp is never silently absorbed: the
/// decoder either rejects the message or surfaces a *different* epoch,
/// which the node-side `admit_epoch` check then refuses. (End-to-end the
/// frame CRC already rejects the flip; this pins the decode layer too.)
#[test]
fn bit_flipped_epochs_are_never_silently_absorbed() {
    let stamped = [
        Request::Predict { uid: 9, item_id: 4, no_forward: true, epoch: 41 }.encode(),
        Request::Observe { uid: 9, item_id: 4, y: 0.5, no_forward: false, obs_id: 77, epoch: 41 }
            .encode(),
    ];
    for raw in &stamped {
        let orig = Request::decode(raw).expect("pristine");
        // The epoch stamp is the trailing u64 of both requests.
        for byte in raw.len() - 8..raw.len() {
            for bit in 0..8 {
                let mut flipped = raw.clone();
                flipped[byte] ^= 1 << bit;
                if let Ok(m) = Request::decode(&flipped) {
                    assert_ne!(m, orig, "flip at byte {byte} bit {bit} absorbed");
                }
            }
        }
    }
    // The cutover frame leads with the map's epoch (tag, then u64).
    let raw = Request::InstallMap { map: sample_map() }.encode();
    let orig = Request::decode(&raw).expect("pristine");
    for byte in 1..9 {
        for bit in 0..8 {
            let mut flipped = raw.clone();
            flipped[byte] ^= 1 << bit;
            if let Ok(m) = Request::decode(&flipped) {
                assert_ne!(m, orig, "map epoch flip at byte {byte} bit {bit} absorbed");
            }
        }
    }
}

/// A realistic chunk stream for the chunked-transfer batteries: a
/// partition's uid-ascending entries split into several bounded chunks.
fn sample_chunk_stream() -> (Vec<(u64, Vec<f64>)>, Vec<Response>) {
    // No ±0.0 weights: `-0.0 == 0.0` under f64 equality, which would let
    // a sign-bit flip masquerade as a pristine decode in the batteries.
    let entries: Vec<(u64, Vec<f64>)> = (0..9u64)
        .map(|i| (i * 7 + 2, vec![i as f64 * 0.5 + 0.125, -(i as f64) - 0.25, 1.0]))
        .collect();
    let mut chunks = Vec::new();
    let mut cursor = 0u64;
    loop {
        let chunk = build_chunk(&entries, cursor, 128);
        let Response::PartitionChunk { next_cursor, done, .. } = &chunk else { unreachable!() };
        let (nc, d) = (*next_cursor, *done);
        chunks.push(chunk);
        cursor = nc;
        if d {
            break;
        }
    }
    assert!(chunks.len() >= 3, "the battery needs a multi-chunk stream");
    (entries, chunks)
}

fn chunk_fields(r: &Response) -> (Vec<(u64, Vec<f64>)>, u64, bool, u32) {
    let Response::PartitionChunk { entries, next_cursor, done, crc } = r else {
        panic!("not a chunk: {r:?}")
    };
    (entries.clone(), *next_cursor, *done, *crc)
}

/// Every chunked-transfer RPC rejects every truncation at the decode
/// layer — a torn chunk frame fails closed, never delivering a partial
/// entry batch or a half-parsed cursor.
#[test]
fn chunked_transfer_rpcs_reject_every_truncation() {
    let (_, chunks) = sample_chunk_stream();
    let pull = Request::PullPartitionChunk { partition: 7, cursor: 23, max_bytes: 4096 }.encode();
    for cut in 0..pull.len() {
        assert!(
            Request::decode(&pull[..cut]).is_err(),
            "accepted a {cut}-byte truncation of a {}-byte chunk pull",
            pull.len()
        );
    }
    for raw in chunks.iter().map(Response::encode) {
        for cut in 0..raw.len() {
            assert!(
                Response::decode(&raw[..cut]).is_err(),
                "accepted a {cut}-byte truncation of a {}-byte chunk response",
                raw.len()
            );
        }
    }
}

/// Seeded bit-flip battery over encoded chunk frames: any flip that the
/// decode layer accepts must fail [`verify_chunk`] — the receiver-side
/// admission check — unless the decode reproduced the chunk exactly. A
/// flipped cursor, CRC, done flag, or weight byte never reaches the
/// destination's weight table (reject-before-apply).
#[test]
fn bit_flipped_chunk_fields_reject_before_apply() {
    let mut rng = VeloxRng::seed_from(SEED ^ 8);
    let (_, chunks) = sample_chunk_stream();
    let mut cursor = 0u64;
    for chunk in &chunks {
        let raw = chunk.encode();
        let pristine = chunk_fields(chunk);
        for _ in 0..BIT_FLIPS {
            let byte = rng.below(raw.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            let mut flipped = raw.clone();
            flipped[byte] ^= 1 << bit;
            let Ok(decoded) = Response::decode(&flipped) else { continue };
            let Response::PartitionChunk { entries, next_cursor, done, crc } = decoded else {
                continue; // re-framed to another message: callers reject the type
            };
            if (entries.clone(), next_cursor, done, crc) == pristine {
                panic!("flip at byte {byte} bit {bit} decoded back to the pristine chunk");
            }
            assert!(
                verify_chunk(cursor, &entries, next_cursor, done, crc).is_some(),
                "flip at byte {byte} bit {bit} passed admission — would apply corrupt state"
            );
        }
        cursor = pristine.1;
    }
}

/// Duplicated and reordered chunk frames are rejected before apply,
/// while an exact same-cursor replay (the resume path after a dropped
/// link) is admitted — it is idempotent by construction.
#[test]
fn duplicated_and_reordered_chunk_frames_reject_before_apply() {
    let (_, chunks) = sample_chunk_stream();
    let (e0, nc0, d0, crc0) = chunk_fields(&chunks[0]);
    let (e1, nc1, d1, crc1) = chunk_fields(&chunks[1]);

    // Exact replay at the same cursor: admitted (resume after a fault).
    assert!(verify_chunk(0, &e0, nc0, d0, crc0).is_none());
    assert!(verify_chunk(0, &e0, nc0, d0, crc0).is_none());

    // Duplicated frame arriving after the stream advanced: its uids sit
    // below the cursor — a double-apply attempt — and must be rejected.
    let why = verify_chunk(nc0, &e0, nc0, d0, crc0).expect("duplicate chunk admitted");
    assert!(why.contains("below cursor"), "{why}");

    // Entries reordered inside a chunk, CRC honestly recomputed: the
    // ascending-uid invariant still rejects it (ordering is what makes
    // cursor resume sound).
    let mut reordered = e1.clone();
    reordered.reverse();
    let recrc = chunk_crc(&reordered, nc1, d1);
    let why = verify_chunk(nc0, &reordered, nc1, d1, recrc).expect("reordered chunk admitted");
    assert!(why.contains("ascending"), "{why}");

    // Reordered with the *old* CRC: caught even earlier, by the checksum.
    let why = verify_chunk(nc0, &reordered, nc1, d1, crc1).expect("reordered chunk admitted");
    assert!(why.contains("crc"), "{why}");
}

/// Seeded battery over the chunk frame's TLV extension tail: unknown
/// TLVs of random shapes are skipped without altering any field
/// (forward compatibility), while truncations inside the tail are
/// rejected — a partial extension can never smuggle entries in.
#[test]
fn chunk_frame_tlv_tail_battery() {
    let mut rng = VeloxRng::seed_from(SEED ^ 9);
    let (_, chunks) = sample_chunk_stream();
    let pristine = chunk_fields(&chunks[0]);
    let base = chunks[0].encode();
    let body = &base[..base.len() - 4]; // strip the empty TLV count
    for round in 0..200 {
        let n_tlv = rng.below(4) as usize + 1;
        let mut buf = body.to_vec();
        buf.extend_from_slice(&(n_tlv as u32).to_be_bytes());
        for _ in 0..n_tlv {
            buf.push(rng.below(256) as u8);
            let len = rng.below(16) as usize;
            buf.extend_from_slice(&(len as u32).to_be_bytes());
            for _ in 0..len {
                buf.push(rng.below(256) as u8);
            }
        }
        match Response::decode(&buf) {
            Ok(Response::PartitionChunk { entries, next_cursor, done, crc }) => {
                assert_eq!(
                    (entries, next_cursor, done, crc),
                    pristine.clone(),
                    "round {round}: TLV tail altered the decoded chunk"
                );
            }
            other => panic!("round {round}: unknown TLVs must be skipped, got {other:?}"),
        }
        let tail_start = body.len() + 4;
        let cut = tail_start + rng.below((buf.len() - tail_start) as u64) as usize;
        assert!(
            Response::decode(&buf[..cut]).is_err(),
            "round {round}: accepted a chunk TLV tail truncated at byte {cut}"
        );
    }
}

/// Seeded battery over the cutover frame's TLV extension tail: unknown
/// TLV types of random shapes are skipped (forward compatibility for
/// future membership metadata), while any truncation inside the tail is
/// rejected — a partial extension can never smuggle a map in.
#[test]
fn cutover_frame_tlv_tail_battery() {
    let mut rng = VeloxRng::seed_from(SEED ^ 7);
    let map = sample_map();
    let base = Request::InstallMap { map: map.clone() }.encode();
    let body = &base[..base.len() - 4]; // strip the empty TLV count
    for round in 0..200 {
        let n_tlv = rng.below(4) as usize + 1;
        let mut buf = body.to_vec();
        buf.extend_from_slice(&(n_tlv as u32).to_be_bytes());
        for _ in 0..n_tlv {
            buf.push(rng.below(256) as u8); // type: anything goes
            let len = rng.below(16) as usize;
            buf.extend_from_slice(&(len as u32).to_be_bytes());
            for _ in 0..len {
                buf.push(rng.below(256) as u8);
            }
        }
        match Request::decode(&buf) {
            Ok(Request::InstallMap { map: decoded }) => {
                assert_eq!(decoded, map, "round {round}: TLV tail altered the decoded map")
            }
            other => panic!("round {round}: unknown TLVs must be skipped, got {other:?}"),
        }
        let tail_start = body.len() + 4;
        let cut = tail_start + rng.below((buf.len() - tail_start) as u64) as usize;
        assert!(
            Request::decode(&buf[..cut]).is_err(),
            "round {round}: accepted a TLV tail truncated at byte {cut}"
        );
    }
}
