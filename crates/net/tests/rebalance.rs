//! Elastic membership over real sockets: epoch-stamped partition maps,
//! live partition migration, and chaos fail-over.
//!
//! The acceptance gate for the membership plane:
//!
//! - a node joins a serving cluster and takes partitions over with the
//!   dual-write / checkpoint / catch-up / cut-over / tail-replay state
//!   machine, losing **no acknowledged observe** and double-applying
//!   none — the final weights are bit-identical to a local replay of the
//!   ack stream;
//! - killing a member *and its disk* after a rebalance fails it out of
//!   the map with zero acked loss (survivor replicas re-own and
//!   backfill);
//! - a front with a stale map is rejected with `WrongEpoch`, refreshes
//!   via `GetMap`, and retries — at-most-once observes included;
//! - twin clusters fed the same workload through a join + rebalance
//!   converge to bit-identical weights at the same epoch (the migration
//!   plan and replay order are deterministic).

use std::time::Duration;

use velox_cluster::transport::{Transport, TransportError};
use velox_cluster::{lms_update, MigrationOutcome, NodeId};
use velox_net::{NetCluster, NetClusterConfig, Request, Response};
use velox_storage::ScratchDir;

const DIM: usize = 3;
const LR: f64 = 0.1;
const USERS: u64 = 13;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 5) as f64 / 4.0).collect()
}

fn seeded_items() -> Vec<(u64, Vec<f64>)> {
    (0..24u64).map(|i| (i, item_features(i))).collect()
}

fn start_net(wal_root: Option<&ScratchDir>, max_nodes: usize) -> NetCluster {
    let cluster = NetCluster::start(NetClusterConfig {
        n_nodes: 3,
        max_nodes,
        user_replication: 2,
        lr: LR,
        wal_root: wal_root.map(|d| d.path().to_path_buf()),
        workers: 8,
        request_timeout: Duration::from_secs(2),
        ..Default::default()
    })
    .expect("start loopback cluster");
    cluster.publish_item_features(seeded_items());
    cluster
}

/// A deterministic workload: (uid, item, label) triples.
fn workload(offset: u64, n: u64) -> Vec<(u64, u64, f64)> {
    (offset..offset + n)
        .map(|i| (i % USERS, i % 24, if (i * i) % 3 == 0 { 1.0 } else { 0.0 }))
        .collect()
}

/// Local replay of the acked stream: what every user's weights must be
/// if no acked observe was lost and none was applied twice.
fn expected_weights(acked: &[(u64, u64, f64)]) -> Vec<(u64, Vec<f64>)> {
    let mut w: std::collections::HashMap<u64, Vec<f64>> = std::collections::HashMap::new();
    for &(uid, item, y) in acked {
        lms_update(w.entry(uid).or_default(), &item_features(item), y, LR);
    }
    let mut out: Vec<(u64, Vec<f64>)> = w.into_iter().collect();
    out.sort_by_key(|(uid, _)| *uid);
    out
}

fn assert_weights_match(net: &NetCluster, acked: &[(u64, u64, f64)], what: &str) {
    for (uid, expect) in expected_weights(acked) {
        let got = net
            .fetch_weights(uid)
            .expect("fetch weights")
            .unwrap_or_else(|| panic!("{what}: user {uid} has no weights — acked records lost"));
        assert_eq!(
            got, expect,
            "{what}: user {uid} weights diverge from the acked stream \
             (lost or double-applied records)"
        );
    }
}

#[test]
fn join_and_rebalance_lose_no_acked_observe() {
    let net = start_net(None, 4);
    let mut acked: Vec<(u64, u64, f64)> = Vec::new();
    for (uid, item, y) in workload(0, 150) {
        net.observe(uid, item, y).expect("observe before join");
        acked.push((uid, item, y));
    }
    assert_eq!(net.map_epoch(), 1, "bootstrap map is epoch 1");

    let joined = net.join_node().expect("join");
    assert_eq!(joined, 3, "first free slot");
    let moved = net.rebalance_join(joined).expect("rebalance");
    assert!(!moved.is_empty(), "a 3→4 rebalance must move partitions");
    assert_eq!(
        net.map_epoch(),
        2 + 2 * moved.len() as u64,
        "join bumps once, each migration bumps twice (dual-write + cutover)"
    );

    // The joined node owns what the plan moved; traffic keeps flowing.
    let map = net.map();
    for &p in &moved {
        assert_eq!(map.owner_of_partition(p), joined, "cutover re-owned partition {p}");
    }
    for (uid, item, y) in workload(1000, 100) {
        net.observe(uid, item, y).expect("observe after rebalance");
        acked.push((uid, item, y));
    }
    for uid in 0..USERS {
        let p = net.predict(uid, uid % 24).expect("predict after rebalance");
        assert!(!p.cold_start, "no user may go cold through a rebalance");
    }
    assert_weights_match(&net, &acked, "after join+rebalance");

    let view = net.membership().expect("net transport exposes membership");
    assert_eq!(view.members, vec![0, 1, 2, 3]);
    assert_eq!(view.migrations.len(), moved.len());
    assert!(view.migrations.iter().all(|m| m.phase == "done"));
    assert!(view.migrations.iter().all(|m| m.to == joined));
    assert!(
        view.migrations.iter().all(|m| m.epoch_end > m.epoch_start),
        "every migration spans a dual-write and a cutover epoch bump"
    );
}

#[test]
fn owner_death_with_disk_loss_fails_over_with_zero_loss() {
    let wal = ScratchDir::new("rebalance-failover");
    let net = start_net(Some(&wal), 4);
    let mut acked: Vec<(u64, u64, f64)> = Vec::new();
    for (uid, item, y) in workload(0, 150) {
        net.observe(uid, item, y).expect("observe");
        acked.push((uid, item, y));
    }
    let joined = net.join_node().expect("join");
    net.rebalance_join(joined).expect("rebalance");

    // Kill a founding member and wipe its disk: recovery from local state
    // is impossible, only replicas hold its partitions now.
    let victim: NodeId = 0;
    net.kill_node_lose_disk(victim);
    let backfilled = net.fail_over_dead(victim).expect("fail over");
    let view = net.membership().expect("membership");
    assert_eq!(view.members, vec![1, 2, 3], "dead member left the map");
    assert!(
        net.map().members().iter().all(|&m| m != victim),
        "no partition may reference the dead node"
    );
    let _ = backfilled; // may be 0 if every survivor already replicated

    for (uid, item, y) in workload(2000, 100) {
        net.observe(uid, item, y).expect("observe after fail-over");
        acked.push((uid, item, y));
    }
    for uid in 0..USERS {
        let p = net.predict(uid, uid % 24).expect("predict after fail-over");
        assert!(!p.cold_start, "no user may go cold through owner death");
    }
    assert_weights_match(&net, &acked, "after kill_lose_disk+fail_over");
}

#[test]
fn stale_front_is_rejected_refreshes_and_retries() {
    let net = start_net(None, 3);
    for (uid, item, y) in workload(0, 60) {
        net.observe(uid, item, y).expect("observe");
    }
    let map0 = net.map();
    // Build a newer map behind the front's back and install it on the
    // nodes only — exactly what a second control plane (or an operator
    // tool) would do. Partition 0 gains its one non-replica member.
    let extra = *map0
        .members()
        .iter()
        .find(|&&m| !map0.replicas_of_partition(0).contains(&m))
        .expect("replication 2 of 3 leaves one non-replica");
    let map1 = map0.with_extra_replica(0, extra).expect("bump epoch");
    for node in 0..3 {
        let client = net.client(node).expect("live node");
        match client.call(&Request::InstallMap { map: map1.clone() }) {
            Ok(Response::Ok) => {}
            other => panic!("install on node {node} failed: {other:?}"),
        }
    }
    assert_eq!(net.map_epoch(), map0.epoch(), "front still on the stale epoch");

    // Every node now rejects the front's stamp; the front must refresh
    // once and serve — predicts and at-most-once observes both.
    net.predict(5, 2).expect("predict refreshes through WrongEpoch");
    net.observe(5, 2, 1.0).expect("observe refreshes through WrongEpoch");
    assert_eq!(net.map_epoch(), map1.epoch(), "front adopted the nodes' map");
    assert_eq!(net.map_refresh_count(), 1, "one rejection forced one refresh");
    let view = net.membership().expect("membership");
    assert!(view.wrong_epoch >= 1, "nodes counted the stale-epoch rejection");
    assert_eq!(view.epoch, map1.epoch());
}

/// First partition owned by `node` under the cluster's current map.
fn partition_owned_by(net: &NetCluster, node: NodeId) -> u32 {
    let map = net.map();
    (0..map.n_partitions())
        .find(|&p| map.owner_of_partition(p) == node)
        .expect("every founding member owns at least one partition")
}

#[test]
fn cancelled_migration_rolls_back_without_an_epoch_bump_and_retry_commits() {
    let net = start_net(None, 4);
    let mut acked: Vec<(u64, u64, f64)> = Vec::new();
    for (uid, item, y) in workload(0, 120) {
        net.observe(uid, item, y).expect("observe");
        acked.push((uid, item, y));
    }
    let joined = net.join_node().expect("join");
    let epoch0 = net.map_epoch();
    let p = partition_owned_by(&net, 0);

    // Pre-armed operator cancel: consumed at the first chunk boundary,
    // before any map install.
    assert!(!net.request_migration_cancel(), "no migration in flight yet");
    let err = net.migrate_partition(p, joined).expect_err("cancel must abort");
    assert!(err.to_string().contains("operator cancel"), "unexpected abort: {err}");
    assert_eq!(net.map_epoch(), epoch0, "abort must not bump the epoch");
    assert_eq!(net.map().owner_of_partition(p), 0, "source stays authoritative");

    let view = net.membership().expect("membership");
    let last = view.migrations.last().expect("abort lands in the ledger");
    assert_eq!(last.phase, "aborted");
    assert_eq!(last.epoch_end, 0, "aborted migrations never reach an end epoch");
    assert!(
        matches!(&last.outcome, MigrationOutcome::Aborted(r) if r.contains("operator cancel")),
        "ledger outcome: {:?}",
        last.outcome
    );
    let (_, aborts, _) = net.migration_chunk_stats();
    assert_eq!(aborts, 1);

    // Traffic keeps flowing and the acked stream is intact.
    for (uid, item, y) in workload(3000, 80) {
        net.observe(uid, item, y).expect("observe after abort");
        acked.push((uid, item, y));
    }
    assert_weights_match(&net, &acked, "after cancelled migration");

    // The same partition migrates cleanly on retry.
    let status = net.migrate_partition(p, joined).expect("retry commits");
    assert_eq!(status.outcome, MigrationOutcome::Committed);
    assert!(status.chunks_streamed >= 1, "the checkpoint streamed in chunks");
    assert_eq!(net.map_epoch(), epoch0 + 2, "commit bumps dual-write + cutover");
    assert_eq!(net.map().owner_of_partition(p), joined);
    for (uid, item, y) in workload(4000, 80) {
        net.observe(uid, item, y).expect("observe after retry");
        acked.push((uid, item, y));
    }
    assert_weights_match(&net, &acked, "after retried migration");
}

#[test]
fn zero_deadline_aborts_every_migration_before_any_install() {
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: 3,
        max_nodes: 4,
        user_replication: 2,
        lr: LR,
        workers: 8,
        request_timeout: Duration::from_secs(2),
        migration_deadline: Duration::ZERO,
        ..Default::default()
    })
    .expect("start cluster");
    net.publish_item_features(seeded_items());
    for (uid, item, y) in workload(0, 60) {
        net.observe(uid, item, y).expect("observe");
    }
    let joined = net.join_node().expect("join");
    let epoch0 = net.map_epoch();
    let p = partition_owned_by(&net, 0);
    let err = net.migrate_partition(p, joined).expect_err("zero deadline must abort");
    assert!(err.to_string().contains("deadline exceeded"), "unexpected abort: {err}");
    assert_eq!(net.map_epoch(), epoch0, "abort must not bump the epoch");
    assert_eq!(net.map().owner_of_partition(p), 0, "source stays authoritative");
    // Serving is unaffected: predicts and observes still flow.
    net.predict(5, 2).expect("predict after deadline abort");
    net.observe(5, 2, 1.0).expect("observe after deadline abort");
}

#[test]
fn membership_control_surface_rejects_bad_operations() {
    let net = start_net(None, 4);
    // Unknown slot id: outside 0..max_nodes entirely.
    match net.rebalance_join_node(99) {
        Err(TransportError::Rejected(msg)) => assert!(msg.contains("unknown node"), "{msg}"),
        other => panic!("expected Rejected, got {other:?}"),
    }
    match net.fail_over_node(99) {
        Err(TransportError::Rejected(msg)) => assert!(msg.contains("unknown node"), "{msg}"),
        other => panic!("expected Rejected, got {other:?}"),
    }
    // A provisioned slot that never joined is not a member.
    match net.fail_over_node(3) {
        Err(TransportError::Rejected(msg)) => assert!(msg.contains("not a member"), "{msg}"),
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Failing over a live member is refused.
    match net.fail_over_node(0) {
        Err(TransportError::Rejected(msg)) => assert!(msg.contains("not down"), "{msg}"),
        other => panic!("expected Rejected, got {other:?}"),
    }
    // The kill switch round-trips through the transport surface.
    net.set_auto_rebalance(true);
    assert!(net.auto_rebalance_enabled());
    assert!(net.membership().expect("membership").auto_rebalance);
    net.set_auto_rebalance(false);
    assert!(!net.auto_rebalance_enabled());
    assert!(!net.membership().expect("membership").auto_rebalance);
    // Cancelling with nothing in flight reports idle (and arms the next
    // migration's first boundary check — covered by the cancel test).
    assert!(!net.cancel_migration());
}

#[test]
fn twin_clusters_converge_bit_identically_across_epoch_bumps() {
    let run = |tag: &str| {
        let wal = ScratchDir::new(tag);
        let net = start_net(Some(&wal), 4);
        for (uid, item, y) in workload(0, 120) {
            net.observe(uid, item, y).expect("observe");
        }
        let joined = net.join_node().expect("join");
        let moved = net.rebalance_join(joined).expect("rebalance");
        for (uid, item, y) in workload(500, 80) {
            net.observe(uid, item, y).expect("observe");
        }
        let weights: Vec<(u64, Option<Vec<f64>>)> =
            (0..USERS).map(|uid| (uid, net.fetch_weights(uid).expect("fetch"))).collect();
        (net.map_epoch(), moved, weights)
    };
    let (epoch_a, moved_a, weights_a) = run("twin-a");
    let (epoch_b, moved_b, weights_b) = run("twin-b");
    assert_eq!(epoch_a, epoch_b, "twin clusters bump through identical epochs");
    assert_eq!(moved_a, moved_b, "the rebalance plan is deterministic");
    assert_eq!(weights_a, weights_b, "weights are bit-identical across twins");
}
