//! `Transport::predict_many` over the loopback TCP runtime: one
//! `PredictBatch` frame per owning node must come back bit-identical to
//! N sequential `Transport::predict` calls, and pairs the batch path
//! cannot answer must fall back to the single-predict path's precise
//! error.

use std::time::Duration;

use velox_cluster::{Transport, TransportError};
use velox_net::{NetCluster, NetClusterConfig};

const DIM: usize = 4;
const N_ITEMS: u64 = 16;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 11) as f64 / 10.0).collect()
}

fn start_cluster() -> NetCluster {
    let cluster = NetCluster::start(NetClusterConfig {
        n_nodes: 3,
        user_replication: 2,
        lr: 0.1,
        wal_root: None,
        workers: 4,
        request_timeout: Duration::from_secs(2),
        ..Default::default()
    })
    .expect("start loopback cluster");
    cluster.publish_item_features((0..N_ITEMS).map(|i| (i, item_features(i))).collect());
    for uid in 0..8u64 {
        for i in 0..12u64 {
            let y = ((uid * 7 + i * 3) % 10) as f64 / 3.0;
            cluster.observe(uid, i % N_ITEMS, y).expect("seed observe");
        }
    }
    cluster
}

#[test]
fn batched_scores_are_bit_identical_across_owners() {
    let cluster = start_cluster();
    // Users 0..8 spread over all three nodes; uid 70 is never-observed
    // (cold start); duplicates exercise request-order reassembly.
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    for uid in 0..8u64 {
        for item in 0..N_ITEMS {
            pairs.push((uid, item));
        }
    }
    pairs.push((3, 5));
    pairs.push((70, 2));

    let sequential: Vec<_> =
        pairs.iter().map(|&(uid, item)| cluster.predict(uid, item).expect("sequential")).collect();
    let batched = cluster.predict_many(&pairs);

    assert_eq!(batched.len(), pairs.len());
    let mut nodes = std::collections::BTreeSet::new();
    for ((seq, got), &(uid, item)) in sequential.iter().zip(&batched).zip(&pairs) {
        let got = got.as_ref().expect("batched predict");
        assert_eq!(
            got.score.to_bits(),
            seq.score.to_bits(),
            "batched score diverged for uid={uid} item={item}"
        );
        assert_eq!(got.cold_start, seq.cold_start, "cold-start flag for uid={uid}");
        assert_eq!(got.node, seq.node, "serving node for uid={uid}");
        nodes.insert(got.node);
    }
    assert!(nodes.len() > 1, "the batch spanned multiple owning nodes, got {nodes:?}");
    cluster.shutdown();
}

#[test]
fn unanswerable_pairs_fall_back_to_the_single_predict_error() {
    let cluster = start_cluster();
    // Item 999 is not seeded anywhere: the batch frame answers it `!ok`
    // and the client retries it on the single-predict path, which
    // produces the same error the sequential call does. The healthy
    // pairs in the same group are unaffected.
    let pairs = vec![(1u64, 2u64), (1, 999), (2, 3)];
    let results = cluster.predict_many(&pairs);
    assert!(results[0].is_ok(), "healthy pair served");
    assert!(results[2].is_ok(), "healthy pair served");
    let sequential = cluster.predict(1, 999).expect_err("unseeded item fails");
    match (&results[1], &sequential) {
        (Err(TransportError::Failed(batch)), TransportError::Failed(seq)) => {
            assert_eq!(batch, seq, "fallback reproduces the sequential error");
        }
        (Err(TransportError::Unavailable), TransportError::Unavailable) => {}
        other => panic!("expected matching unavailable/failed errors, got {other:?}"),
    }
    cluster.shutdown();
}
