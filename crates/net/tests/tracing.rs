//! End-to-end distributed tracing over both transport backends.
//!
//! The claims under test:
//!
//! 1. **Backend identity** — the same deterministic workload served by the
//!    in-process simulator and by the loopback TCP runtime produces
//!    *structurally identical* span trees (same kinds, same nodes, same
//!    nesting) for every request. The simulator emits synthetic spans in
//!    the exact shape the real RPC path records, which is what makes a
//!    trace read the same no matter which backend served it.
//! 2. **Failover visibility** — a request served after its home node is
//!    killed carries an explicit `failover` hop in its trace.
//! 3. **Propagation survives the wire** — node-side spans (server recv,
//!    node work, ship/apply) are recorded on the *receiving* node and
//!    still reassemble under the front's root via the frame-header
//!    extension.

use std::sync::Arc;
use std::time::Duration;

use velox_cluster::transport::Transport;
use velox_cluster::{Cluster, ClusterConfig, SimTransport};
use velox_net::{NetCluster, NetClusterConfig};
use velox_obs::{build_tree, structure, SpanKind, TraceConfig, Tracer, FRONT_NODE};

const DIM: usize = 3;
const LR: f64 = 0.1;
const N_NODES: usize = 3;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 5) as f64 / 4.0).collect()
}

fn seeded_items() -> Vec<(u64, Vec<f64>)> {
    (0..16u64).map(|i| (i, item_features(i))).collect()
}

fn start_net(trace: TraceConfig) -> NetCluster {
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: N_NODES,
        user_replication: 2,
        lr: LR,
        wal_root: None,
        workers: 8,
        request_timeout: Duration::from_secs(2),
        trace,
        ..Default::default()
    })
    .expect("start loopback cluster");
    net.publish_item_features(seeded_items());
    net
}

fn start_sim(trace: TraceConfig) -> SimTransport {
    let cluster = Arc::new(Cluster::new(ClusterConfig {
        n_nodes: N_NODES,
        user_replication: 2,
        item_replication: N_NODES,
        ..Default::default()
    }));
    for (item, x) in seeded_items() {
        cluster.put_item_features(item, x);
    }
    SimTransport::with_trace(cluster, LR, trace)
}

/// Structure string of one trace as its backend recorded it.
fn trace_structure(tracer: &Tracer, trace_id: u64) -> String {
    structure(&build_tree(&tracer.collect(trace_id)))
}

/// One request of the deterministic workload: observe or predict.
#[derive(Clone, Copy)]
enum Op {
    Predict(u64, u64),
    Observe(u64, u64, f64),
}

fn workload() -> Vec<Op> {
    // Mix of users (different home nodes) and items; observes first so
    // predicts hit warm weights.
    let mut ops = Vec::new();
    for uid in [1u64, 4, 7, 11] {
        for item in [0u64, 3, 9] {
            ops.push(Op::Observe(uid, item, 1.0));
        }
    }
    for uid in [1u64, 4, 7, 11] {
        ops.push(Op::Predict(uid, 3));
    }
    ops
}

/// Runs one op, returning the structure string of the trace it recorded.
fn run_op(backend: &dyn Transport, tracer: &Tracer, op: Op) -> String {
    let trace_id = match op {
        Op::Predict(uid, item) => {
            backend.predict_traced(uid, item, None).expect("predict").trace_id
        }
        Op::Observe(uid, item, y) => {
            backend.observe_traced(uid, item, y, None).expect("observe").trace_id
        }
    };
    trace_structure(tracer, trace_id.expect("sample_all records every request"))
}

#[test]
fn sim_and_tcp_produce_structurally_identical_span_trees() {
    let sim = start_sim(TraceConfig::sample_all());
    let net = start_net(TraceConfig::sample_all());
    let sim_tracer = Transport::tracer(&sim);
    let net_tracer = net.tracer();

    for (i, op) in workload().into_iter().enumerate() {
        let sim_structure = run_op(&sim, &sim_tracer, op);
        let net_structure = run_op(&net, &net_tracer, op);
        assert_eq!(
            sim_structure, net_structure,
            "op {i}: backends disagree on the span tree shape"
        );
        // Sanity: the tree has real depth (front → rpc → server → work),
        // not just a root.
        assert!(sim_structure.contains("rpc_call@front(server_recv@"), "op {i}: {sim_structure}");
    }
    assert_eq!(net_tracer.spans_dropped(), 0, "sequential workload must not drop spans");
}

#[test]
fn observe_trace_shows_replica_ship_round_trip() {
    let net = start_net(TraceConfig::sample_all());
    let tracer = net.tracer();
    let uid = 7u64;
    let home = net.home_of_user(uid);
    let ack = net.observe_traced(uid, 3, 1.0, None).expect("observe");
    assert_eq!(ack.shipped_to, 1);
    let s = trace_structure(&tracer, ack.trace_id.unwrap());
    let replica = (home + 1) % N_NODES;
    let ship = format!("ship_replica@{home}(server_recv@{replica}(ship_apply@{replica}))");
    assert!(s.contains(&ship), "trace {s} must contain the ship round trip {ship}");
    assert!(s.starts_with("cluster_observe@front(route@front,rpc_call@front("), "trace {s}");
}

#[test]
fn killed_owner_failover_appears_as_a_hop_in_the_trace() {
    let net = start_net(TraceConfig::sample_all());
    let tracer = net.tracer();
    let uid = 4u64;
    let home = net.home_of_user(uid);
    net.observe_traced(uid, 1, 1.0, None).expect("warm observe");
    net.kill_node(home);

    let p = net.predict_traced(uid, 1, None).expect("failover predict");
    assert!(p.routed);
    assert_ne!(p.node, home);
    let s = trace_structure(&tracer, p.trace_id.unwrap());
    assert!(s.contains("failover@front"), "failover hop missing from trace: {s}");
    assert!(
        s.contains(&format!("server_recv@{}(node_predict@{})", p.node, p.node)),
        "trace must show the replica serving: {s}"
    );

    // The simulator shows the same failover shape for the same fault.
    let sim = start_sim(TraceConfig::sample_all());
    let sim_tracer = Transport::tracer(&sim);
    sim.observe_traced(uid, 1, 1.0, None).expect("sim warm observe");
    sim.cluster().kill_node(home);
    let sp = sim.predict_traced(uid, 1, None).expect("sim failover predict");
    let sim_s = trace_structure(&sim_tracer, sp.trace_id.unwrap());
    assert!(sim_s.contains("failover@front"), "sim failover hop missing: {sim_s}");
}

#[test]
fn wal_spans_attribute_fsync_time_when_durability_is_on() {
    let dir = tempdir();
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: N_NODES,
        user_replication: 2,
        lr: LR,
        wal_root: Some(dir.clone()),
        workers: 8,
        request_timeout: Duration::from_secs(2),
        trace: TraceConfig::sample_all(),
        ..Default::default()
    })
    .expect("start durable cluster");
    net.publish_item_features(seeded_items());
    let tracer = net.tracer();

    let ack = net.observe_traced(9, 2, 1.0, None).expect("durable observe");
    let spans = tracer.collect(ack.trace_id.unwrap());
    let kinds: Vec<SpanKind> = spans.iter().map(|s| s.kind).collect();
    assert!(kinds.contains(&SpanKind::WalAppend), "missing wal_append span: {kinds:?}");
    // The owner's WAL append span sits on the owning node, not the front.
    let wal = spans.iter().find(|s| s.kind == SpanKind::WalAppend).unwrap();
    assert_ne!(wal.node, FRONT_NODE);
    assert_eq!(wal.node as usize, ack.node);
    let _ = std::fs::remove_dir_all(&dir);
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("velox-trace-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create wal dir");
    dir
}

#[test]
fn untraced_cluster_records_nothing_and_reports_no_ids() {
    let net = start_net(TraceConfig::off());
    let tracer = net.tracer();
    let p = net.predict(3, 1).expect("predict");
    assert!(p.trace_id.is_none());
    assert_eq!(tracer.spans_recorded(), 0);
    assert!(tracer.kept().is_empty());
}

#[test]
fn tail_sampling_keeps_only_slow_requests_under_head_off() {
    // Head sampling off, slow threshold 0 ns: every request is "slow",
    // so every request is kept — exercising the tail path end to end.
    let net = start_net(TraceConfig {
        sample_one_in: 0,
        slow_threshold_ns: Some(0),
        ..TraceConfig::default()
    });
    let tracer = net.tracer();
    net.predict(5, 1).expect("predict");
    let slow = tracer.slow();
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].root_kind, SpanKind::ClusterPredict);
}
