//! Network chaos suite: deterministic link-fault injection against both
//! transport backends (the in-process `SimTransport` and the TCP
//! `NetCluster`), exercised through the shared [`ChaosControl`] surface.
//!
//! What must hold under an adversarial network:
//!
//! - **Availability**: a flaky link (2% request drop) costs retries, not
//!   errors — every predict and observe still succeeds.
//! - **Exactly-once**: duplicated frames and lost acks never apply an
//!   observation twice; the final weights are bit-identical to a clean
//!   run of the same workload.
//! - **Degraded shipping**: a partitioned replica link queues records at
//!   the owner and drains on heal; `PullLog` proves nothing acked was
//!   lost.
//! - **Failure detection**: a partitioned peer is marked dead by the
//!   heartbeat prober and routing fails over on suspicion, not on
//!   per-request timeouts.
//! - **Determinism**: a fixed seed replays the identical fault stream.

use std::sync::Arc;
use std::time::{Duration, Instant};

use velox_cluster::transport::{SimTransport, Transport};
use velox_cluster::{
    ChaosControl, Cluster, ClusterConfig, LinkFaultEvent, LinkFaultKind, LinkFaultPlan, PeerState,
    RetryPolicy, FRONT_PEER,
};
use velox_net::{
    NetClient, NetClientConfig, NetCluster, NetClusterConfig, NetError, NetServer, NetServerConfig,
    Request, Response,
};

const DIM: usize = 3;
const LR: f64 = 0.1;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 5) as f64 / 4.0).collect()
}

fn seeded_items() -> Vec<(u64, Vec<f64>)> {
    (0..24u64).map(|i| (i, item_features(i))).collect()
}

/// A deterministic workload: (uid, item, label) triples.
fn workload(n: usize) -> Vec<(u64, u64, f64)> {
    (0..n as u64).map(|i| (i % 7, i % 24, if (i * i) % 3 == 0 { 1.0 } else { 0.0 })).collect()
}

/// A TCP cluster tuned for chaos: a short per-try cap so dropped frames
/// cost one attempt, not the whole deadline, and a backoff long enough
/// that a retried observe can never overtake its own first attempt
/// still being applied at the server.
fn start_net_chaos(hedge: bool) -> NetCluster {
    let cluster = NetCluster::start(NetClusterConfig {
        n_nodes: 3,
        user_replication: 2,
        lr: LR,
        wal_root: None,
        workers: 8,
        request_timeout: Duration::from_secs(2),
        heartbeat_interval: Some(Duration::from_millis(20)),
        hedge_predicts: hedge,
        client: NetClientConfig {
            per_try_timeout: Some(Duration::from_millis(150)),
            retry: RetryPolicy {
                max_attempts: 4,
                backoff_base: Duration::from_millis(40),
                backoff_max: Duration::from_millis(80),
                jitter: 0.2,
            },
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("start loopback cluster");
    cluster.publish_item_features(seeded_items());
    cluster
}

fn start_sim() -> SimTransport {
    let cluster = Arc::new(Cluster::new(ClusterConfig {
        n_nodes: 3,
        user_replication: 2,
        item_replication: 3,
        ..Default::default()
    }));
    for (item, x) in seeded_items() {
        cluster.put_item_features(item, x);
    }
    SimTransport::new(cluster, LR).with_retry(RetryPolicy {
        max_attempts: 4,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(4),
        jitter: 0.2,
    })
}

/// Runs `workload(n)` observes then a predict sweep; every operation
/// must succeed. Returns the final weights of every workload user.
fn drive<T: Transport + ?Sized>(t: &T, n: usize) -> Vec<Vec<f64>> {
    for (uid, item, y) in workload(n) {
        t.observe(uid, item, y).unwrap_or_else(|e| panic!("observe uid {uid} failed: {e:?}"));
    }
    for uid in 0..7u64 {
        for item in 0..8u64 {
            let p =
                t.predict(uid, item).unwrap_or_else(|e| panic!("predict uid {uid} failed: {e:?}"));
            assert!(p.score.is_finite());
        }
    }
    (0..7u64).map(|uid| t.fetch_weights(uid).expect("fetch").expect("user has weights")).collect()
}

fn flaky_plan(seed: u64) -> LinkFaultPlan {
    LinkFaultPlan { drop_prob: 0.02, seed, ..Default::default() }
}

fn noisy_plan(seed: u64) -> LinkFaultPlan {
    LinkFaultPlan {
        drop_prob: 0.05,
        dup_prob: 0.20,
        delay_prob: 0.05,
        delay_us: 500,
        seed,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// Availability through a flaky link (both backends)
// ---------------------------------------------------------------------

#[test]
fn sim_flaky_link_costs_retries_not_errors() {
    let sim = start_sim();
    sim.install_link_faults(flaky_plan(0xF1A2));
    drive(&sim, 200);
    let c = sim.link_chaos().counters();
    assert!(c.drops.get() > 0, "the adversary never showed up");
    assert!(sim.chaos_retry_count() > 0, "drops must surface as retries");
}

#[test]
fn tcp_flaky_link_costs_retries_not_errors() {
    let net = start_net_chaos(false);
    net.install_link_faults(flaky_plan(0xF1A2));
    drive(&net, 200);
    let c = net.link_chaos().counters();
    assert!(c.drops.get() > 0, "the adversary never showed up");
    net.clear_link_faults();
}

// ---------------------------------------------------------------------
// Exactly-once under duplication and noise (both backends)
// ---------------------------------------------------------------------

#[test]
fn sim_duplicated_frames_apply_exactly_once() {
    let clean = start_sim();
    let want = drive(&clean, 120);

    let sim = start_sim();
    sim.install_link_faults(noisy_plan(0xD0B1));
    let got = drive(&sim, 120);

    assert!(sim.link_chaos().counters().dups.get() > 0, "no duplicates injected");
    assert!(sim.dedupe_hit_count() > 0, "duplicates must land in the dedupe window");
    assert_eq!(want.len(), got.len());
    for (uid, (w, g)) in want.iter().zip(&got).enumerate() {
        for (a, b) in w.iter().zip(g) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "uid {uid}: weights diverged under duplication — an observation applied twice"
            );
        }
    }
}

#[test]
fn tcp_duplicated_frames_apply_exactly_once() {
    let clean = start_net_chaos(false);
    let want = drive(&clean, 120);
    clean.shutdown();

    let net = start_net_chaos(false);
    net.install_link_faults(noisy_plan(0xD0B1));
    let got = drive(&net, 120);
    net.clear_link_faults();

    assert!(net.link_chaos().counters().dups.get() > 0, "no duplicates injected");
    let dedupe_hits: u64 = (0..3).map(|n| net.node_metrics(n).duplicate_observes.get()).sum();
    assert!(dedupe_hits > 0, "duplicates must land in a node's dedupe window");
    for (uid, (w, g)) in want.iter().zip(&got).enumerate() {
        for (a, b) in w.iter().zip(g) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "uid {uid}: weights diverged under duplication — an observation applied twice"
            );
        }
    }
    net.shutdown();
}

/// The nastiest ambiguity: the observe is applied, the ack is lost, and
/// the retry must replay the same `obs_id` so the node answers from its
/// dedupe window instead of taking a second LMS step.
#[test]
fn tcp_lost_ack_replays_original_ack_instead_of_applying_twice() {
    let net = start_net_chaos(false);
    let uid = 4u64;
    let owner = net.home_of_user(uid);

    // Warm up on a clean link (inert chaos never ticks the send clock).
    net.observe(uid, 1, 1.0).expect("warmup observe");
    let before = net.fetch_weights(uid).expect("fetch").expect("weights");

    // Tick 1 (front → owner): the reverse path is cut — applied, ack
    // lost. Tick 2 (owner → replica ship): healed again, ships clean.
    // The client's retry then replays the same obs_id on a clean link.
    net.install_link_faults(LinkFaultPlan::scripted(vec![
        LinkFaultEvent {
            at_send: 1,
            kind: LinkFaultKind::Partition { from: owner as u32, to: FRONT_PEER },
        },
        LinkFaultEvent { at_send: 2, kind: LinkFaultKind::HealAll },
    ]));

    let ack = net.observe(uid, 2, 1.0).expect("observe must survive a lost ack");
    net.clear_link_faults();
    assert_eq!(ack.node, owner);
    assert_eq!(
        net.node_metrics(owner).duplicate_observes.get(),
        1,
        "the retry must be answered from the dedupe window"
    );

    // One clean application of (item 2, y=1.0) on a twin cluster ==
    // what the chaos run produced: the retry did not double-apply.
    let twin = start_net_chaos(false);
    twin.observe(uid, 1, 1.0).expect("twin warmup");
    twin.observe(uid, 2, 1.0).expect("twin observe");
    let want = twin.fetch_weights(uid).expect("fetch").expect("weights");
    let got = net.fetch_weights(uid).expect("fetch").expect("weights");
    assert_ne!(
        before.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "the observation must have applied once"
    );
    for (a, b) in want.iter().zip(&got) {
        assert_eq!(a.to_bits(), b.to_bits(), "retry after lost ack applied a second update");
    }
    twin.shutdown();
    net.shutdown();
}

// ---------------------------------------------------------------------
// Degraded log shipping through a replica-link partition (TCP)
// ---------------------------------------------------------------------

#[test]
fn tcp_ship_link_partition_queues_then_drains_on_heal() {
    let net = start_net_chaos(false);
    let uid = 4u64;
    let owner = net.home_of_user(uid);
    let replica = net.replica_nodes_of_user(uid)[1];

    let ack = net.observe(uid, 0, 1.0).expect("clean observe");
    assert_eq!(ack.shipped_to, 1);

    // Cut only the owner → replica ship link; the front stays connected.
    net.link_chaos().partition(owner as u32, replica as u32);

    let mut acked = vec![ack.ts];
    for i in 1..=10u64 {
        let ack = net.observe(uid, i % 24, 1.0).expect("owner must keep serving during partition");
        assert_eq!(ack.node, owner);
        assert_eq!(ack.shipped_to, 0, "partitioned replica cannot have received the record");
        acked.push(ack.ts);
    }
    let owner_state = net.node_state(owner).expect("owner is up");
    assert!(owner_state.ship_backlog_len() >= 10, "records must queue while the link is down");
    assert!(net.node_metrics(owner).ship_backlog_queued.get() >= 10);

    // Heal; the next observe settles the backlog before its own ship.
    net.link_chaos().heal(owner as u32, replica as u32);
    let ack = net.observe(uid, 11, 1.0).expect("post-heal observe");
    acked.push(ack.ts);
    assert_eq!(ack.shipped_to, 1, "healed link ships again");
    assert_eq!(owner_state.ship_backlog_len(), 0, "backlog must drain on heal");
    assert!(net.node_metrics(owner).ship_catch_up_records.get() >= 10);

    // Every acked record is now in the replica's log.
    let client = net.client(replica).expect("replica client");
    match client.call(&Request::PullLog { from_ts: 0 }).expect("pull log") {
        Response::Log { records } => {
            let have: std::collections::HashSet<u64> =
                records.iter().filter(|r| r.uid == uid).map(|r| r.timestamp).collect();
            for ts in &acked {
                assert!(have.contains(ts), "acked record ts={ts} never reached the replica");
            }
        }
        other => panic!("unexpected reply {other:?}"),
    }
    net.shutdown();
}

// ---------------------------------------------------------------------
// Heartbeat failure detection drives routing (TCP)
// ---------------------------------------------------------------------

fn wait_for_state(net: &NetCluster, node: usize, want: PeerState, within: Duration) {
    let deadline = Instant::now() + within;
    while net.detector().state(node as u32) != want {
        assert!(
            Instant::now() < deadline,
            "detector never reached {want:?} for node {node} (at {:?})",
            net.detector().state(node as u32)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn tcp_detector_suspects_partitioned_peer_and_routing_fails_over() {
    let net = start_net_chaos(false);
    let uid = 4u64;
    let home = net.home_of_user(uid);
    net.observe(uid, 1, 1.0).expect("warmup observe");

    // Every node starts Alive once the prober has been around.
    for node in 0..3 {
        wait_for_state(&net, node, PeerState::Alive, Duration::from_secs(2));
    }

    // Cut the front → home link. Probes consult the partition map, so
    // the detector walks Alive → Suspect → Dead without any data-plane
    // request ever paying a timeout.
    net.link_chaos().partition(FRONT_PEER, home as u32);
    wait_for_state(&net, home, PeerState::Dead, Duration::from_secs(3));

    // Routing now starts at a live replica: the predict is served off
    // the home node quickly, not after burning the home's deadline.
    let timer = Instant::now();
    let p = net.predict(uid, 1).expect("failover predict");
    assert_ne!(p.node, home, "suspicion must route around the partitioned home");
    assert!(p.routed);
    assert!(
        timer.elapsed() < Duration::from_millis(500),
        "failover on suspicion must not pay per-request timeouts (took {:?})",
        timer.elapsed()
    );

    // Heal: probes succeed again, the peer revives, and the home serves.
    net.link_chaos().heal(FRONT_PEER, home as u32);
    wait_for_state(&net, home, PeerState::Alive, Duration::from_secs(3));
    let p = net.predict(uid, 1).expect("post-heal predict");
    assert_eq!(p.node, home, "revived home must serve again");
    assert!(!p.routed);
    net.shutdown();
}

// ---------------------------------------------------------------------
// Hedged predicts (TCP)
// ---------------------------------------------------------------------

#[test]
fn tcp_hedged_predict_wins_when_primary_response_path_is_cut() {
    let net = start_net_chaos(true);
    let uid = 4u64;
    let home = net.home_of_user(uid);
    net.observe(uid, 1, 1.0).expect("warmup observe");

    // Sever only the home → front response path: the primary predict
    // hangs until its deadline, the hedge fires after the p99-derived
    // delay and is answered by the replica.
    net.link_chaos().partition(home as u32, FRONT_PEER);
    let timer = Instant::now();
    let p = net.predict(uid, 1).expect("hedged predict");
    net.link_chaos().heal(home as u32, FRONT_PEER);

    assert_ne!(p.node, home, "the hedge's replica answer must win");
    assert!(
        timer.elapsed() < Duration::from_secs(1),
        "hedge must beat the primary's deadline (took {:?})",
        timer.elapsed()
    );
    let (hedged, wins) = net.hedge_counts();
    assert!(hedged >= 1, "the hedge never fired");
    assert!(wins >= 1, "the hedge fired but never won");
    net.shutdown();
}

// ---------------------------------------------------------------------
// Determinism: a fixed seed replays the identical fault stream
// ---------------------------------------------------------------------

#[test]
fn sim_chaos_is_deterministic_under_a_fixed_seed() {
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let sim = start_sim();
            sim.install_link_faults(noisy_plan(0x5EED));
            let weights = drive(&sim, 150);
            let c = sim.link_chaos().counters();
            (
                weights,
                c.drops.get(),
                c.dups.get(),
                c.delays.get(),
                sim.chaos_retry_count(),
                sim.dedupe_hit_count(),
                sim.link_chaos().ticks(),
            )
        })
        .collect();
    assert_eq!(
        (runs[0].1, runs[0].2, runs[0].3, runs[0].4, runs[0].5, runs[0].6),
        (runs[1].1, runs[1].2, runs[1].3, runs[1].4, runs[1].5, runs[1].6),
        "identical seed + workload must replay identical injection counters"
    );
    for (a, b) in runs[0].0.iter().zip(&runs[1].0) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "weights must replay bit-identically");
        }
    }
}

#[test]
fn tcp_chaos_is_deterministic_under_a_fixed_seed() {
    // Only faults whose *detection* is immediate (dup, delay) — a drop
    // is detected by the per-try timeout, and on a loaded host that same
    // timeout can also catch a clean-but-slow request, adding a
    // timing-triggered retry (an extra chaos tick) that makes two runs
    // diverge. Drop determinism is covered by the sim test above, where
    // no real clock is involved; here a generous per-try cap makes a
    // spurious timeout on clean loopback RPCs effectively impossible.
    let plan = LinkFaultPlan {
        dup_prob: 0.20,
        delay_prob: 0.05,
        delay_us: 500,
        seed: 0x5EED,
        ..Default::default()
    };
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let net = NetCluster::start(NetClusterConfig {
                n_nodes: 3,
                user_replication: 2,
                lr: LR,
                wal_root: None,
                workers: 8,
                request_timeout: Duration::from_secs(4),
                client: NetClientConfig {
                    per_try_timeout: Some(Duration::from_secs(2)),
                    retry: RetryPolicy {
                        max_attempts: 2,
                        backoff_base: Duration::from_millis(10),
                        backoff_max: Duration::from_millis(20),
                        jitter: 0.2,
                    },
                    ..Default::default()
                },
                ..Default::default()
            })
            .expect("start loopback cluster");
            net.publish_item_features(seeded_items());
            net.install_link_faults(plan.clone());
            let weights = drive(&net, 150);
            let c = net.link_chaos().counters();
            let out = (weights, c.drops.get(), c.dups.get(), c.delays.get());
            net.clear_link_faults();
            net.shutdown();
            out
        })
        .collect();
    assert_eq!(
        (runs[0].1, runs[0].2, runs[0].3),
        (runs[1].1, runs[1].2, runs[1].3),
        "identical seed + workload must replay identical injection counters"
    );
    for (a, b) in runs[0].0.iter().zip(&runs[1].0) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "weights must replay bit-identically");
        }
    }
}

// ---------------------------------------------------------------------
// Worker-pool exhaustion sheds cleanly (satellite)
// ---------------------------------------------------------------------

#[test]
fn saturated_server_sheds_new_connections_with_overloaded() {
    use std::net::TcpStream;
    use std::sync::{Condvar, Mutex};
    use velox_net::{read_frame, write_frame};

    // One worker, one queue slot, and a handler that parks until told.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let handler_gate = Arc::clone(&gate);
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::new(move |req: Request| {
            let (lock, cv) = &*handler_gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            match req {
                Request::Health => Response::Ok,
                _ => Response::Error {
                    code: velox_net::ErrorCode::BadRequest,
                    message: "health only".into(),
                },
            }
        }),
        NetServerConfig { workers: 1, max_pending: 1 },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Connection 1 occupies the worker (its request blocks in the
    // handler); connection 2 fills the accept queue.
    let mut busy = TcpStream::connect(addr).expect("dial 1");
    write_frame(&mut busy, &Request::Health.encode()).expect("send blocked request");
    std::thread::sleep(Duration::from_millis(50));
    let _parked = TcpStream::connect(addr).expect("dial 2");
    std::thread::sleep(Duration::from_millis(50));

    // Connection 3 must be shed: an Overloaded reply, then a close —
    // never a hang.
    let mut shed = TcpStream::connect(addr).expect("dial 3");
    shed.set_read_timeout(Some(Duration::from_secs(1))).unwrap();
    let reply = read_frame(&mut shed).expect("shed connection gets a reply frame");
    match Response::decode(&reply).expect("decodable reply") {
        Response::Error { code, .. } => assert_eq!(code, velox_net::ErrorCode::Overloaded),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(server.shed_count() >= 1, "the shed must be counted");

    // A NetClient dialing the saturated server sees a clean retryable
    // error within its deadline — not a hang.
    let client = NetClient::with_config(
        addr,
        NetClientConfig {
            request_timeout: Duration::from_millis(600),
            per_try_timeout: Some(Duration::from_millis(150)),
            retry: RetryPolicy { max_attempts: 2, ..RetryPolicy::none() },
            ..Default::default()
        },
    );
    let timer = Instant::now();
    match client.call(&Request::Health) {
        Err(NetError::Overloaded) | Err(NetError::Timeout) | Err(NetError::Io(_)) => {}
        other => panic!("expected a clean error from a saturated server, got {other:?}"),
    }
    assert!(timer.elapsed() < Duration::from_secs(2), "saturation must never hang the client");
    assert!(client.metrics().attempts.get() >= 1);

    // Open the gate so the parked worker drains and shutdown can join.
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    let reply = {
        busy.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        read_frame(&mut busy).expect("blocked request completes once the gate opens")
    };
    assert_eq!(Response::decode(&reply).unwrap(), Response::Ok);
}
