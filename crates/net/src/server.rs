//! Blocking TCP server with a fixed worker pool.
//!
//! The shape follows the serving tier Clipper-style RPC front-ends use:
//! an accept thread hands persistent connections to a pool of worker
//! threads; each worker owns one connection at a time and runs its
//! request/response loop (one frame in, one frame out) until the peer
//! closes. No async runtime, no epoll — the cluster peers keep a handful
//! of long-lived connections each, so pinning a worker per live
//! connection is the simplest design that serves the paper's workload.
//! Size `workers` above the expected number of concurrently connected
//! peers; excess connections wait in the accept queue until a worker
//! frees up (clients see a deadline miss, not a hang).
//!
//! Shutdown is prompt even with workers blocked in `read`: the server
//! keeps a clone of every live connection in a slab and calls
//! `TcpStream::shutdown` on each, which unblocks the owning worker.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use velox_obs::TraceContext;

use crate::frame::{read_frame_ext, write_frame, FrameError};
use crate::rpc::{ErrorCode, Request, Response};

/// Per-request transport metadata handed to [`Handler::handle_traced`]:
/// the propagated trace context (if the caller sent one) plus the
/// trace-clock time the request frame finished arriving, which lets the
/// handler account decode + dispatch ("server queue wait") to a span.
#[derive(Debug, Clone, Copy, Default)]
pub struct RpcContext {
    /// Trace context from the frame header extension, if any.
    pub trace: Option<TraceContext>,
    /// [`velox_obs::trace::now_ns`] right after the frame was read
    /// (0 when the request carried no trace context).
    pub recv_ns: u64,
    /// Unknown header-extension TLVs skipped while decoding the frame.
    pub unknown_exts: u32,
}

/// Implemented by whatever owns the node's state; called once per frame.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for one decoded request.
    fn handle(&self, req: Request) -> Response;

    /// Like [`Handler::handle`], but with transport metadata. The default
    /// ignores the metadata, so plain closures keep working; trace-aware
    /// handlers (the cluster's `NodeState`) override this.
    fn handle_traced(&self, req: Request, rpc: RpcContext) -> Response {
        let _ = rpc;
        self.handle(req)
    }
}

impl<F> Handler for F
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: Request) -> Response {
        self(req)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Worker threads (each pins one live connection). Must exceed the
    /// number of concurrently connected peers.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before the
    /// server sheds new arrivals with an [`ErrorCode::Overloaded`] reply
    /// and a close — bounded so a worker-pool stall degrades into clean,
    /// retryable errors instead of an unbounded queue of hung dials.
    pub max_pending: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig { workers: 8, max_pending: 64 }
    }
}

/// Connections waiting for a worker.
struct AcceptQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// A running server; dropping it (or calling [`NetServer::shutdown`])
/// stops the accept loop, unblocks every worker, and joins all threads.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    accept_queue: Arc<AcceptQueue>,
    shed: Arc<AtomicU64>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `handler` on `config.workers` threads.
    pub fn bind(
        addr: &str,
        handler: Arc<dyn Handler>,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let accept_queue =
            Arc::new(AcceptQueue { queue: Mutex::new(VecDeque::new()), ready: Condvar::new() });
        let next_conn_id = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));

        let mut threads = Vec::with_capacity(config.workers + 1);
        {
            let stop = Arc::clone(&stop);
            let q = Arc::clone(&accept_queue);
            let shed = Arc::clone(&shed);
            let max_pending = config.max_pending.max(1);
            threads.push(std::thread::spawn(move || {
                for incoming in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let _ = stream.set_nodelay(true);
                    let backlog = q.queue.lock().unwrap().len();
                    if backlog >= max_pending {
                        shed.fetch_add(1, Ordering::Relaxed);
                        shed_connection(stream);
                        continue;
                    }
                    q.queue.lock().unwrap().push_back(stream);
                    q.ready.notify_one();
                }
            }));
        }

        for _ in 0..config.workers.max(1) {
            let stop = Arc::clone(&stop);
            let q = Arc::clone(&accept_queue);
            let conns = Arc::clone(&conns);
            let ids = Arc::clone(&next_conn_id);
            let handler = Arc::clone(&handler);
            threads.push(std::thread::spawn(move || loop {
                let stream = {
                    let mut queue = q.queue.lock().unwrap();
                    loop {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        if let Some(s) = queue.pop_front() {
                            break s;
                        }
                        queue = q.ready.wait(queue).unwrap();
                    }
                };
                let id = ids.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().unwrap().insert(id, clone);
                }
                serve_connection(stream, &*handler, &stop);
                conns.lock().unwrap().remove(&id);
            }));
        }

        Ok(NetServer { addr: local, stop, conns, accept_queue, shed, threads })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections shed with an `Overloaded` reply because the accept
    /// queue was full.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Stops accepting, severs every live connection, and joins all
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        // Unblock workers parked on the queue. Holding the queue lock
        // while notifying means a worker that checked `stop` before the
        // swap has already reached `wait` and cannot miss the wakeup.
        {
            let _queue = self.accept_queue.queue.lock().unwrap();
            self.accept_queue.ready.notify_all();
        }
        // ...and workers parked in read().
        for (_, conn) in self.conns.lock().unwrap().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Tells a shed connection why it is being turned away, then closes it.
/// The reply frame arrives before the peer's first request, which is
/// fine: the client reads one response per request, so the `Overloaded`
/// error is what its in-flight (or next) call observes, and the close
/// behind it fails any further use of the connection fast.
fn shed_connection(stream: TcpStream) {
    let reply =
        Response::Error { code: ErrorCode::Overloaded, message: "server accept queue full".into() };
    let mut writer = &stream;
    let _ = write_frame(&mut writer, &reply.encode());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// One connection's request/response loop: runs until the peer closes,
/// the bytes stop parsing, or the server shuts down.
fn serve_connection(stream: TcpStream, handler: &dyn Handler, stop: &AtomicBool) {
    // Buffer the read side so one kernel read covers the whole frame —
    // extended frames are parsed in several small reads (header, ext_len,
    // ext, payload) that must not each cost a syscall. Writes stay on the
    // raw stream; `&TcpStream` is `Read + Write`, so shutdown still
    // severs both sides.
    let mut reader = std::io::BufReader::with_capacity(4096, &stream);
    let mut writer = &stream;
    loop {
        let (payload, meta) = match read_frame_ext(&mut reader) {
            Ok(p) => p,
            Err(_) => return, // orderly close, torn frame, or severed by shutdown
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        let rpc = RpcContext {
            trace: meta.trace,
            recv_ns: if meta.trace.is_some() { velox_obs::trace::now_ns() } else { 0 },
            unknown_exts: meta.unknown_exts,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => handler.handle_traced(req, rpc),
            Err(e) => Response::Error { code: ErrorCode::BadRequest, message: e.to_string() },
        };
        if let Err(err) = write_frame(&mut writer, &response.encode()) {
            // A client that vanished mid-response is routine; anything else
            // still just drops the connection (the client will redial).
            let _ = err;
            return;
        }
    }
}

/// Classifies a [`FrameError`] for retry decisions: timeouts are distinct
/// from hard connection failures.
pub fn frame_error_is_fatal(err: &FrameError) -> bool {
    !err.is_timeout()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::read_frame;

    fn echo_server() -> NetServer {
        NetServer::bind(
            "127.0.0.1:0",
            Arc::new(|req: Request| match req {
                Request::Health => Response::Ok,
                Request::FetchWeights { uid } => Response::Weights { w: Some(vec![uid as f64]) },
                _ => Response::Error { code: ErrorCode::BadRequest, message: "echo only".into() },
            }),
            NetServerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn serves_frames_over_a_persistent_connection() {
        let server = echo_server();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        for uid in 0..10u64 {
            write_frame(&mut conn, &Request::FetchWeights { uid }.encode()).unwrap();
            let resp = Response::decode(&read_frame(&mut conn).unwrap()).unwrap();
            assert_eq!(resp, Response::Weights { w: Some(vec![uid as f64]) });
        }
    }

    #[test]
    fn garbage_payload_gets_bad_request() {
        let server = echo_server();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        write_frame(&mut conn, &[0xFF, 0xFE]).unwrap();
        match Response::decode(&read_frame(&mut conn).unwrap()).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_unblocks_parked_workers() {
        let mut server = echo_server();
        // Park a worker on an idle connection, then shut down; the join in
        // shutdown() only returns if the worker was unblocked.
        let _idle = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown();
    }
}
