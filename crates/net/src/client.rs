//! RPC client: connection pooling, deadlines, budgeted reconnect/retry.
//!
//! A [`NetClient`] owns a small pool of persistent connections to one
//! node. Calls check a connection out of the pool (dialing lazily on
//! first use), set the socket's read/write timeouts from the remaining
//! budget, and run one frame round trip. Failures are classified — a
//! refused dial is not a blown deadline — and retried under a budgeted
//! exponential-backoff policy for as long as the caller's deadline has
//! room, with an explicit [`RetryMode`] so non-idempotent requests are
//! never replayed past the point where they may have been applied.
//!
//! The client is also the chaos injection point for the CHAOS-NET
//! adversary: when a [`ChaosLink`] is attached, every attempt asks the
//! shared [`LinkChaos`] engine for a verdict and perturbs the real
//! socket accordingly (drop, delay, duplicate, corrupt, reset,
//! directional partition) — so fault handling is exercised against the
//! same code that serves production traffic, not a mock.

use std::io::ErrorKind;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use velox_cluster::netfault::{LinkChaos, LinkVerdict};
use velox_cluster::retry::RetryPolicy;
use velox_data::VeloxRng;
use velox_obs::{Counter, Registry, TraceContext};

use crate::frame::{encode_frame_ext, read_frame, write_frame_ext, FrameError};
use crate::rpc::{ErrorCode, Request, Response};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Cap on pooled idle connections. Keep small: each pooled connection
    /// pins a worker thread at the server while idle.
    pub pool_size: usize,
    /// Timeout for establishing a new connection.
    pub connect_timeout: Duration,
    /// Default per-request deadline (round trip, including all retries).
    pub request_timeout: Duration,
    /// Cap on one attempt's round trip. `None` lets a single attempt use
    /// the whole remaining deadline (no intra-call retry after a slow
    /// attempt); setting it below `request_timeout` is what gives retries
    /// room to run.
    pub per_try_timeout: Option<Duration>,
    /// Attempt budget and backoff shape shared with the cluster layer.
    pub retry: RetryPolicy,
    /// Seed for backoff jitter (deterministic per client).
    pub backoff_seed: u64,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            pool_size: 1,
            connect_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_secs(2),
            per_try_timeout: None,
            retry: RetryPolicy::default(),
            backoff_seed: 0xBACC_0FF5,
        }
    }
}

/// Why an RPC failed at the transport layer. The classes are the
/// failure-detector's vocabulary: a [`NetError::ConnectFailed`] peer is
/// *dead or unreachable* (nothing was delivered), a [`NetError::Timeout`]
/// peer is *slow or silent* (the request may have been applied), and a
/// mid-call [`NetError::Io`] leaves delivery ambiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The deadline expired after the request was (possibly) delivered.
    Timeout,
    /// No connection could be established — refused, reset during dial,
    /// unreachable, or the dial timed out. The request was never sent.
    ConnectFailed(String),
    /// The connection failed mid-call (reset, closed, write error) after
    /// the request may have been sent: delivery is ambiguous.
    Io(String),
    /// Bytes arrived but were not a valid frame or message.
    Corrupt(String),
    /// The server shed the request before dispatch (accept queue full).
    /// Definitely not applied; retry after backoff.
    Overloaded,
}

impl NetError {
    /// True when the request was provably never delivered to the server,
    /// making a replay unconditionally safe even for non-idempotent
    /// requests.
    pub fn definitely_not_delivered(&self) -> bool {
        matches!(self, NetError::ConnectFailed(_) | NetError::Overloaded)
    }

    /// True when an idempotent request may reasonably be retried.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, NetError::Corrupt(_))
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Timeout => write!(f, "rpc deadline exceeded"),
            NetError::ConnectFailed(what) => write!(f, "rpc connect failed: {what}"),
            NetError::Io(what) => write!(f, "rpc io error: {what}"),
            NetError::Corrupt(what) => write!(f, "rpc corrupt reply: {what}"),
            NetError::Overloaded => write!(f, "server overloaded (request shed before dispatch)"),
        }
    }
}

impl std::error::Error for NetError {}

/// Replay policy for one logical call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryMode {
    /// The request is safe to replay at will (predict, health, weight
    /// reads, dedupe-keyed ship/observe). Retries any retryable error.
    Idempotent,
    /// The request must not run twice. Retries only errors that prove
    /// the request was never delivered ([`NetError::ConnectFailed`],
    /// [`NetError::Overloaded`]); the first ambiguous failure is final.
    AtMostOnce,
}

fn classify(err: FrameError) -> NetError {
    match err {
        FrameError::Closed => NetError::Io("connection closed".into()),
        ref e @ FrameError::Io(_) if e.is_timeout() => NetError::Timeout,
        FrameError::Io(e) => NetError::Io(e.to_string()),
        FrameError::Corrupt(what) => NetError::Corrupt(what),
        FrameError::TooLarge(len) => NetError::Corrupt(format!("frame length {len} too large")),
    }
}

/// Per-client counters, registered under `/metrics` by the runtime so
/// dashboards can tell a dead peer (connect failures) from a slow one
/// (timeouts).
#[derive(Debug, Clone)]
pub struct ClientMetrics {
    /// RPC attempts sent (first tries + retries).
    pub attempts: Arc<Counter>,
    /// Attempts that were retries of an earlier failure.
    pub retries: Arc<Counter>,
    /// Attempts that failed to establish a connection.
    pub connect_failures: Arc<Counter>,
    /// Attempts that expired (per-try or whole-call deadline).
    pub timeouts: Arc<Counter>,
    /// Attempts that died mid-call on a connection error.
    pub io_errors: Arc<Counter>,
    /// Replies shed by an overloaded server before dispatch.
    pub overloaded: Arc<Counter>,
}

impl ClientMetrics {
    /// Fresh zeroed counters. Share one instance across a peer's client
    /// incarnations so the series survive restarts.
    pub fn new() -> Self {
        ClientMetrics {
            attempts: Arc::new(Counter::new()),
            retries: Arc::new(Counter::new()),
            connect_failures: Arc::new(Counter::new()),
            timeouts: Arc::new(Counter::new()),
            io_errors: Arc::new(Counter::new()),
            overloaded: Arc::new(Counter::new()),
        }
    }

    /// Registers the counters with `registry`, labelled for one peer.
    pub fn register(&self, registry: &Registry, labels: &[(&str, &str)]) {
        registry.register_counter("velox_net_client_attempts_total", labels, self.attempts.clone());
        registry.register_counter("velox_net_client_retries_total", labels, self.retries.clone());
        registry.register_counter(
            "velox_net_client_connect_failures_total",
            labels,
            self.connect_failures.clone(),
        );
        registry.register_counter("velox_net_client_timeouts_total", labels, self.timeouts.clone());
        registry.register_counter(
            "velox_net_client_io_errors_total",
            labels,
            self.io_errors.clone(),
        );
        registry.register_counter(
            "velox_net_client_overloaded_total",
            labels,
            self.overloaded.clone(),
        );
    }

    fn count(&self, err: &NetError) {
        match err {
            NetError::Timeout => self.timeouts.inc(),
            NetError::ConnectFailed(_) => self.connect_failures.inc(),
            NetError::Io(_) | NetError::Corrupt(_) => self.io_errors.inc(),
            NetError::Overloaded => self.overloaded.inc(),
        }
    }
}

impl Default for ClientMetrics {
    fn default() -> Self {
        ClientMetrics::new()
    }
}

/// Attachment point for the CHAOS-NET adversary: the shared engine plus
/// this client's directional link identity.
#[derive(Clone)]
pub struct ChaosLink {
    /// The backend-wide fault engine.
    pub chaos: Arc<LinkChaos>,
    /// Sending peer id (`FRONT_PEER` for the routing tier).
    pub src: u32,
    /// Receiving peer id (the node this client dials).
    pub dst: u32,
}

/// A pooled RPC client for one node address.
pub struct NetClient {
    addr: SocketAddr,
    config: NetClientConfig,
    pool: Mutex<Vec<TcpStream>>,
    metrics: ClientMetrics,
    backoff_rng: Mutex<VeloxRng>,
    chaos: Option<ChaosLink>,
}

impl NetClient {
    /// Creates a client for `addr` with default configuration. No
    /// connection is made until the first call.
    pub fn connect(addr: SocketAddr) -> NetClient {
        NetClient::with_config(addr, NetClientConfig::default())
    }

    /// Creates a client with explicit configuration.
    pub fn with_config(addr: SocketAddr, config: NetClientConfig) -> NetClient {
        let backoff_rng = Mutex::new(VeloxRng::seed_from(config.backoff_seed));
        NetClient {
            addr,
            config,
            pool: Mutex::new(Vec::new()),
            metrics: ClientMetrics::new(),
            backoff_rng,
            chaos: None,
        }
    }

    /// Attaches the chaos engine to this client's link (builder-style).
    pub fn with_chaos(mut self, link: ChaosLink) -> NetClient {
        self.chaos = Some(link);
        self
    }

    /// Shares externally owned counters (builder-style), so a peer's
    /// metrics survive its clients being rebuilt on restart.
    pub fn with_metrics(mut self, metrics: ClientMetrics) -> NetClient {
        self.metrics = metrics;
        self
    }

    /// The node this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This client's attempt/failure counters.
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    /// One RPC round trip under the default deadline.
    pub fn call(&self, req: &Request) -> Result<Response, NetError> {
        self.call_deadline(req, self.config.request_timeout)
    }

    /// One RPC round trip under the default deadline, propagating `trace`
    /// in the frame header extension when present.
    pub fn call_traced(
        &self,
        req: &Request,
        trace: Option<&TraceContext>,
    ) -> Result<Response, NetError> {
        self.call_deadline_traced(req, self.config.request_timeout, trace)
    }

    /// One RPC round trip that must complete within `deadline`, retrying
    /// (reconnects included) while the deadline and the attempt budget
    /// both have room.
    pub fn call_deadline(&self, req: &Request, deadline: Duration) -> Result<Response, NetError> {
        self.call_deadline_traced(req, deadline, None)
    }

    /// [`NetClient::call_deadline`] with trace-context propagation.
    pub fn call_deadline_traced(
        &self,
        req: &Request,
        deadline: Duration,
        trace: Option<&TraceContext>,
    ) -> Result<Response, NetError> {
        self.call_mode(req, deadline, trace, RetryMode::Idempotent)
    }

    /// The full-control entry point: deadline, trace, and replay policy.
    pub fn call_mode(
        &self,
        req: &Request,
        deadline: Duration,
        trace: Option<&TraceContext>,
        mode: RetryMode,
    ) -> Result<Response, NetError> {
        let started = Instant::now();
        let payload = req.encode();
        let budget = self.config.retry.max_attempts.max(1);
        let mut last_err: Option<NetError> = None;
        for attempt in 0..budget {
            let remaining = match deadline.checked_sub(started.elapsed()) {
                Some(d) if !d.is_zero() => d,
                _ => return Err(last_err.unwrap_or(NetError::Timeout)),
            };
            if attempt > 0 {
                self.metrics.retries.inc();
                let pause = {
                    let mut rng = self.backoff_rng.lock().unwrap();
                    self.config.retry.backoff(attempt - 1, &mut rng)
                };
                if pause >= remaining {
                    return Err(last_err.unwrap_or(NetError::Timeout));
                }
                std::thread::sleep(pause);
            }
            self.metrics.attempts.inc();

            let verdict = match &self.chaos {
                Some(link) => link.chaos.verdict(link.src, link.dst),
                None => LinkVerdict::default(),
            };
            if verdict.partitioned_request {
                // The forward path is cut: the dial (or the frame) would
                // never arrive. Fail fast without burning the deadline —
                // provably not delivered, so every mode may retry.
                let e = NetError::ConnectFailed("chaos: link partitioned".into());
                self.metrics.count(&e);
                last_err = Some(e);
                continue;
            }

            let remaining = match deadline.checked_sub(started.elapsed()) {
                Some(d) if !d.is_zero() => d,
                _ => return Err(last_err.unwrap_or(NetError::Timeout)),
            };
            let try_budget = match self.config.per_try_timeout {
                Some(cap) => cap.min(remaining),
                None => remaining,
            };
            let try_started = Instant::now();
            let mut conn = match self.checkout(try_budget, attempt > 0) {
                Ok(c) => c,
                Err(e) => {
                    self.metrics.count(&e);
                    last_err = Some(e);
                    continue;
                }
            };
            match round_trip(&mut conn, &payload, try_started, try_budget, trace, &verdict) {
                Ok(Response::Error { code: ErrorCode::Overloaded, .. }) => {
                    // The server shed us before reading the request and
                    // closed the connection: provably not applied.
                    let e = NetError::Overloaded;
                    self.metrics.count(&e);
                    last_err = Some(e);
                }
                Ok(resp) => {
                    if verdict.clean() || only_delay(&verdict) {
                        self.check_in(conn);
                    }
                    return Ok(resp);
                }
                Err((e, sent)) => {
                    self.metrics.count(&e);
                    let fatal =
                        mode == RetryMode::AtMostOnce && sent && !e.definitely_not_delivered();
                    last_err = Some(e);
                    if fatal {
                        // The request may have been applied; a blind
                        // replay could run it twice. The caller owns any
                        // dedupe-protected recovery from here.
                        return Err(last_err.unwrap());
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| NetError::Io("exhausted retries".into())))
    }

    /// Takes a pooled connection, or dials. `force_fresh` skips the pool
    /// (used on retry, when the pooled connection just failed).
    fn checkout(&self, remaining: Duration, force_fresh: bool) -> Result<TcpStream, NetError> {
        if !force_fresh {
            if let Some(conn) = self.pool.lock().unwrap().pop() {
                return Ok(conn);
            }
        }
        let connect_budget = self.config.connect_timeout.min(remaining);
        let conn = TcpStream::connect_timeout(&self.addr, connect_budget).map_err(|e| {
            if e.kind() == ErrorKind::TimedOut || e.kind() == ErrorKind::WouldBlock {
                NetError::ConnectFailed(format!("connect {} timed out", self.addr))
            } else {
                NetError::ConnectFailed(format!("connect {}: {e}", self.addr))
            }
        })?;
        let _ = conn.set_nodelay(true);
        Ok(conn)
    }

    /// Returns a healthy connection to the pool (dropped when full).
    fn check_in(&self, conn: TcpStream) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < self.config.pool_size {
            pool.push(conn);
        }
    }

    /// Drops every pooled connection (next call redials). Used when a
    /// node is known to have restarted on a new port.
    pub fn reset(&self) {
        self.pool.lock().unwrap().clear();
    }
}

fn only_delay(v: &LinkVerdict) -> bool {
    let mut stripped = *v;
    stripped.delay_us = 0;
    stripped.clean()
}

/// Sends one frame and reads one reply, arming socket timeouts from the
/// remaining attempt budget before each blocking step and applying the
/// chaos verdict to the real socket. Errors carry a `sent` flag: whether
/// the request bytes may have reached the server (ambiguous delivery).
fn round_trip(
    conn: &mut TcpStream,
    payload: &[u8],
    started: Instant,
    deadline: Duration,
    trace: Option<&TraceContext>,
    verdict: &LinkVerdict,
) -> Result<Response, (NetError, bool)> {
    let arm = |conn: &TcpStream| -> Result<(), NetError> {
        let remaining = deadline.checked_sub(started.elapsed()).ok_or(NetError::Timeout)?;
        if remaining.is_zero() {
            return Err(NetError::Timeout);
        }
        conn.set_write_timeout(Some(remaining)).map_err(|e| NetError::Io(e.to_string()))?;
        conn.set_read_timeout(Some(remaining)).map_err(|e| NetError::Io(e.to_string()))?;
        Ok(())
    };
    arm(conn).map_err(|e| (e, false))?;

    if verdict.delay_us > 0 {
        let delay = Duration::from_micros(verdict.delay_us).min(deadline);
        std::thread::sleep(delay);
        arm(conn).map_err(|e| (e, false))?;
    }

    if verdict.drop {
        // The request frame is lost in flight. From this side the write
        // "succeeded", so delivery is ambiguous (`sent = true`) and the
        // only observable outcome is a reply that never comes.
        let mut byte = [0u8; 1];
        use std::io::Read;
        return match conn.read(&mut byte) {
            Ok(0) => Err((NetError::Io("connection closed".into()), true)),
            Ok(_) => Err((NetError::Io("unsolicited reply".into()), true)),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Err((NetError::Timeout, true))
            }
            Err(e) => Err((NetError::Io(e.to_string()), true)),
        };
    }

    if verdict.corrupt {
        // Corrupt the frame after framing: flip one payload bit so the
        // server's CRC check must reject it and close the connection.
        use std::io::Write;
        let mut bytes = encode_frame_ext(payload, trace).map_err(|e| (classify(e), false))?;
        let mid = bytes.len() - payload.len() / 2 - 1;
        bytes[mid] ^= 0x10;
        conn.write_all(&bytes).map_err(|e| (NetError::Io(e.to_string()), true))?;
        let _ = conn.flush();
        // The server drops the connection without replying.
        return match read_frame(conn) {
            Ok(_) => Err((NetError::Io("reply to corrupt frame".into()), true)),
            Err(e) => Err((classify(e), true)),
        };
    }

    write_frame_ext(conn, payload, trace).map_err(|e| (classify(e), true))?;

    if verdict.duplicate {
        // Deliver the frame twice. The server will process both and
        // write two replies; we read one and poison the connection, so
        // the request layer's dedupe is what must absorb the replay.
        write_frame_ext(conn, payload, trace).map_err(|e| (classify(e), true))?;
    }

    if verdict.reset {
        // Sever the connection right after the send: the classic
        // applied-but-never-acked shape.
        let _ = conn.shutdown(Shutdown::Both);
        return Err((NetError::Io("connection reset (chaos)".into()), true));
    }

    if verdict.partitioned_response {
        // The reverse path is cut: the request arrives and is applied,
        // but no ack can come back.
        return Err((NetError::Timeout, true));
    }

    arm(conn).map_err(|e| (e, true))?;
    let reply = read_frame(conn).map_err(|e| (classify(e), true))?;
    let resp = Response::decode(&reply).map_err(|e| (NetError::Corrupt(e.to_string()), true))?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetServer, NetServerConfig};
    use std::sync::Arc;

    fn health_server() -> NetServer {
        NetServer::bind(
            "127.0.0.1:0",
            Arc::new(|req: Request| match req {
                Request::Health => Response::Ok,
                _ => Response::Error { code: ErrorCode::BadRequest, message: "health".into() },
            }),
            NetServerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn calls_reuse_the_pooled_connection() {
        let server = health_server();
        let client = NetClient::connect(server.local_addr());
        for _ in 0..20 {
            assert_eq!(client.call(&Request::Health).unwrap(), Response::Ok);
        }
        assert_eq!(client.metrics().attempts.get(), 20);
        assert_eq!(client.metrics().retries.get(), 0);
    }

    #[test]
    fn reconnects_after_server_restart_on_same_port() {
        let mut server = health_server();
        let addr = server.local_addr();
        let client = NetClient::connect(addr);
        assert_eq!(client.call(&Request::Health).unwrap(), Response::Ok);
        server.shutdown();
        let mut server2 =
            NetServer::bind(&addr.to_string(), Arc::new(|_| Response::Ok), Default::default())
                .unwrap();
        // The pooled connection is dead; the call must redial transparently.
        assert_eq!(client.call(&Request::Health).unwrap(), Response::Ok);
        server2.shutdown();
    }

    #[test]
    fn refused_connection_classifies_as_connect_failed() {
        let addr: SocketAddr = {
            // Bind then drop to get a port with (very likely) no listener.
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = NetClient::connect(addr);
        let started = Instant::now();
        let err = client.call_deadline(&Request::Health, Duration::from_millis(300)).unwrap_err();
        assert!(matches!(err, NetError::ConnectFailed(_)), "got {err:?}");
        assert!(err.definitely_not_delivered());
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(client.metrics().connect_failures.get() >= 1);
    }

    /// The redial-once bug: with a generous deadline the client must keep
    /// reconnecting (with backoff) until the attempt budget — not bail
    /// after a single redial. Attempt 1 hits a dead pooled connection,
    /// attempt 2's redial is refused (listener gone), attempt 3 must
    /// still happen and succeed against the restarted listener.
    #[test]
    fn retries_reconnect_while_deadline_budget_remains() {
        let mut server = health_server();
        let addr = server.local_addr();
        let config = NetClientConfig {
            retry: RetryPolicy {
                max_attempts: 6,
                backoff_base: Duration::from_millis(30),
                backoff_max: Duration::from_millis(60),
                jitter: 0.0,
            },
            ..Default::default()
        };
        let client = NetClient::with_config(addr, config);
        assert_eq!(client.call(&Request::Health).unwrap(), Response::Ok);
        server.shutdown();
        // Restart the listener after ~one backoff, while the client is
        // already mid-call burning attempts against the dead port.
        let addr_str = addr.to_string();
        let restarter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(80));
            NetServer::bind(&addr_str, Arc::new(|_| Response::Ok), Default::default()).unwrap()
        });
        let resp = client.call_deadline(&Request::Health, Duration::from_secs(5)).unwrap();
        assert_eq!(resp, Response::Ok);
        assert!(
            client.metrics().retries.get() >= 2,
            "expected multiple redials, got {}",
            client.metrics().retries.get()
        );
        restarter.join().unwrap().shutdown();
    }

    /// AtMostOnce stops at the first ambiguous (post-send) failure
    /// instead of replaying a request that may have been applied.
    #[test]
    fn at_most_once_does_not_replay_ambiguous_failures() {
        let mut server = health_server();
        let addr = server.local_addr();
        let client = NetClient::with_config(
            addr,
            NetClientConfig {
                retry: RetryPolicy { max_attempts: 5, ..Default::default() },
                per_try_timeout: Some(Duration::from_millis(150)),
                ..Default::default()
            },
        );
        assert_eq!(client.call(&Request::Health).unwrap(), Response::Ok);
        // Kill the server: the pooled connection dies mid-call, which is
        // a post-send ambiguous failure.
        server.shutdown();
        let err = client
            .call_mode(&Request::Health, Duration::from_secs(2), None, RetryMode::AtMostOnce)
            .unwrap_err();
        assert!(!err.definitely_not_delivered(), "got {err:?}");
        // One initial attempt only — no replays of the ambiguous failure.
        assert_eq!(client.metrics().retries.get(), 0);
    }
}
