//! RPC client: connection pooling, per-request deadlines, reconnect.
//!
//! A [`NetClient`] owns a small pool of persistent connections to one
//! node. Calls check a connection out of the pool (dialing lazily on
//! first use), set the socket's read/write timeouts from the *remaining*
//! request deadline, and run one frame round trip. A connection that
//! fails mid-call is discarded and — unless the deadline is the thing
//! that expired — the call redials once and retries, so a node restart
//! costs one reconnect rather than a failed request.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use velox_obs::TraceContext;

use crate::frame::{read_frame, write_frame_ext, FrameError};
use crate::rpc::{Request, Response};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Cap on pooled idle connections. Keep small: each pooled connection
    /// pins a worker thread at the server while idle.
    pub pool_size: usize,
    /// Timeout for establishing a new connection.
    pub connect_timeout: Duration,
    /// Default per-request deadline (round trip, including any redial).
    pub request_timeout: Duration,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            pool_size: 1,
            connect_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_secs(2),
        }
    }
}

/// Why an RPC failed at the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The request deadline expired (connect, send, or awaiting reply).
    Timeout,
    /// Connecting or talking to the node failed.
    Io(String),
    /// Bytes arrived but were not a valid frame or message.
    Corrupt(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Timeout => write!(f, "rpc deadline exceeded"),
            NetError::Io(what) => write!(f, "rpc io error: {what}"),
            NetError::Corrupt(what) => write!(f, "rpc corrupt reply: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

fn classify(err: FrameError) -> NetError {
    match err {
        FrameError::Closed => NetError::Io("connection closed".into()),
        ref e @ FrameError::Io(_) if e.is_timeout() => NetError::Timeout,
        FrameError::Io(e) => NetError::Io(e.to_string()),
        FrameError::Corrupt(what) => NetError::Corrupt(what),
        FrameError::TooLarge(len) => NetError::Corrupt(format!("frame length {len} too large")),
    }
}

/// A pooled RPC client for one node address.
pub struct NetClient {
    addr: SocketAddr,
    config: NetClientConfig,
    pool: Mutex<Vec<TcpStream>>,
}

impl NetClient {
    /// Creates a client for `addr` with default configuration. No
    /// connection is made until the first call.
    pub fn connect(addr: SocketAddr) -> NetClient {
        NetClient::with_config(addr, NetClientConfig::default())
    }

    /// Creates a client with explicit configuration.
    pub fn with_config(addr: SocketAddr, config: NetClientConfig) -> NetClient {
        NetClient { addr, config, pool: Mutex::new(Vec::new()) }
    }

    /// The node this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One RPC round trip under the default deadline.
    pub fn call(&self, req: &Request) -> Result<Response, NetError> {
        self.call_deadline(req, self.config.request_timeout)
    }

    /// One RPC round trip under the default deadline, propagating `trace`
    /// in the frame header extension when present.
    pub fn call_traced(
        &self,
        req: &Request,
        trace: Option<&TraceContext>,
    ) -> Result<Response, NetError> {
        self.call_deadline_traced(req, self.config.request_timeout, trace)
    }

    /// One RPC round trip that must complete within `deadline`. On a
    /// connection failure the call redials once if deadline remains.
    pub fn call_deadline(&self, req: &Request, deadline: Duration) -> Result<Response, NetError> {
        self.call_deadline_traced(req, deadline, None)
    }

    /// [`NetClient::call_deadline`] with trace-context propagation.
    pub fn call_deadline_traced(
        &self,
        req: &Request,
        deadline: Duration,
        trace: Option<&TraceContext>,
    ) -> Result<Response, NetError> {
        let started = Instant::now();
        let payload = req.encode();
        let mut last_err = None;
        for attempt in 0..2 {
            let remaining = match deadline.checked_sub(started.elapsed()) {
                Some(d) if !d.is_zero() => d,
                _ => return Err(last_err.unwrap_or(NetError::Timeout)),
            };
            let mut conn = match self.checkout(remaining, attempt > 0) {
                Ok(c) => c,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            match round_trip(&mut conn, &payload, started, deadline, trace) {
                Ok(resp) => {
                    self.check_in(conn);
                    return Ok(resp);
                }
                Err(NetError::Timeout) => {
                    // The deadline is gone either way; don't burn a retry.
                    return Err(NetError::Timeout);
                }
                Err(e) => {
                    // Connection is in an unknown state: drop it, redial.
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| NetError::Io("exhausted retries".into())))
    }

    /// Takes a pooled connection, or dials. `force_fresh` skips the pool
    /// (used on retry, when the pooled connection just failed).
    fn checkout(&self, remaining: Duration, force_fresh: bool) -> Result<TcpStream, NetError> {
        if !force_fresh {
            if let Some(conn) = self.pool.lock().unwrap().pop() {
                return Ok(conn);
            }
        }
        let connect_budget = self.config.connect_timeout.min(remaining);
        let conn = TcpStream::connect_timeout(&self.addr, connect_budget).map_err(|e| {
            if e.kind() == ErrorKind::TimedOut || e.kind() == ErrorKind::WouldBlock {
                NetError::Timeout
            } else {
                NetError::Io(format!("connect {}: {e}", self.addr))
            }
        })?;
        let _ = conn.set_nodelay(true);
        Ok(conn)
    }

    /// Returns a healthy connection to the pool (dropped when full).
    fn check_in(&self, conn: TcpStream) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < self.config.pool_size {
            pool.push(conn);
        }
    }

    /// Drops every pooled connection (next call redials). Used when a
    /// node is known to have restarted on a new port.
    pub fn reset(&self) {
        self.pool.lock().unwrap().clear();
    }
}

/// Sends one frame and reads one reply, arming socket timeouts from the
/// remaining deadline before each blocking step.
fn round_trip(
    conn: &mut TcpStream,
    payload: &[u8],
    started: Instant,
    deadline: Duration,
    trace: Option<&TraceContext>,
) -> Result<Response, NetError> {
    let arm = |conn: &TcpStream| -> Result<(), NetError> {
        let remaining = deadline.checked_sub(started.elapsed()).ok_or(NetError::Timeout)?;
        if remaining.is_zero() {
            return Err(NetError::Timeout);
        }
        conn.set_write_timeout(Some(remaining)).map_err(|e| NetError::Io(e.to_string()))?;
        conn.set_read_timeout(Some(remaining)).map_err(|e| NetError::Io(e.to_string()))?;
        Ok(())
    };
    arm(conn)?;
    write_frame_ext(conn, payload, trace).map_err(classify)?;
    arm(conn)?;
    let reply = read_frame(conn).map_err(classify)?;
    Response::decode(&reply).map_err(|e| NetError::Corrupt(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::ErrorCode;
    use crate::server::{NetServer, NetServerConfig};
    use std::sync::Arc;

    fn health_server() -> NetServer {
        NetServer::bind(
            "127.0.0.1:0",
            Arc::new(|req: Request| match req {
                Request::Health => Response::Ok,
                _ => Response::Error { code: ErrorCode::BadRequest, message: "health".into() },
            }),
            NetServerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn calls_reuse_the_pooled_connection() {
        let server = health_server();
        let client = NetClient::connect(server.local_addr());
        for _ in 0..20 {
            assert_eq!(client.call(&Request::Health).unwrap(), Response::Ok);
        }
    }

    #[test]
    fn reconnects_after_server_restart_on_same_port() {
        let mut server = health_server();
        let addr = server.local_addr();
        let client = NetClient::connect(addr);
        assert_eq!(client.call(&Request::Health).unwrap(), Response::Ok);
        server.shutdown();
        let mut server2 =
            NetServer::bind(&addr.to_string(), Arc::new(|_| Response::Ok), Default::default())
                .unwrap();
        // The pooled connection is dead; the call must redial transparently.
        assert_eq!(client.call(&Request::Health).unwrap(), Response::Ok);
        server2.shutdown();
    }

    #[test]
    fn dead_node_times_out_within_deadline() {
        let addr: SocketAddr = {
            // Bind then drop to get a port with (very likely) no listener.
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = NetClient::connect(addr);
        let started = Instant::now();
        let err = client.call_deadline(&Request::Health, Duration::from_millis(300)).unwrap_err();
        assert!(matches!(err, NetError::Timeout | NetError::Io(_)), "got {err:?}");
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
