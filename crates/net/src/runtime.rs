//! The multi-node loopback runtime: N node servers behind one front.
//!
//! [`NetCluster`] is the TCP twin of the simulator in `velox-cluster`: it
//! starts one [`NodeServer`](crate::node::NodeServer) per partition on an
//! ephemeral loopback port, keeps the shared [`PeerTable`] pointing at
//! each node's current incarnation, and implements the
//! [`Transport`] trait so every driver written against the simulator —
//! the chaos ladder, the REST layer, the benches — runs unchanged over
//! real sockets.
//!
//! Fault plans work over TCP too, but here a *kill is a kill*: the node's
//! server is shut down and its in-memory state dropped; only its WAL
//! directory survives (unless [`NetCluster::kill_node_lose_disk`] wipes
//! that as well). Recovery starts a fresh incarnation on a new port,
//! replays the local WAL, re-seeds the item table from the management
//! plane, pulls shipped records from live peers (`PullLog`), and rebuilds
//! the weight table by replaying the merged log in timestamp order.

use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use velox_cluster::netfault::{ChaosControl, LinkChaos, LinkFaultPlan, FRONT_PEER};
use velox_cluster::retry::obs_id_nonce;
use velox_cluster::transport::{
    membership_rejection, Transport, TransportError, TransportObserve, TransportPredict,
};
use velox_cluster::{
    DetectorConfig, FailureDetector, FaultAction, FaultPlan, MembershipError, MembershipView,
    MigrationOutcome, MigrationStatus, NodeHealth, NodeId, PartitionMap, PeerLiveness, PeerState,
    USER_SALT,
};
use velox_data::VeloxRng;
use velox_obs::{
    Counter, Gauge, Histogram, Registry, RootSpan, SpanKind, SpanStatus, TraceConfig, TraceContext,
    Tracer, FRONT_NODE,
};
use velox_storage::Observation;

use crate::client::{NetClient, NetClientConfig};
use crate::frame::{read_frame, write_frame};
use crate::node::{NodeConfig, NodeMetrics, NodeServer, NodeState, PeerTable};
use crate::rpc::{ErrorCode, Request, Response};

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct NetClusterConfig {
    /// Number of nodes at bootstrap.
    pub n_nodes: usize,
    /// Capacity ceiling for elastic growth (`0` means `n_nodes`): slots
    /// `n_nodes..max_nodes` start empty and come alive through
    /// [`NetCluster::join_node`].
    pub max_nodes: usize,
    /// Copies of each user's weights (primary + ring successors).
    pub user_replication: usize,
    /// LMS learning rate applied at the owning node.
    pub lr: f64,
    /// Root directory for per-node WALs (`<root>/node-<i>`); `None`
    /// disables local durability everywhere.
    pub wal_root: Option<PathBuf>,
    /// Worker threads per node server.
    pub workers: usize,
    /// Per-request deadline for front → node RPCs.
    pub request_timeout: Duration,
    /// Template for every RPC client the cluster builds (retry budget,
    /// backoff, per-try cap, pool size); `request_timeout` above
    /// overrides the template's deadline.
    pub client: NetClientConfig,
    /// Request-tracing policy. Off by default: untraced requests send
    /// byte-identical legacy frames and skip every span branch.
    pub trace: TraceConfig,
    /// Heartbeat probe period for the failure detector; `None` disables
    /// the prober (peers then only change liveness via kill/recover).
    pub heartbeat_interval: Option<Duration>,
    /// Per-probe deadline (connect + Health round trip).
    pub heartbeat_timeout: Duration,
    /// Consecutive-miss thresholds for suspect/dead.
    pub detector: DetectorConfig,
    /// Records an owner queues per partitioned replica before collapsing
    /// the queue into a full log resync on heal.
    pub ship_backlog_cap: usize,
    /// Hedge slow predict reads: when the home replica has not answered
    /// within a p99-derived delay, race a second replica and take the
    /// first reply. Off by default (costs one helper thread per predict).
    pub hedge_predicts: bool,
    /// Fail dead members out of the partition map automatically: when the
    /// failure detector declares a member `Dead` *and* its process is
    /// down, the next request triggers [`NetCluster::fail_over_dead`].
    /// Off by default — a detector verdict alone can be wrong (a cut
    /// probe path, not a dead node), so suites that partition and heal
    /// links keep ownership stable unless they opt in.
    pub auto_rebalance: bool,
    /// Wall-clock budget for one [`NetCluster::migrate_partition`]: a
    /// migration that has not committed by then aborts and rolls back
    /// (source stays authoritative, no epoch bump).
    pub migration_deadline: Duration,
    /// In-flight budget for one checkpoint chunk (encoded entry bytes per
    /// `PullPartitionChunk`). Bounds every checkpoint transfer frame —
    /// the gauge `velox_net_checkpoint_frame_max` proves it.
    pub checkpoint_chunk_bytes: u32,
    /// Consecutive Dead-and-Down evaluations of a member before
    /// auto-rebalance acts on the verdict (hysteresis against detector
    /// flaps).
    pub rebalance_hysteresis: u32,
    /// Failed or aborted auto fail-overs tolerated before auto-rebalance
    /// gives up until an operator re-enables it (each failure also backs
    /// off exponentially).
    pub rebalance_retry_cap: u32,
}

impl Default for NetClusterConfig {
    fn default() -> Self {
        NetClusterConfig {
            n_nodes: 3,
            max_nodes: 0,
            user_replication: 2,
            lr: 0.1,
            wal_root: None,
            workers: 8,
            request_timeout: Duration::from_secs(2),
            client: NetClientConfig::default(),
            trace: TraceConfig::off(),
            heartbeat_interval: Some(Duration::from_millis(50)),
            heartbeat_timeout: Duration::from_millis(100),
            detector: DetectorConfig::default(),
            ship_backlog_cap: 1024,
            hedge_predicts: false,
            auto_rebalance: false,
            migration_deadline: Duration::from_secs(30),
            checkpoint_chunk_bytes: 64 * 1024,
            rebalance_hysteresis: 3,
            rebalance_retry_cap: 5,
        }
    }
}

/// Exponential-backoff ledger for the automatic fail-over path.
struct AutoRebalanceBackoff {
    /// Consecutive failed/aborted automatic fail-overs.
    failures: u32,
    /// No automatic action before this instant.
    hold_until: Option<Instant>,
}

/// Why a migration did not commit.
enum MigrationFailure {
    /// Rolled back cleanly before the commit point (no epoch bump).
    Aborted(String),
    /// Failed past the commit point or on a control-plane error.
    Error(std::io::Error),
}

/// Fault plan in flight (events sorted by request tick).
struct FaultState {
    plan: FaultPlan,
    rng: VeloxRng,
    next_event: usize,
}

/// Per-node runtime counters that survive node restarts.
struct NodeSlot {
    server: Option<NodeServer>,
    health: AtomicU8,
    metrics: NodeMetrics,
    requests_routed: Arc<Counter>,
    failover_requests: Arc<Counter>,
    recoveries: Arc<Counter>,
    catch_up_records: Arc<Counter>,
}

/// A running loopback TCP cluster; dropping it stops every node.
pub struct NetCluster {
    config: NetClusterConfig,
    /// Epoch-stamped ownership map: the front's working copy. The control
    /// plane installs new epochs on the nodes first and here last, so a
    /// racing request can be rejected with `WrongEpoch` and refresh like
    /// any other stale client.
    map: RwLock<Arc<PartitionMap>>,
    /// Total node slots (`max_nodes` resolved against `n_nodes`).
    capacity: usize,
    peers: Arc<PeerTable>,
    slots: Vec<Mutex<NodeSlot>>,
    health: Vec<AtomicU8>,
    /// Management-plane master copy of the item table (for re-seeding
    /// recovered nodes).
    items: Mutex<HashMap<u64, Vec<f64>>>,
    request_clock: AtomicU64,
    faults: Mutex<Option<FaultState>>,
    fault_active: AtomicBool,
    /// Predict round-trip latency (µs) as seen by the front.
    predict_us: Arc<Histogram>,
    /// Observe (ack) round-trip latency (µs) as seen by the front.
    observe_us: Arc<Histogram>,
    /// Requests that found no live replica at all.
    unavailable: Arc<Counter>,
    /// Cluster-wide tracer: per-node span rings plus the front's.
    tracer: Arc<Tracer>,
    /// The CHAOS-NET link-fault engine every client routes through.
    chaos: Arc<LinkChaos>,
    /// Heartbeat-driven per-peer liveness.
    detector: Arc<FailureDetector>,
    hb_stop: Arc<AtomicBool>,
    hb_thread: Mutex<Option<JoinHandle<()>>>,
    /// Predicts that fired a hedge because the primary ran long.
    hedged: Arc<Counter>,
    /// Hedged predicts where the hedge reply was used.
    hedge_wins: Arc<Counter>,
    /// Migration ledger, oldest first (the `Migrator`'s trail).
    migration_log: Mutex<Vec<MigrationStatus>>,
    /// Front map refreshes forced by `WrongEpoch` rejections.
    map_refreshes: Arc<Counter>,
    /// Current front map epoch, scrapeable.
    map_epoch_gauge: Arc<Gauge>,
    /// Reentrancy guard for detector-triggered auto fail-over.
    auto_failover_gate: Mutex<()>,
    /// Operator kill switch for detector-triggered rebalancing (REST
    /// togglable; starts at `config.auto_rebalance`).
    auto_rebalance_enabled: AtomicBool,
    /// At-most-one in-flight migration.
    migration_active: AtomicBool,
    /// One-shot operator cancel, consumed by the in-flight (or next)
    /// migration at a chunk boundary.
    migration_cancel: AtomicBool,
    /// Per-node consecutive Dead-and-Down evaluations (hysteresis).
    dead_streak: Vec<AtomicU64>,
    /// Backoff + retry-cap state for automatic fail-over.
    auto_backoff: Mutex<AutoRebalanceBackoff>,
    /// Checkpoint chunks pulled and applied across all migrations.
    migration_chunks: Arc<Counter>,
    /// Migrations that aborted and rolled back.
    migration_aborts: Arc<Counter>,
    /// Chunk pulls retried at the same cursor after a link fault.
    migration_resumes: Arc<Counter>,
    /// Largest checkpoint-chunk response payload seen (bytes) — the
    /// CHAOS-REBALANCE gate asserts this stays within the chunk budget.
    checkpoint_frame_max: Arc<Gauge>,
    /// Observation-id generator: process-random nonce + sequence, so ids
    /// never collide across cluster restarts sharing a node's window.
    obs_nonce: u64,
    obs_seq: AtomicU64,
}

impl NetCluster {
    /// Starts `config.n_nodes` node servers on loopback and wires the
    /// peer table. Blocks until every node is listening.
    pub fn start(config: NetClusterConfig) -> std::io::Result<NetCluster> {
        assert!(config.n_nodes > 0, "cluster needs at least one node");
        let capacity = config.max_nodes.max(config.n_nodes);
        let map = Arc::new(
            PartitionMap::bootstrap(config.n_nodes, config.user_replication, USER_SALT)
                .map_err(|e| std::io::Error::other(e.to_string()))?,
        );
        let tracer = Tracer::new(capacity, config.trace);
        let chaos = Arc::new(LinkChaos::new(LinkFaultPlan::default()));
        let peers = Arc::new(PeerTable::with_chaos(capacity, Arc::clone(&chaos)));
        let detector = Arc::new(FailureDetector::new(capacity, config.detector));
        let mut slots = Vec::with_capacity(capacity);
        for node_id in 0..capacity {
            let metrics = NodeMetrics::new();
            // Headroom slots hold no process until `join_node` fills them.
            let server = if node_id < config.n_nodes {
                let (server, _) = NodeServer::start(
                    NodeConfig {
                        node_id,
                        n_nodes: capacity,
                        map: Arc::clone(&map),
                        lr: config.lr,
                        wal_dir: config
                            .wal_root
                            .as_ref()
                            .map(|r| r.join(format!("node-{node_id}"))),
                        workers: config.workers,
                        ship_backlog_cap: config.ship_backlog_cap,
                        metrics: metrics.clone(),
                        tracer: Arc::clone(&tracer),
                    },
                    Arc::clone(&peers),
                )?;
                peers.set(node_id, Some((server.local_addr(), Self::client_config(&config))));
                Some(server)
            } else {
                None
            };
            let up = server.is_some();
            let state = if up { NodeHealth::Up } else { NodeHealth::Down };
            slots.push(Mutex::new(NodeSlot {
                server,
                health: AtomicU8::new(state.encode()),
                metrics,
                requests_routed: Arc::new(Counter::new()),
                failover_requests: Arc::new(Counter::new()),
                recoveries: Arc::new(Counter::new()),
                catch_up_records: Arc::new(Counter::new()),
            }));
        }
        let health = (0..capacity)
            .map(|i| {
                let state = if i < config.n_nodes { NodeHealth::Up } else { NodeHealth::Down };
                AtomicU8::new(state.encode())
            })
            .collect();
        let hb_stop = Arc::new(AtomicBool::new(false));
        let hb_thread = config.heartbeat_interval.map(|interval| {
            spawn_heartbeat(
                Arc::clone(&peers),
                Arc::clone(&detector),
                Arc::clone(&chaos),
                Arc::clone(&hb_stop),
                interval,
                config.heartbeat_timeout,
                capacity,
            )
        });
        let map_epoch_gauge = Arc::new(Gauge::new());
        map_epoch_gauge.set(map.epoch() as i64);
        let auto_rebalance = config.auto_rebalance;
        Ok(NetCluster {
            map: RwLock::new(map),
            capacity,
            config,
            peers,
            slots,
            health,
            items: Mutex::new(HashMap::new()),
            request_clock: AtomicU64::new(0),
            faults: Mutex::new(None),
            fault_active: AtomicBool::new(false),
            predict_us: Arc::new(Histogram::new()),
            observe_us: Arc::new(Histogram::new()),
            unavailable: Arc::new(Counter::new()),
            tracer,
            chaos,
            detector,
            hb_stop,
            hb_thread: Mutex::new(hb_thread),
            hedged: Arc::new(Counter::new()),
            hedge_wins: Arc::new(Counter::new()),
            migration_log: Mutex::new(Vec::new()),
            map_refreshes: Arc::new(Counter::new()),
            map_epoch_gauge,
            auto_failover_gate: Mutex::new(()),
            auto_rebalance_enabled: AtomicBool::new(auto_rebalance),
            migration_active: AtomicBool::new(false),
            migration_cancel: AtomicBool::new(false),
            dead_streak: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            auto_backoff: Mutex::new(AutoRebalanceBackoff { failures: 0, hold_until: None }),
            migration_chunks: Arc::new(Counter::new()),
            migration_aborts: Arc::new(Counter::new()),
            migration_resumes: Arc::new(Counter::new()),
            checkpoint_frame_max: Arc::new(Gauge::new()),
            obs_nonce: obs_id_nonce(),
            obs_seq: AtomicU64::new(0),
        })
    }

    /// The per-client configuration: the shared template with the
    /// cluster's request deadline.
    fn client_config(config: &NetClusterConfig) -> NetClientConfig {
        NetClientConfig { request_timeout: config.request_timeout, ..config.client.clone() }
    }

    /// A fresh observation id: never 0 (0 opts out of dedupe).
    fn next_obs_id(&self) -> u64 {
        let id = self.obs_nonce.wrapping_add(self.obs_seq.fetch_add(1, Ordering::Relaxed) + 1);
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &NetClusterConfig {
        &self.config
    }

    /// The front's current partition map.
    pub fn map(&self) -> Arc<PartitionMap> {
        Arc::clone(&self.map.read().unwrap())
    }

    /// Current front map epoch.
    pub fn map_epoch(&self) -> u64 {
        self.map.read().unwrap().epoch()
    }

    /// Front map refreshes forced by `WrongEpoch` rejections.
    pub fn map_refresh_count(&self) -> u64 {
        self.map_refreshes.get()
    }

    /// Completed and failed migrations, oldest first.
    pub fn migrations(&self) -> Vec<MigrationStatus> {
        self.migration_log.lock().unwrap().clone()
    }

    /// Adopts `map` on the front if strictly newer; returns whether it
    /// took.
    fn install_front_map(&self, map: Arc<PartitionMap>) -> bool {
        let mut cur = self.map.write().unwrap();
        if map.epoch() <= cur.epoch() {
            return false;
        }
        self.map_epoch_gauge.set(map.epoch() as i64);
        *cur = map;
        true
    }

    /// `WrongEpoch` recovery: pulls the rejecting node's map and adopts
    /// it if newer. Returns whether the front map advanced.
    fn refresh_map_from(&self, client: &NetClient) -> bool {
        if let Ok(Response::Map { map }) = client.call(&Request::GetMap) {
            if self.install_front_map(Arc::new(map)) {
                self.map_refreshes.inc();
                return true;
            }
        }
        false
    }

    /// Home (primary) node of a user.
    pub fn home_of_user(&self, uid: u64) -> NodeId {
        self.map.read().unwrap().owner_of(uid)
    }

    /// Replica set of a user: owner first, then the partition's replicas.
    pub fn replica_nodes_of_user(&self, uid: u64) -> Vec<NodeId> {
        self.map.read().unwrap().replicas_of(uid).to_vec()
    }

    /// The client for `node`'s current incarnation (`None` while down).
    pub fn client(&self, node: NodeId) -> Option<Arc<NetClient>> {
        self.peers.get(node)
    }

    /// Installs item features everywhere (management plane): the master
    /// copy is kept for re-seeding recovered nodes.
    pub fn publish_item_features(&self, entries: Vec<(u64, Vec<f64>)>) {
        self.items.lock().unwrap().extend(entries.iter().cloned());
        let req = Request::SeedItems { entries };
        for node in 0..self.capacity {
            if let Some(client) = self.peers.get(node) {
                let _ = client.call(&req);
            }
        }
    }

    /// Crashes `node`: the server stops, its in-memory state is gone, the
    /// peer table entry clears. The WAL directory survives.
    pub fn kill_node(&self, node: NodeId) {
        let mut slot = self.slots[node].lock().unwrap();
        if let Some(mut server) = slot.server.take() {
            server.shutdown();
        }
        self.peers.set(node, None);
        slot.health.store(NodeHealth::Down.encode(), Ordering::Release);
        self.health[node].store(NodeHealth::Down.encode(), Ordering::Release);
        // A deliberate kill needs no probe evidence.
        self.detector.force(node as u32, PeerState::Dead);
    }

    /// [`NetCluster::kill_node`] plus losing the disk: the WAL directory
    /// is deleted, so recovery can only replay from replicas' shipped
    /// logs.
    pub fn kill_node_lose_disk(&self, node: NodeId) {
        self.kill_node(node);
        if let Some(root) = &self.config.wal_root {
            let _ = std::fs::remove_dir_all(root.join(format!("node-{node}")));
        }
    }

    /// Restarts `node` on a fresh port and runs full recovery: local WAL
    /// replay, item re-seed, `PullLog` from every live peer (keeping only
    /// records in this node's replica sets), weight rebuild in timestamp
    /// order. Returns how many records came back from peers.
    pub fn recover_node(&self, node: NodeId) -> std::io::Result<u64> {
        let mut slot = self.slots[node].lock().unwrap();
        slot.health.store(NodeHealth::Recovering.encode(), Ordering::Release);
        self.health[node].store(NodeHealth::Recovering.encode(), Ordering::Release);

        let (server, _recovery) = NodeServer::start(
            NodeConfig {
                node_id: node,
                n_nodes: self.capacity,
                map: self.map(),
                lr: self.config.lr,
                wal_dir: self.config.wal_root.as_ref().map(|r| r.join(format!("node-{node}"))),
                workers: self.config.workers,
                ship_backlog_cap: self.config.ship_backlog_cap,
                metrics: slot.metrics.clone(),
                tracer: Arc::clone(&self.tracer),
            },
            Arc::clone(&self.peers),
        )?;
        let state = Arc::clone(server.state());

        // Re-seed the item table from the management-plane master copy.
        {
            let items = self.items.lock().unwrap();
            let entries: Vec<(u64, Vec<f64>)> =
                items.iter().map(|(k, v)| (*k, v.clone())).collect();
            state.seed_items(&entries);
        }

        // Pull shipped records from live peers; keep only the shards this
        // node participates in.
        let mut pulled = 0u64;
        for peer in 0..self.capacity {
            if peer == node {
                continue;
            }
            let Some(client) = self.peers.get(peer) else { continue };
            if let Ok(Response::Log { records }) = client.call(&Request::PullLog { from_ts: 0 }) {
                let mine: Vec<Observation> =
                    records.into_iter().filter(|r| state.holds_user(r.uid)).collect();
                pulled += state.merge_records(&mine)?;
            }
        }
        state.rebuild_weights();
        slot.catch_up_records.add(pulled);
        slot.recoveries.inc();

        self.peers.set(node, Some((server.local_addr(), Self::client_config(&self.config))));
        slot.server = Some(server);
        slot.health.store(NodeHealth::Up.encode(), Ordering::Release);
        self.health[node].store(NodeHealth::Up.encode(), Ordering::Release);
        self.detector.force(node as u32, PeerState::Alive);
        Ok(pulled)
    }

    /// Installs `map` on every live node first and on the front last, so
    /// a request racing the rollout is rejected with `WrongEpoch` and
    /// refreshes — it is never served under a retired epoch.
    fn install_map_cluster(&self, map: &Arc<PartitionMap>) {
        let req = Request::InstallMap { map: (**map).clone() };
        for node in 0..self.capacity {
            if let Some(client) = self.peers.get(node) {
                let _ = client.call(&req);
            }
        }
        self.install_front_map(Arc::clone(map));
    }

    /// Starts a node in the first free slot, seeds its item table from
    /// the management plane, and announces it cluster-wide as a member
    /// owning nothing — ownership then moves partition by partition via
    /// [`NetCluster::rebalance_join`] / [`NetCluster::migrate_partition`].
    /// Returns the new node's id.
    pub fn join_node(&self) -> std::io::Result<NodeId> {
        let map0 = self.map();
        let node = (0..self.capacity)
            .find(|&n| !map0.is_member(n) && self.slots[n].lock().unwrap().server.is_none())
            .ok_or_else(|| {
                std::io::Error::other("no free slot for a joining node (raise max_nodes)")
            })?;
        let map1 =
            Arc::new(map0.with_member(node).map_err(|e| std::io::Error::other(e.to_string()))?);
        let mut slot = self.slots[node].lock().unwrap();
        let (server, _) = NodeServer::start(
            NodeConfig {
                node_id: node,
                n_nodes: self.capacity,
                map: Arc::clone(&map1),
                lr: self.config.lr,
                wal_dir: self.config.wal_root.as_ref().map(|r| r.join(format!("node-{node}"))),
                workers: self.config.workers,
                ship_backlog_cap: self.config.ship_backlog_cap,
                metrics: slot.metrics.clone(),
                tracer: Arc::clone(&self.tracer),
            },
            Arc::clone(&self.peers),
        )?;
        {
            let items = self.items.lock().unwrap();
            let entries: Vec<(u64, Vec<f64>)> =
                items.iter().map(|(k, v)| (*k, v.clone())).collect();
            server.state().seed_items(&entries);
        }
        self.peers.set(node, Some((server.local_addr(), Self::client_config(&self.config))));
        slot.server = Some(server);
        slot.health.store(NodeHealth::Up.encode(), Ordering::Release);
        drop(slot);
        self.health[node].store(NodeHealth::Up.encode(), Ordering::Release);
        self.detector.force(node as u32, PeerState::Alive);
        self.install_map_cluster(&map1);
        Ok(node)
    }

    /// The `Migrator`: moves partition `p` to `dst` live, with no refused
    /// predicts and no lost or double-applied acked observes.
    ///
    /// 1. **chunk_stream** — the owner's weight snapshot for `p` streams
    ///    into `dst` in bounded, CRC-checked, cursor-resumable
    ///    `PullPartitionChunk` steps (`PushPartition` inserts, never
    ///    overwrites). This runs *before* any map install, so an abort
    ///    here — operator cancel, deadline, source or destination death —
    ///    rolls back completely: `dst` is scrubbed, no epoch moved, the
    ///    source stays authoritative. A dropped or reset link is not an
    ///    abort: the pull retries at the same cursor (a *resume*) until
    ///    the deadline says otherwise.
    /// 2. **dual_write** — epoch `E+1` adds `dst` to `p`'s replica set:
    ///    the owner keeps serving, but every new observe also ships to
    ///    `dst` (with its observation id, pre-seeding `dst`'s dedupe
    ///    window for the post-cutover retry case). This is the commit
    ///    point: from here the migration only rolls forward.
    /// 3. **catch_up** — the owner's log for `p` ships to `dst`; the
    ///    receiver's merge dedups by `(uid, ts)`. Covers writes that
    ///    raced the chunk stream.
    /// 4. **cut_over** — epoch `E+2` makes `dst` the owner; the old owner
    ///    stays in the replica set, so it keeps answering reads routed
    ///    under the old epoch and sources the tail replay.
    /// 5. **tail_replay** — one more log pass for records applied between
    ///    catch-up and cutover, then a deterministic partition rebuild at
    ///    `dst` (timestamp-ordered), so twin clusters converge
    ///    bit-identically.
    pub fn migrate_partition(&self, p: u32, dst: NodeId) -> std::io::Result<MigrationStatus> {
        if self.migration_active.swap(true, Ordering::AcqRel) {
            return Err(std::io::Error::other("another migration is already in flight"));
        }
        let out = self.migrate_partition_locked(p, dst);
        self.migration_active.store(false, Ordering::Release);
        out
    }

    fn migrate_partition_locked(&self, p: u32, dst: NodeId) -> std::io::Result<MigrationStatus> {
        let map0 = self.map();
        let src = map0.owner_of_partition(p);
        let mut status = MigrationStatus {
            partition: p,
            from: src,
            to: dst,
            phase: "chunk_stream",
            epoch_start: map0.epoch(),
            epoch_end: 0,
            users_streamed: 0,
            records_replayed: 0,
            chunks_streamed: 0,
            outcome: MigrationOutcome::InFlight,
        };
        let (troot, tchild) = self.trace_entry(SpanKind::Migrate, None);
        let result = self.run_migration(p, src, dst, &map0, &mut status);
        let span_status = if result.is_ok() { SpanStatus::Ok } else { SpanStatus::Error };
        self.close_trace_entry(troot, tchild, span_status, 0);
        let result = match result {
            Ok(()) => {
                status.outcome = MigrationOutcome::Committed;
                Ok(())
            }
            Err(MigrationFailure::Aborted(reason)) => {
                status.phase = "aborted";
                status.outcome = MigrationOutcome::Aborted(reason.clone());
                self.migration_aborts.inc();
                let mark = self.tracer.child(None, SpanKind::MigrateAbort, FRONT_NODE);
                self.tracer.finish_status(mark, SpanStatus::Error);
                Err(std::io::Error::other(format!("migration aborted: {reason}")))
            }
            Err(MigrationFailure::Error(e)) => {
                status.phase = "failed";
                status.outcome = MigrationOutcome::Failed(e.to_string());
                Err(e)
            }
        };
        self.migration_log.lock().unwrap().push(status.clone());
        result.map(|()| status)
    }

    /// First satisfied abort trigger for the in-flight migration, if any.
    fn migration_abort_reason(
        &self,
        src: NodeId,
        dst: NodeId,
        deadline: Instant,
    ) -> Option<String> {
        if self.migration_cancel.swap(false, Ordering::AcqRel) {
            return Some("operator cancel".into());
        }
        if Instant::now() > deadline {
            return Some("deadline exceeded".into());
        }
        if self.node_health(src) != NodeHealth::Up {
            return Some(format!("source death (node {src})"));
        }
        if self.node_health(dst) != NodeHealth::Up {
            return Some(format!("destination death (node {dst})"));
        }
        None
    }

    /// The abort rollback: everything the chunk stream placed at `dst`
    /// is scrubbed (no map was installed, so `dst`'s own map proves it
    /// holds nothing of `p`), leaving the cluster bit-identical to never
    /// having tried.
    fn rollback_chunks(&self, p: u32, dst: NodeId) {
        if let Some(state) = self.node_state(dst) {
            state.scrub_partition(p);
        }
    }

    fn run_migration(
        &self,
        p: u32,
        src: NodeId,
        dst: NodeId,
        map0: &Arc<PartitionMap>,
        status: &mut MigrationStatus,
    ) -> Result<(), MigrationFailure> {
        let fail = |msg: String| MigrationFailure::Error(std::io::Error::other(msg));
        if src == dst {
            return Err(fail(format!("partition {p} already owned by {dst}")));
        }
        if !map0.is_member(dst) {
            return Err(fail(format!("node {dst} is not a member")));
        }
        let deadline = Instant::now() + self.config.migration_deadline;
        let max_bytes = self.config.checkpoint_chunk_bytes.max(64);

        // Phase 1: chunked, resumable checkpoint — before any install.
        let mut cursor = 0u64;
        loop {
            if let Some(reason) = self.migration_abort_reason(src, dst, deadline) {
                self.rollback_chunks(p, dst);
                return Err(MigrationFailure::Aborted(reason));
            }
            let (src_client, dst_client) = match (self.peers.get(src), self.peers.get(dst)) {
                (Some(s), Some(d)) => (s, d),
                _ => {
                    // Endpoint gone but health not yet Down: re-check the
                    // abort triggers after a beat rather than spinning.
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
            };
            let pull = Request::PullPartitionChunk { partition: p, cursor, max_bytes };
            let chunk = match src_client.call(&pull) {
                Ok(Response::PartitionChunk { entries, next_cursor, done, crc }) => {
                    (entries, next_cursor, done, crc)
                }
                Ok(other) => return Err(fail(format!("chunk pull failed: {other:?}"))),
                Err(_) => {
                    // Link fault (drop/partition/reset/timeout): the pull
                    // is idempotent, so resume at the same cursor once the
                    // abort triggers have had their say.
                    self.migration_resumes.inc();
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
            };
            let (entries, next_cursor, done, crc) = chunk;
            if let Some(why) = crate::rpc::verify_chunk(cursor, &entries, next_cursor, done, crc) {
                // Reject-before-apply: nothing from a bad chunk lands at
                // the destination; re-pull the same cursor.
                self.migration_resumes.inc();
                let _ = why;
                continue;
            }
            let frame_bytes =
                Response::PartitionChunk { entries: entries.clone(), next_cursor, done, crc }
                    .encode()
                    .len();
            self.checkpoint_frame_max.max(frame_bytes as i64);
            if !entries.is_empty() {
                let n = entries.len() as u64;
                match dst_client.call(&Request::PushPartition { entries }) {
                    Ok(Response::Ok) => {}
                    Ok(other) => return Err(fail(format!("chunk push failed: {other:?}"))),
                    Err(_) => {
                        // Push is insert-never-overwrite: replaying the
                        // same chunk after a link fault is idempotent.
                        self.migration_resumes.inc();
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                }
                status.users_streamed += n;
            }
            status.chunks_streamed += 1;
            self.migration_chunks.inc();
            let span = self.tracer.child(None, SpanKind::MigrateChunk, FRONT_NODE);
            self.tracer.finish(span);
            cursor = next_cursor;
            if done {
                break;
            }
        }
        // Last pre-commit look at the abort triggers; past this point the
        // migration only rolls forward.
        if let Some(reason) = self.migration_abort_reason(src, dst, deadline) {
            self.rollback_chunks(p, dst);
            return Err(MigrationFailure::Aborted(reason));
        }

        // Phase 2: dual-write window (epoch +1) — the commit point.
        status.phase = "dual_write";
        let map1 = Arc::new(map0.with_extra_replica(p, dst).map_err(|e| fail(e.to_string()))?);
        self.install_map_cluster(&map1);

        let src_client =
            self.peers.get(src).ok_or_else(|| fail(format!("migration source {src} is down")))?;
        let dst_client =
            self.peers.get(dst).ok_or_else(|| fail(format!("migration target {dst} is down")))?;

        status.phase = "catch_up";
        status.records_replayed += self
            .copy_partition_log(p, &src_client, &dst_client)
            .map_err(MigrationFailure::Error)?;

        status.phase = "cut_over";
        let map2 = Arc::new(map1.with_owner(p, dst).map_err(|e| fail(e.to_string()))?);
        self.install_map_cluster(&map2);

        status.phase = "tail_replay";
        status.records_replayed += self
            .copy_partition_log(p, &src_client, &dst_client)
            .map_err(MigrationFailure::Error)?;
        if let Some(state) = self.node_state(dst) {
            state.rebuild_partition(p);
        }

        status.phase = "done";
        status.epoch_end = map2.epoch();
        Ok(())
    }

    /// Ships every record of partition `p` in `src`'s log to `dst` (the
    /// receiver's merge dedups, so re-shipping history is idempotent).
    /// Returns how many records were shipped.
    fn copy_partition_log(&self, p: u32, src: &NetClient, dst: &NetClient) -> std::io::Result<u64> {
        let map = self.map();
        let records = match src.call(&Request::PullLog { from_ts: 0 }) {
            Ok(Response::Log { records }) => records,
            other => return Err(std::io::Error::other(format!("log pull failed: {other:?}"))),
        };
        let mine: Vec<Observation> =
            records.into_iter().filter(|r| map.partition_of(r.uid) == p).collect();
        if mine.is_empty() {
            return Ok(0);
        }
        let n = mine.len() as u64;
        // Log history carries no observation ids (only the live queue
        // does), so the dedupe window is not fed here — `(uid, ts)` merge
        // dedupe still makes the copy idempotent.
        let obs_ids = vec![0u64; mine.len()];
        match dst.call(&Request::ShipLog { records: mine, obs_ids }) {
            Ok(Response::Ok) => Ok(n),
            other => Err(std::io::Error::other(format!("log ship failed: {other:?}"))),
        }
    }

    /// Planned handoff for a freshly joined `dst`: migrates the
    /// partitions [`PartitionMap::plan_join`] picks (deterministic, so
    /// twin clusters rebalance identically). Returns the moved set.
    pub fn rebalance_join(&self, dst: NodeId) -> std::io::Result<Vec<u32>> {
        let plan = self.map().plan_join(dst).map_err(|e| std::io::Error::other(e.to_string()))?;
        for &p in &plan {
            self.migrate_partition(p, dst)?;
        }
        Ok(plan)
    }

    /// Fails `dead` out of the membership: its partitions are re-owned by
    /// their first surviving replica, depleted replica sets are
    /// backfilled toward the replication target, and every backfilled
    /// node receives the partition's checkpoint and log history from a
    /// survivor. Zero-loss for acked observes as long as each partition
    /// keeps one live replica. Returns how many records were backfilled.
    pub fn fail_over_dead(&self, dead: NodeId) -> std::io::Result<u64> {
        let map0 = self.map();
        let map1 =
            Arc::new(map0.without_member(dead).map_err(|e| std::io::Error::other(e.to_string()))?);
        // Cut the map over first: new observes route and ship under the
        // survivor topology while history backfills underneath (the merge
        // dedups the overlap).
        self.install_map_cluster(&map1);
        let mut backfilled = 0u64;
        for p in 0..map1.n_partitions() {
            let old = map0.replicas_of_partition(p);
            if !old.contains(&dead) {
                continue;
            }
            let Some(survivor) =
                map1.replicas_of_partition(p).iter().copied().find(|n| old.contains(n))
            else {
                continue;
            };
            let Some(src) = self.peers.get(survivor) else { continue };
            for &added in map1.replicas_of_partition(p) {
                if old.contains(&added) {
                    continue;
                }
                let Some(dst) = self.peers.get(added) else { continue };
                if let Ok(Response::Partition { entries }) =
                    src.call(&Request::PullPartition { partition: p })
                {
                    let _ = dst.call(&Request::PushPartition { entries });
                }
                backfilled += self.copy_partition_log(p, &src, &dst)?;
                if let Some(state) = self.node_state(added) {
                    state.rebuild_partition(p);
                }
            }
        }
        Ok(backfilled)
    }

    /// Rejects membership operations aimed at ids outside the slot range
    /// or at nodes the current map does not know — the REST layer maps
    /// the resulting [`TransportError::Rejected`] to a 4xx.
    fn check_member(&self, node: NodeId) -> Result<(), TransportError> {
        if node >= self.capacity {
            return Err(membership_rejection(MembershipError::UnknownNode {
                node,
                capacity: self.capacity,
            }));
        }
        if !self.map().is_member(node) {
            return Err(membership_rejection(MembershipError::NotAMember(node)));
        }
        Ok(())
    }

    /// Requests that the in-flight (or next) migration abort with
    /// `operator cancel` at its next chunk boundary. Returns whether a
    /// migration was running when the cancel landed.
    pub fn request_migration_cancel(&self) -> bool {
        self.migration_cancel.store(true, Ordering::Release);
        self.migration_active.load(Ordering::Acquire)
    }

    /// Flips the auto-rebalance kill switch (also resets the retry-cap
    /// ledger, so re-enabling gives the automatic path a fresh budget).
    pub fn set_auto_rebalance_enabled(&self, on: bool) {
        self.auto_rebalance_enabled.store(on, Ordering::Release);
        if on {
            let mut bo = self.auto_backoff.lock().unwrap();
            bo.failures = 0;
            bo.hold_until = None;
        }
    }

    /// Current state of the auto-rebalance kill switch.
    pub fn auto_rebalance_on(&self) -> bool {
        self.auto_rebalance_enabled.load(Ordering::Acquire)
    }

    /// `(chunks streamed, aborts, resumes)` across every migration so far.
    pub fn migration_chunk_stats(&self) -> (u64, u64, u64) {
        (self.migration_chunks.get(), self.migration_aborts.get(), self.migration_resumes.get())
    }

    /// Largest checkpoint-chunk response payload (bytes) pulled so far.
    pub fn checkpoint_frame_max_bytes(&self) -> i64 {
        self.checkpoint_frame_max.get()
    }

    /// Detector-triggered fail-over (the `auto_rebalance` knob), hardened
    /// for deployment:
    ///
    /// - **kill switch** — a REST-togglable enable bit gates the whole
    ///   path;
    /// - **hysteresis** — a member must be `Dead` *and* process-down for
    ///   [`NetClusterConfig::rebalance_hysteresis`] consecutive
    ///   evaluations before the map is touched, so one detector flap
    ///   cannot evict a live node;
    /// - **at-most-one** — fail-over is skipped while a migration is in
    ///   flight;
    /// - **backoff + retry cap** — each failed automatic fail-over backs
    ///   off exponentially, and after
    ///   [`NetClusterConfig::rebalance_retry_cap`] consecutive failures
    ///   the automatic path disables itself until an operator re-enables
    ///   it.
    fn maybe_auto_fail_over(&self) {
        if !self.auto_rebalance_enabled.load(Ordering::Acquire) {
            return;
        }
        let Ok(_gate) = self.auto_failover_gate.try_lock() else { return };
        if self.migration_active.load(Ordering::Acquire) {
            return;
        }
        {
            let bo = self.auto_backoff.lock().unwrap();
            if bo.failures >= self.config.rebalance_retry_cap {
                return;
            }
            if let Some(until) = bo.hold_until {
                if Instant::now() < until {
                    return;
                }
            }
        }
        let members = self.map().members().to_vec();
        if members.len() <= 1 {
            return;
        }
        let needed = self.config.rebalance_hysteresis.max(1) as u64;
        for m in members {
            let verdict = self.detector.state(m as u32) == PeerState::Dead
                && self.node_health(m) == NodeHealth::Down;
            if !verdict {
                self.dead_streak[m].store(0, Ordering::Release);
                continue;
            }
            let streak = self.dead_streak[m].fetch_add(1, Ordering::AcqRel) + 1;
            if streak < needed {
                continue;
            }
            self.dead_streak[m].store(0, Ordering::Release);
            match self.fail_over_dead(m) {
                Ok(_) => {
                    let mut bo = self.auto_backoff.lock().unwrap();
                    bo.failures = 0;
                    bo.hold_until = None;
                }
                Err(_) => {
                    let mut bo = self.auto_backoff.lock().unwrap();
                    bo.failures += 1;
                    let pause = Duration::from_millis(
                        100u64.saturating_mul(1 << bo.failures.min(6)).min(5_000),
                    );
                    bo.hold_until = Some(Instant::now() + pause);
                }
            }
        }
    }

    /// Installs a deterministic fault plan driven by the request clock.
    pub fn install_fault_plan(&self, mut plan: FaultPlan) {
        plan.events.sort_by_key(|e| e.at_request);
        let rng = VeloxRng::seed_from(plan.seed);
        *self.faults.lock().unwrap() = Some(FaultState { plan, rng, next_event: 0 });
        self.fault_active.store(true, Ordering::Release);
    }

    /// Removes the fault plan (scheduled events stop firing).
    pub fn clear_fault_plan(&self) {
        *self.faults.lock().unwrap() = None;
        self.fault_active.store(false, Ordering::Release);
    }

    /// Advances the request clock by one and fires any due fault events.
    /// Returns the latency-spike sleep (µs) this request incurs, plus
    /// whether a transient read failure hits it.
    fn tick_faults(&self) -> (u64, bool) {
        let tick = self.request_clock.fetch_add(1, Ordering::Relaxed) + 1;
        // The kill switch (seeded from `config.auto_rebalance`, REST
        // togglable) gates the whole automatic path inside.
        self.maybe_auto_fail_over();
        if !self.fault_active.load(Ordering::Acquire) {
            return (0, false);
        }
        let mut due: Vec<(NodeId, FaultAction)> = Vec::new();
        let mut spike = 0u64;
        let mut fail = false;
        {
            let mut guard = self.faults.lock().unwrap();
            let Some(state) = guard.as_mut() else { return (0, false) };
            while state.next_event < state.plan.events.len()
                && state.plan.events[state.next_event].at_request <= tick
            {
                let ev = state.plan.events[state.next_event];
                due.push((ev.node, ev.action));
                state.next_event += 1;
            }
            if state.plan.read_failure_prob > 0.0
                && state.rng.uniform() < state.plan.read_failure_prob
            {
                fail = true;
            }
            if state.plan.latency_spike_prob > 0.0
                && state.rng.uniform() < state.plan.latency_spike_prob
            {
                spike = state.plan.latency_spike_us as u64;
            }
        }
        // Apply events outside the fault lock (kill/recover take slot locks).
        for (node, action) in due {
            match action {
                FaultAction::Kill => self.kill_node(node),
                FaultAction::Recover => {
                    let _ = self.recover_node(node);
                }
            }
        }
        (spike, fail)
    }

    /// Live replicas of a user in failover order. Within the health-Up
    /// set, the failure detector decides precedence: peers it believes
    /// alive come first (home leading), suspected peers next, and peers
    /// it has declared dead last — still present because the detector can
    /// be wrong (a cut probe path, not a dead node), but no longer the
    /// first hop, so failover happens on suspicion instead of burning a
    /// request deadline per call. When `skip_primary` (injected transient
    /// failure), the home is dropped.
    fn serving_candidates(&self, map: &PartitionMap, uid: u64, skip_primary: bool) -> Vec<NodeId> {
        let up: Vec<NodeId> = map
            .replicas_of(uid)
            .iter()
            .copied()
            .skip(skip_primary as usize)
            .filter(|&n| self.node_health(n) == NodeHealth::Up)
            .collect();
        let mut ordered = Vec::with_capacity(up.len());
        for want in [PeerState::Alive, PeerState::Suspect, PeerState::Dead] {
            ordered.extend(up.iter().copied().filter(|&n| self.detector.state(n as u32) == want));
        }
        ordered
    }

    /// The failure detector driving routing (snapshot it for tests).
    pub fn detector(&self) -> &Arc<FailureDetector> {
        &self.detector
    }

    /// `node`'s runtime counters (these survive the node's restarts).
    pub fn node_metrics(&self, node: NodeId) -> NodeMetrics {
        self.slots[node].lock().unwrap().metrics.clone()
    }

    /// `node`'s live state, if it is currently running (chaos suites
    /// inspect the ship backlog and WAL length through this).
    pub fn node_state(&self, node: NodeId) -> Option<Arc<NodeState>> {
        self.slots[node].lock().unwrap().server.as_ref().map(|s| Arc::clone(s.state()))
    }

    /// How long a predict's primary may run before a hedge fires: derived
    /// from the live p99, floored so hedges never trigger on healthy
    /// sub-millisecond traffic and capped well under the request deadline.
    fn hedge_delay(&self) -> Duration {
        let p99 = self.predict_us.snapshot().p99();
        Duration::from_micros(p99.clamp(1_000, 100_000))
    }

    /// Predicts that raced a replica / hedges whose reply won.
    pub fn hedge_counts(&self) -> (u64, u64) {
        (self.hedged.get(), self.hedge_wins.get())
    }

    /// Success-path bookkeeping for one answered predict: route counters,
    /// the latency histogram, and the result struct. Entry spans are the
    /// caller's to close.
    #[allow(clippy::too_many_arguments)]
    fn finish_predict(
        &self,
        node: NodeId,
        home: NodeId,
        score: f64,
        at: u32,
        cold_start: bool,
        timer: Instant,
        trace_id: Option<u64>,
    ) -> TransportPredict {
        let slot = self.slots[node].lock().unwrap();
        slot.requests_routed.inc();
        if node != home {
            slot.failover_requests.inc();
        }
        drop(slot);
        let us = timer.elapsed().as_micros() as u64;
        match trace_id {
            Some(t) => self.predict_us.record_exemplar(us, t),
            None => self.predict_us.record(us),
        }
        TransportPredict { score, node: at as NodeId, routed: node != home, cold_start, trace_id }
    }

    /// Registers runtime and per-node metrics (node-labelled series).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_histogram("velox_net_predict_us", &[], Arc::clone(&self.predict_us));
        registry.register_histogram("velox_net_observe_us", &[], Arc::clone(&self.observe_us));
        registry.register_counter(
            "velox_net_unavailable_total",
            &[],
            Arc::clone(&self.unavailable),
        );
        registry.register_counter("velox_net_hedged_total", &[], Arc::clone(&self.hedged));
        registry.register_counter("velox_net_hedge_wins_total", &[], Arc::clone(&self.hedge_wins));
        registry.register_counter(
            "velox_net_map_refreshes_total",
            &[],
            Arc::clone(&self.map_refreshes),
        );
        registry.register_gauge("velox_net_map_epoch", &[], Arc::clone(&self.map_epoch_gauge));
        registry.register_counter(
            "velox_net_migration_chunks_total",
            &[],
            Arc::clone(&self.migration_chunks),
        );
        registry.register_counter(
            "velox_net_migration_aborts_total",
            &[],
            Arc::clone(&self.migration_aborts),
        );
        registry.register_counter(
            "velox_net_migration_resumes_total",
            &[],
            Arc::clone(&self.migration_resumes),
        );
        registry.register_gauge(
            "velox_net_checkpoint_frame_max",
            &[],
            Arc::clone(&self.checkpoint_frame_max),
        );
        self.detector.register_metrics(registry);
        self.chaos.register_metrics(registry);
        for (id, slot) in self.slots.iter().enumerate() {
            let slot = slot.lock().unwrap();
            let label = id.to_string();
            let labels = [("node", label.as_str())];
            slot.metrics.register(registry, id);
            registry.register_counter(
                "velox_net_requests_routed_total",
                &labels,
                Arc::clone(&slot.requests_routed),
            );
            registry.register_counter(
                "velox_net_failover_requests_total",
                &labels,
                Arc::clone(&slot.failover_requests),
            );
            registry.register_counter(
                "velox_net_recoveries_total",
                &labels,
                Arc::clone(&slot.recoveries),
            );
            registry.register_counter(
                "velox_net_catch_up_records_total",
                &labels,
                Arc::clone(&slot.catch_up_records),
            );
            self.peers.client_metrics(id).register(registry, &labels);
        }
    }

    /// Entry span for one request: a child when the caller propagated a
    /// context (REST ingress), a fresh root otherwise.
    fn trace_entry(
        &self,
        kind: SpanKind,
        ctx: Option<&TraceContext>,
    ) -> (Option<RootSpan>, Option<velox_obs::ActiveSpan>) {
        if ctx.is_some() {
            (None, self.tracer.child(ctx, kind, FRONT_NODE))
        } else {
            (self.tracer.ingress(kind, FRONT_NODE), None)
        }
    }

    /// Closes the entry span (applying the keep policy for roots) at a
    /// shared clock reading; `end_ns == 0` reads the clock.
    fn close_trace_entry(
        &self,
        root: Option<RootSpan>,
        child: Option<velox_obs::ActiveSpan>,
        status: SpanStatus,
        end_ns: u64,
    ) {
        self.tracer.finish_status_at(child, status, end_ns);
        if let Some(r) = root {
            self.tracer.end_root_at(r, end_ns);
        }
    }

    /// Stops every node and the heartbeat prober (also happens on drop).
    pub fn shutdown(&self) {
        self.hb_stop.store(true, Ordering::Release);
        if let Some(handle) = self.hb_thread.lock().unwrap().take() {
            let _ = handle.join();
        }
        for node in 0..self.capacity {
            let mut slot = self.slots[node].lock().unwrap();
            if let Some(mut server) = slot.server.take() {
                server.shutdown();
            }
            self.peers.set(node, None);
        }
    }
}

impl ChaosControl for NetCluster {
    fn link_chaos(&self) -> &Arc<LinkChaos> {
        &self.chaos
    }
}

/// Starts the failure-detector's prober: every `interval` it probes each
/// peer with a raw Health round trip on a throwaway connection — never
/// through the chaos-linked clients, so probes cost no fault-stream
/// ticks. A chaos partition of the front→peer link still counts as a
/// miss ([`LinkChaos::is_partitioned`] is side-effect free), which is
/// exactly how a real prober would experience it.
fn spawn_heartbeat(
    peers: Arc<PeerTable>,
    detector: Arc<FailureDetector>,
    chaos: Arc<LinkChaos>,
    stop: Arc<AtomicBool>,
    interval: Duration,
    timeout: Duration,
    n_nodes: usize,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::Acquire) {
            for node in 0..n_nodes {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                let Some(addr) = peers.addr(node) else {
                    detector.record_failure(node as u32);
                    continue;
                };
                if chaos.is_partitioned(FRONT_PEER, node as u32) {
                    detector.record_failure(node as u32);
                    continue;
                }
                let started = Instant::now();
                if probe_health(addr, timeout) {
                    detector.record_success(node as u32, started.elapsed().as_micros() as u64);
                } else {
                    detector.record_failure(node as u32);
                }
            }
            detector.export();
            // Sleep in short slices so shutdown never waits a full period.
            let wake = Instant::now() + interval;
            while Instant::now() < wake {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5).min(interval));
            }
        }
    })
}

/// One probe: dial, Health, read the ack — all within `timeout`.
fn probe_health(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(mut conn) = std::net::TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    let _ = conn.set_nodelay(true);
    if conn.set_read_timeout(Some(timeout)).is_err()
        || conn.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    if write_frame(&mut conn, &Request::Health.encode()).is_err() {
        return false;
    }
    matches!(read_frame(&mut conn).map(|b| Response::decode(&b)), Ok(Ok(Response::Ok)))
}

impl Drop for NetCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Maps a node-level error response onto the transport error space.
fn map_error(code: ErrorCode, message: String) -> TransportError {
    match code {
        ErrorCode::Unavailable => TransportError::Unavailable,
        _ => TransportError::Failed(message),
    }
}

impl Transport for NetCluster {
    fn n_nodes(&self) -> usize {
        self.capacity
    }

    fn node_health(&self, node: NodeId) -> NodeHealth {
        NodeHealth::decode(self.health[node].load(Ordering::Acquire))
    }

    fn predict(&self, uid: u64, item_id: u64) -> Result<TransportPredict, TransportError> {
        self.predict_traced(uid, item_id, None)
    }

    /// One `PredictBatch` RPC per owning node instead of one round trip
    /// per pair. Pairs are grouped under a single map snapshot; a group
    /// whose frame fails (node down, stale epoch, unseeded item) falls
    /// back pair-by-pair to [`Transport::predict`], which carries the
    /// full retry/hedge/failover machinery — so the batch path can only
    /// ever be a fast path, never a new failure mode.
    fn predict_many(&self, pairs: &[(u64, u64)]) -> Vec<Result<TransportPredict, TransportError>> {
        let mut out: Vec<Option<Result<TransportPredict, TransportError>>> =
            (0..pairs.len()).map(|_| None).collect();
        let map = self.map();
        let epoch = map.epoch();
        let mut groups: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, &(uid, _)) in pairs.iter().enumerate() {
            groups.entry(map.owner_of(uid)).or_default().push(i);
        }
        for (node, idxs) in groups {
            let Some(client) = self.peers.get(node) else { continue };
            let group: Vec<(u64, u64)> = idxs.iter().map(|&i| pairs[i]).collect();
            let timer = Instant::now();
            match client.call(&Request::PredictBatch { pairs: group, epoch }) {
                Ok(Response::PredictedBatch { node: at, scores }) if scores.len() == idxs.len() => {
                    let served = scores.iter().filter(|s| s.ok).count() as u64;
                    for (&i, s) in idxs.iter().zip(&scores) {
                        if s.ok {
                            out[i] = Some(Ok(TransportPredict {
                                score: s.score,
                                node: at as NodeId,
                                routed: at as NodeId != node,
                                cold_start: s.cold_start,
                                trace_id: None,
                            }));
                        }
                    }
                    if served > 0 {
                        self.slots[node].lock().unwrap().requests_routed.add(served);
                        self.predict_us.record(timer.elapsed().as_micros() as u64);
                    }
                }
                // Any other reply (error frame, stale epoch, transport
                // failure) leaves the group unanswered for the fallback.
                _ => {}
            }
        }
        out.iter_mut()
            .enumerate()
            .map(|(i, slot)| slot.take().unwrap_or_else(|| self.predict(pairs[i].0, pairs[i].1)))
            .collect()
    }

    fn observe(&self, uid: u64, item_id: u64, y: f64) -> Result<TransportObserve, TransportError> {
        self.observe_traced(uid, item_id, y, None)
    }

    fn predict_traced(
        &self,
        uid: u64,
        item_id: u64,
        ctx: Option<&TraceContext>,
    ) -> Result<TransportPredict, TransportError> {
        let (spike_us, fail) = self.tick_faults();
        if spike_us > 0 {
            std::thread::sleep(Duration::from_micros(spike_us));
        }
        let tracer = &self.tracer;
        let (troot, tchild) = self.trace_entry(SpanKind::ClusterPredict, ctx);
        let entry_ctx =
            troot.as_ref().map(|r| r.ctx()).or_else(|| tchild.as_ref().map(|c| c.ctx()));
        let trace_id = entry_ctx.map(|c| c.trace_id);

        // The route span starts at the entry boundary and ends at one
        // shared clock reading that also starts the RPC span — adjacent
        // spans share boundaries so tracing costs one clock read per hop,
        // not two.
        let entry_start = troot
            .as_ref()
            .map(|r| r.start_ns())
            .or_else(|| tchild.as_ref().map(|c| c.start_ns()))
            .unwrap_or(0);
        let route_span =
            tracer.child_at(entry_ctx.as_ref(), SpanKind::Route, FRONT_NODE, entry_start);
        // One map snapshot serves routing, candidate order, and the epoch
        // stamp — a single lock acquisition on the hot path, not three.
        let map = self.map();
        let home = map.owner_of(uid);
        let candidates = self.serving_candidates(&map, uid, fail);
        let routed_ns = if route_span.is_some() { velox_obs::trace::now_ns() } else { 0 };
        tracer.finish_status_at(route_span, SpanStatus::Ok, routed_ns);

        let timer = Instant::now();
        let mut req = Request::Predict { uid, item_id, no_forward: true, epoch: map.epoch() };
        let mut last = TransportError::Unavailable;
        let mut start_at = 0usize;

        // Hedged fast path: run the first candidate on a helper thread
        // and give it a p99-derived delay to answer; past that, race a
        // replica and take whichever replies first. Reads are idempotent,
        // so the duplicated work is just work.
        if self.config.hedge_predicts && candidates.len() >= 2 {
            if let Some(client) = self.peers.get(candidates[0]) {
                let primary = candidates[0];
                let rpc_span =
                    tracer.child_at(entry_ctx.as_ref(), SpanKind::RpcCall, FRONT_NODE, routed_ns);
                let rpc_ctx = rpc_span.as_ref().map(|s| s.ctx());
                let (tx, rx) = mpsc::channel();
                {
                    let client = Arc::clone(&client);
                    let req = req.clone();
                    std::thread::spawn(move || {
                        let _ = tx.send(client.call_traced(&req, rpc_ctx.as_ref()));
                    });
                }
                match rx.recv_timeout(self.hedge_delay()) {
                    Ok(Ok(Response::Predicted { score, node: at, cold_start, .. })) => {
                        let done_ns =
                            if rpc_span.is_some() { velox_obs::trace::now_ns() } else { 0 };
                        tracer.finish_status_at(rpc_span, SpanStatus::Ok, done_ns);
                        let out = self
                            .finish_predict(primary, home, score, at, cold_start, timer, trace_id);
                        self.close_trace_entry(troot, tchild, SpanStatus::Ok, done_ns);
                        return Ok(out);
                    }
                    Ok(Ok(Response::Error { code: ErrorCode::WrongEpoch, message })) => {
                        // Stale front map: refresh it and fall through to
                        // the sequential loop under the new epoch.
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        self.refresh_map_from(&client);
                        req = Request::Predict {
                            uid,
                            item_id,
                            no_forward: true,
                            epoch: self.map_epoch(),
                        };
                        last = TransportError::Failed(message);
                    }
                    Ok(Ok(Response::Error { code, message })) => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
                        return Err(map_error(code, message));
                    }
                    Ok(Ok(other)) => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
                        return Err(TransportError::Failed(format!("unexpected reply {other:?}")));
                    }
                    Ok(Err(e)) => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        last = TransportError::Failed(e.to_string());
                        start_at = 1;
                    }
                    Err(_) => {
                        // Primary is slow, not (yet) failed: hedge.
                        self.hedged.inc();
                        let hedge_node = candidates[1];
                        let mut hedged_out = None;
                        if let Some(hclient) = self.peers.get(hedge_node) {
                            let now_ns =
                                if entry_ctx.is_some() { velox_obs::trace::now_ns() } else { 0 };
                            let mark = tracer.child_at(
                                entry_ctx.as_ref(),
                                SpanKind::Hedge,
                                FRONT_NODE,
                                now_ns,
                            );
                            tracer.finish_status_at(mark, SpanStatus::Ok, now_ns);
                            let hspan = tracer.child_at(
                                entry_ctx.as_ref(),
                                SpanKind::RpcCall,
                                FRONT_NODE,
                                now_ns,
                            );
                            let hctx = hspan.as_ref().map(|s| s.ctx());
                            match hclient.call_traced(&req, hctx.as_ref()) {
                                Ok(Response::Predicted { score, node: at, cold_start, .. }) => {
                                    let done_ns = if hspan.is_some() {
                                        velox_obs::trace::now_ns()
                                    } else {
                                        0
                                    };
                                    tracer.finish_status_at(hspan, SpanStatus::Ok, done_ns);
                                    hedged_out = Some((score, at, cold_start, done_ns));
                                }
                                _ => tracer.finish_status(hspan, SpanStatus::Error),
                            }
                        }
                        if let Some((score, at, cold_start, done_ns)) = hedged_out {
                            // The hedge won the race; the primary's reply
                            // (if it ever lands) is discarded with its span.
                            self.hedge_wins.inc();
                            tracer.finish_status(rpc_span, SpanStatus::Error);
                            let out = self.finish_predict(
                                hedge_node, home, score, at, cold_start, timer, trace_id,
                            );
                            self.close_trace_entry(troot, tchild, SpanStatus::Ok, done_ns);
                            return Ok(out);
                        }
                        // Hedge lost too — fall back to whatever the
                        // primary produces within the remaining deadline.
                        let remaining = self.config.request_timeout.saturating_sub(timer.elapsed());
                        match rx.recv_timeout(remaining) {
                            Ok(Ok(Response::Predicted { score, node: at, cold_start, .. })) => {
                                let done_ns =
                                    if rpc_span.is_some() { velox_obs::trace::now_ns() } else { 0 };
                                tracer.finish_status_at(rpc_span, SpanStatus::Ok, done_ns);
                                let out = self.finish_predict(
                                    primary, home, score, at, cold_start, timer, trace_id,
                                );
                                self.close_trace_entry(troot, tchild, SpanStatus::Ok, done_ns);
                                return Ok(out);
                            }
                            Ok(Ok(Response::Error { code: ErrorCode::WrongEpoch, message })) => {
                                tracer.finish_status(rpc_span, SpanStatus::Error);
                                self.refresh_map_from(&client);
                                req = Request::Predict {
                                    uid,
                                    item_id,
                                    no_forward: true,
                                    epoch: self.map_epoch(),
                                };
                                last = TransportError::Failed(message);
                                start_at = 0;
                            }
                            Ok(Ok(Response::Error { code, message })) => {
                                tracer.finish_status(rpc_span, SpanStatus::Error);
                                self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
                                return Err(map_error(code, message));
                            }
                            Ok(Ok(other)) => {
                                tracer.finish_status(rpc_span, SpanStatus::Error);
                                self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
                                return Err(TransportError::Failed(format!(
                                    "unexpected reply {other:?}"
                                )));
                            }
                            Ok(Err(e)) => {
                                tracer.finish_status(rpc_span, SpanStatus::Error);
                                last = TransportError::Failed(e.to_string());
                                start_at = 2;
                            }
                            Err(_) => {
                                tracer.finish_status(rpc_span, SpanStatus::Error);
                                last = TransportError::Failed("predict deadline exceeded".into());
                                start_at = 2;
                            }
                        }
                    }
                }
            }
        }

        for &node in &candidates[start_at.min(candidates.len())..] {
            let Some(client) = self.peers.get(node) else { continue };
            // A candidate that isn't the home partition is a failover hop;
            // the marker span makes that decision visible in the trace.
            if node != home {
                let fo =
                    tracer.child_at(entry_ctx.as_ref(), SpanKind::Failover, FRONT_NODE, routed_ns);
                tracer.finish_status_at(fo, SpanStatus::Ok, routed_ns);
            }
            // The front routes to the owner (or a live replica) itself, so
            // the node answers from local state — no second hop. One
            // stale-epoch retry per node: a `WrongEpoch` rejection
            // refreshes the front map and replays the same request under
            // the new epoch (the old owner keeps the data across a
            // cutover, so the node can still answer).
            let mut refreshed = false;
            loop {
                let rpc_span =
                    tracer.child_at(entry_ctx.as_ref(), SpanKind::RpcCall, FRONT_NODE, routed_ns);
                let rpc_ctx = rpc_span.as_ref().map(|s| s.ctx());
                match client.call_traced(&req, rpc_ctx.as_ref()) {
                    Ok(Response::Predicted { score, node: at, cold_start, .. }) => {
                        let done_ns =
                            if rpc_span.is_some() { velox_obs::trace::now_ns() } else { 0 };
                        tracer.finish_status_at(rpc_span, SpanStatus::Ok, done_ns);
                        let out =
                            self.finish_predict(node, home, score, at, cold_start, timer, trace_id);
                        self.close_trace_entry(troot, tchild, SpanStatus::Ok, done_ns);
                        return Ok(out);
                    }
                    Ok(Response::Error { code: ErrorCode::WrongEpoch, .. }) if !refreshed => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        refreshed = true;
                        self.refresh_map_from(&client);
                        req = Request::Predict {
                            uid,
                            item_id,
                            no_forward: true,
                            epoch: self.map_epoch(),
                        };
                    }
                    Ok(Response::Error { code, message }) => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
                        return Err(map_error(code, message));
                    }
                    Ok(other) => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
                        return Err(TransportError::Failed(format!("unexpected reply {other:?}")));
                    }
                    Err(e) => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        last = TransportError::Failed(e.to_string());
                        break;
                    }
                }
            }
        }
        if matches!(last, TransportError::Unavailable) {
            self.unavailable.inc();
        }
        self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
        Err(last)
    }

    fn observe_traced(
        &self,
        uid: u64,
        item_id: u64,
        y: f64,
        ctx: Option<&TraceContext>,
    ) -> Result<TransportObserve, TransportError> {
        let (spike_us, _) = self.tick_faults();
        if spike_us > 0 {
            std::thread::sleep(Duration::from_micros(spike_us));
        }
        let tracer = &self.tracer;
        let (troot, tchild) = self.trace_entry(SpanKind::ClusterObserve, ctx);
        let entry_ctx =
            troot.as_ref().map(|r| r.ctx()).or_else(|| tchild.as_ref().map(|c| c.ctx()));
        let trace_id = entry_ctx.map(|c| c.trace_id);

        let entry_start = troot
            .as_ref()
            .map(|r| r.start_ns())
            .or_else(|| tchild.as_ref().map(|c| c.start_ns()))
            .unwrap_or(0);
        let route_span =
            tracer.child_at(entry_ctx.as_ref(), SpanKind::Route, FRONT_NODE, entry_start);
        // One map snapshot for routing, candidates, and the epoch stamp.
        let map = self.map();
        let home = map.owner_of(uid);
        let candidates = self.serving_candidates(&map, uid, false);
        let routed_ns = if route_span.is_some() { velox_obs::trace::now_ns() } else { 0 };
        tracer.finish_status_at(route_span, SpanStatus::Ok, routed_ns);

        let timer = Instant::now();
        let mut epoch = map.epoch();
        // One observation id for the whole logical call: every client
        // retry replays the same id, so the applying node's dedupe window
        // collapses replays into the original ack.
        let obs_id = self.next_obs_id();
        let mut last = TransportError::Unavailable;
        for node in candidates {
            let Some(client) = self.peers.get(node) else { continue };
            if node != home {
                let fo =
                    tracer.child_at(entry_ctx.as_ref(), SpanKind::Failover, FRONT_NODE, routed_ns);
                tracer.finish_status_at(fo, SpanStatus::Ok, routed_ns);
            }
            // no_forward: a live replica acts as owner when the home is
            // down (its clock is ahead of every record it has seen). One
            // stale-epoch retry per node: a `WrongEpoch` rejection happens
            // before the observation is applied, so replaying the same
            // `obs_id` under the refreshed epoch can never double-apply.
            let mut refreshed = false;
            'attempt: loop {
                let req = Request::Observe { uid, item_id, y, no_forward: true, obs_id, epoch };
                let rpc_span =
                    tracer.child_at(entry_ctx.as_ref(), SpanKind::RpcCall, FRONT_NODE, routed_ns);
                let rpc_ctx = rpc_span.as_ref().map(|s| s.ctx());
                match client.call_traced(&req, rpc_ctx.as_ref()) {
                    Ok(Response::Observed { node: at, ts, shipped_to }) => {
                        let done_ns =
                            if rpc_span.is_some() { velox_obs::trace::now_ns() } else { 0 };
                        tracer.finish_status_at(rpc_span, SpanStatus::Ok, done_ns);
                        self.slots[node].lock().unwrap().requests_routed.inc();
                        let us = timer.elapsed().as_micros() as u64;
                        match trace_id {
                            Some(t) => self.observe_us.record_exemplar(us, t),
                            None => self.observe_us.record(us),
                        }
                        self.close_trace_entry(troot, tchild, SpanStatus::Ok, done_ns);
                        return Ok(TransportObserve {
                            node: at as NodeId,
                            ts,
                            shipped_to: shipped_to as usize,
                            trace_id,
                        });
                    }
                    Ok(Response::Error { code: ErrorCode::WrongEpoch, .. }) if !refreshed => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        refreshed = true;
                        self.refresh_map_from(&client);
                        epoch = self.map_epoch();
                    }
                    Ok(Response::Error { code, message }) => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
                        return Err(map_error(code, message));
                    }
                    Ok(other) => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
                        return Err(TransportError::Failed(format!("unexpected reply {other:?}")));
                    }
                    Err(e) => {
                        tracer.finish_status(rpc_span, SpanStatus::Error);
                        if e.definitely_not_delivered() {
                            // The node never saw the request, so a
                            // different replica may safely act as owner.
                            last = TransportError::Failed(e.to_string());
                            break 'attempt;
                        }
                        // Ambiguous failure past the ack point: `node` may
                        // have applied the observation and lost only the
                        // ack. Acting-owner failover would apply it again
                        // under a fresh timestamp (the dedupe window is
                        // per node), so surface the error — at-most-once,
                        // not at-least-once.
                        self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
                        return Err(TransportError::Failed(e.to_string()));
                    }
                }
            }
        }
        if matches!(last, TransportError::Unavailable) {
            self.unavailable.inc();
        }
        self.close_trace_entry(troot, tchild, SpanStatus::Error, 0);
        Err(last)
    }

    fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.tracer)
    }

    fn liveness(&self) -> Vec<PeerLiveness> {
        self.detector.snapshot()
    }

    fn membership(&self) -> Option<MembershipView> {
        let map = self.map();
        let wrong_epoch: u64 =
            self.slots.iter().map(|s| s.lock().unwrap().metrics.wrong_epoch.get()).sum();
        Some(MembershipView {
            epoch: map.epoch(),
            members: map.members().to_vec(),
            n_partitions: map.n_partitions(),
            replication: map.replication(),
            migrations: self.migrations(),
            wrong_epoch,
            map_refreshes: self.map_refreshes.get(),
            auto_rebalance: self.auto_rebalance_on(),
        })
    }

    fn cancel_migration(&self) -> bool {
        self.request_migration_cancel()
    }

    fn set_auto_rebalance(&self, on: bool) {
        self.set_auto_rebalance_enabled(on);
    }

    fn auto_rebalance_enabled(&self) -> bool {
        self.auto_rebalance_on()
    }

    fn rebalance_join_node(&self, node: NodeId) -> Result<Vec<u32>, TransportError> {
        self.check_member(node)?;
        self.rebalance_join(node).map_err(|e| {
            let msg = e.to_string();
            if msg.starts_with("migration aborted") {
                TransportError::Rejected(msg)
            } else {
                TransportError::Failed(msg)
            }
        })
    }

    fn fail_over_node(&self, node: NodeId) -> Result<u64, TransportError> {
        self.check_member(node)?;
        if self.node_health(node) != NodeHealth::Down {
            return Err(membership_rejection(MembershipError::NotDown(node)));
        }
        self.fail_over_dead(node).map_err(|e| TransportError::Failed(e.to_string()))
    }

    fn fetch_weights(&self, uid: u64) -> Result<Option<Vec<f64>>, TransportError> {
        let mut last = TransportError::Unavailable;
        for node in self.serving_candidates(&self.map(), uid, false) {
            let Some(client) = self.peers.get(node) else { continue };
            match client.call(&Request::FetchWeights { uid }) {
                Ok(Response::Weights { w }) => return Ok(w),
                Ok(Response::Error { code, message }) => return Err(map_error(code, message)),
                Ok(other) => {
                    return Err(TransportError::Failed(format!("unexpected reply {other:?}")))
                }
                Err(e) => last = TransportError::Failed(e.to_string()),
            }
        }
        Err(last)
    }
}
