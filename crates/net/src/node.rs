//! A node: one partition of `W`, its WAL, and the RPC handlers.
//!
//! Each [`NodeServer`] is what the paper co-locates with a storage worker
//! (§3): the shard of the user-weight table its partition owns (plus the
//! shards shipped to it as a replica), a full copy of the item-feature
//! table, a local write-ahead log, and the serving logic — score `wᵤ·x`,
//! apply online LMS updates, and replicate acknowledged observations to
//! the partition's replica set before acking (`ShipLog`).
//!
//! ## Durability and ordering
//!
//! An observe is acknowledged only after (1) the record is appended to
//! the owner's WAL and (2) a `ShipLog` round trip to every *reachable*
//! replica completed — so losing the owner's disk still leaves every
//! acknowledged record in a replica's WAL. Records carry a logical
//! timestamp from the owner's clock; the clock is `fetch_max`-ed with
//! every shipped/pulled record so an acting owner (failover writer)
//! always assigns timestamps above everything it has seen, and recovery
//! replays strictly in timestamp order. The `(uid, ts)` pair identifies a
//! record: replay and re-shipping are idempotent.
//!
//! Weight updates happen under the log lock, so replaying the log in
//! timestamp order reproduces the exact floating-point op sequence — the
//! property the backends-agree and recovery tests lean on.

use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use velox_cluster::partition::USER_SALT;
use velox_cluster::transport::{dot, lms_update};
use velox_cluster::{HashPartitioner, NodeId};
use velox_obs::{trace::now_ns, Counter, Registry, SpanKind, TraceContext, Tracer};
use velox_storage::{Observation, Wal, WalConfig, WalRecovery};

use crate::client::NetClient;
use crate::rpc::{ErrorCode, Request, Response};
use crate::server::{Handler, NetServer, NetServerConfig, RpcContext};

/// Shared, mutable address book: node id → client for its current
/// incarnation (`None` while the node is down). Nodes use it to forward
/// and ship; the runtime rewrites entries as nodes die and come back on
/// new ports.
pub struct PeerTable {
    clients: RwLock<Vec<Option<Arc<NetClient>>>>,
}

impl PeerTable {
    /// An address book for `n_nodes`, all initially down.
    pub fn new(n_nodes: usize) -> Self {
        PeerTable { clients: RwLock::new(vec![None; n_nodes]) }
    }

    /// The client for `node`, when it is reachable.
    pub fn get(&self, node: NodeId) -> Option<Arc<NetClient>> {
        self.clients.read().unwrap().get(node).cloned().flatten()
    }

    /// Installs (or clears) the client for `node`.
    pub fn set(&self, node: NodeId, client: Option<Arc<NetClient>>) {
        self.clients.write().unwrap()[node] = client;
    }
}

/// Counters for one node, owned by the runtime so they survive the
/// node's restarts (a reborn node keeps incrementing the same series).
#[derive(Clone)]
pub struct NodeMetrics {
    /// Predict requests answered (locally or via forward).
    pub predicts: Arc<Counter>,
    /// Observations applied at this node as owner or acting owner.
    pub observes: Arc<Counter>,
    /// Requests this node forwarded to the owning node.
    pub forwards: Arc<Counter>,
    /// Log records received (and newly applied) via `ShipLog`.
    pub ship_in_records: Arc<Counter>,
    /// `ShipLog` sends that failed (replica unreachable before deadline).
    pub ship_failures: Arc<Counter>,
}

impl NodeMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        NodeMetrics {
            predicts: Arc::new(Counter::new()),
            observes: Arc::new(Counter::new()),
            forwards: Arc::new(Counter::new()),
            ship_in_records: Arc::new(Counter::new()),
            ship_failures: Arc::new(Counter::new()),
        }
    }

    /// Registers every counter under `velox_net_*` with a `node` label.
    pub fn register(&self, registry: &Registry, node: NodeId) {
        let id = node.to_string();
        let labels = [("node", id.as_str())];
        registry.register_counter("velox_net_predicts_total", &labels, Arc::clone(&self.predicts));
        registry.register_counter("velox_net_observes_total", &labels, Arc::clone(&self.observes));
        registry.register_counter("velox_net_forwards_total", &labels, Arc::clone(&self.forwards));
        registry.register_counter(
            "velox_net_ship_in_records_total",
            &labels,
            Arc::clone(&self.ship_in_records),
        );
        registry.register_counter(
            "velox_net_ship_failures_total",
            &labels,
            Arc::clone(&self.ship_failures),
        );
    }
}

impl Default for NodeMetrics {
    fn default() -> Self {
        NodeMetrics::new()
    }
}

/// Configuration for one node server.
pub struct NodeConfig {
    /// This node's id on the ring.
    pub node_id: NodeId,
    /// Cluster size (fixed).
    pub n_nodes: usize,
    /// Copies of each user's weights (primary + successors on the ring).
    pub user_replication: usize,
    /// LMS learning rate.
    pub lr: f64,
    /// WAL directory for this node; `None` runs without local durability
    /// (acknowledged records then live only in replicas' WALs).
    pub wal_dir: Option<std::path::PathBuf>,
    /// Worker threads for the node's RPC server.
    pub workers: usize,
    /// Runtime-owned counters (survive restarts).
    pub metrics: NodeMetrics,
    /// Cluster-wide tracer (this node records into its own ring). Use
    /// [`Tracer::disabled`] to run untraced.
    pub tracer: Arc<Tracer>,
}

/// The log half of a node's state: the WAL handle, every record this
/// node holds (own writes + shipped-in), and the idempotency set.
struct LogInner {
    wal: Option<Wal>,
    records: Vec<Observation>,
    applied: HashSet<(u64, u64)>,
}

/// All mutable state of one node. Lock order: `log` before `weights`.
pub struct NodeState {
    config: NodeConfig,
    users: HashPartitioner,
    weights: Mutex<HashMap<u64, Vec<f64>>>,
    items: Mutex<HashMap<u64, Vec<f64>>>,
    log: Mutex<LogInner>,
    /// Last logical timestamp assigned or seen (Lamport-style).
    clock: AtomicU64,
    peers: Arc<PeerTable>,
}

impl NodeState {
    /// Replica set of a user: home plus successors on the ring.
    fn replica_nodes_of_user(&self, uid: u64) -> Vec<NodeId> {
        let primary = self.users.node_for(uid);
        let r = self.config.user_replication.clamp(1, self.config.n_nodes);
        (0..r).map(|k| (primary + k) % self.config.n_nodes).collect()
    }

    /// True when this node is in `uid`'s replica set.
    pub fn holds_user(&self, uid: u64) -> bool {
        self.replica_nodes_of_user(uid).contains(&self.config.node_id)
    }

    /// Installs item features (management plane; not logged).
    pub fn seed_items(&self, entries: &[(u64, Vec<f64>)]) {
        let mut items = self.items.lock().unwrap();
        for (item_id, x) in entries {
            items.insert(*item_id, x.clone());
        }
    }

    /// Merges foreign log records (recovery): records already applied are
    /// skipped; new ones enter the log and the local WAL but do **not**
    /// touch the weights — call [`NodeState::rebuild_weights`] once after
    /// all merges. Returns how many records were new.
    pub fn merge_records(&self, records: &[Observation]) -> io::Result<u64> {
        let mut log = self.log.lock().unwrap();
        let mut added = 0u64;
        for rec in records {
            self.clock.fetch_max(rec.timestamp, Ordering::AcqRel);
            if !log.applied.insert((rec.uid, rec.timestamp)) {
                continue;
            }
            if let Some(wal) = log.wal.as_mut() {
                wal.append(rec).map_err(|e| io::Error::other(e.to_string()))?;
            }
            log.records.push(rec.clone());
            added += 1;
        }
        Ok(added)
    }

    /// Rebuilds the weight table by replaying every held record in
    /// timestamp order — the same op order the records were first applied
    /// in, so the rebuilt floats are bit-identical.
    pub fn rebuild_weights(&self) {
        let lr = self.config.lr;
        let log = self.log.lock().unwrap();
        let mut records: Vec<&Observation> = log.records.iter().collect();
        records.sort_by_key(|r| r.timestamp);
        let items = self.items.lock().unwrap();
        let mut weights = self.weights.lock().unwrap();
        weights.clear();
        for rec in records {
            if let Some(x) = items.get(&rec.item_id) {
                lms_update(weights.entry(rec.uid).or_default(), x, rec.y, lr);
            }
        }
    }

    /// Number of log records currently held.
    pub fn log_len(&self) -> usize {
        self.log.lock().unwrap().records.len()
    }

    fn respond_predict(
        &self,
        uid: u64,
        item_id: u64,
        no_forward: bool,
        ctx: Option<&TraceContext>,
    ) -> Response {
        let me = self.config.node_id;
        let tracer = &self.config.tracer;
        let owner = self.users.node_for(uid);
        if owner != me && !no_forward {
            if let Some(peer) = self.peers.get(owner) {
                let fwd = Request::Predict { uid, item_id, no_forward: true };
                let rpc_span = tracer.child(ctx, SpanKind::RpcCall, me as u32);
                let rpc_ctx = rpc_span.as_ref().map(|s| s.ctx());
                let reply = peer.call_traced(&fwd, rpc_ctx.as_ref());
                tracer.finish(rpc_span);
                if let Ok(Response::Predicted { score, node, cold_start, .. }) = reply {
                    self.config.metrics.forwards.inc();
                    return Response::Predicted { score, node, forwarded: true, cold_start };
                }
            }
            // Owner unreachable: fall through and answer from local state
            // (a replica's shipped copy, or the cold-start prior).
        }
        let work = tracer.child(ctx, SpanKind::NodePredict, me as u32);
        let Some(x) = self.items.lock().unwrap().get(&item_id).cloned() else {
            tracer.finish_status(work, velox_obs::SpanStatus::Error);
            return Response::Error {
                code: ErrorCode::Unavailable,
                message: format!("item {item_id} not seeded at node {me}"),
            };
        };
        let weights = self.weights.lock().unwrap();
        let (score, cold_start) = match weights.get(&uid) {
            Some(w) => (dot(w, &x), false),
            None => (0.0, true),
        };
        self.config.metrics.predicts.inc();
        tracer.finish(work);
        Response::Predicted { score, node: me as u32, forwarded: false, cold_start }
    }

    fn respond_observe(
        &self,
        uid: u64,
        item_id: u64,
        y: f64,
        no_forward: bool,
        ctx: Option<&TraceContext>,
    ) -> Response {
        let me = self.config.node_id;
        let tracer = &self.config.tracer;
        let owner = self.users.node_for(uid);
        if owner != me && !no_forward {
            if let Some(peer) = self.peers.get(owner) {
                let fwd = Request::Observe { uid, item_id, y, no_forward: true };
                let rpc_span = tracer.child(ctx, SpanKind::RpcCall, me as u32);
                let rpc_ctx = rpc_span.as_ref().map(|s| s.ctx());
                let reply = peer.call_traced(&fwd, rpc_ctx.as_ref());
                tracer.finish(rpc_span);
                match reply {
                    Ok(resp @ Response::Observed { .. }) => {
                        self.config.metrics.forwards.inc();
                        return resp;
                    }
                    Ok(other) => return other,
                    Err(_) => {} // owner unreachable → act as owner below
                }
            }
        }
        let work = tracer.child(ctx, SpanKind::NodeObserve, me as u32);
        let work_ctx = work.as_ref().map(|s| s.ctx());
        let Some(x) = self.items.lock().unwrap().get(&item_id).cloned() else {
            tracer.finish_status(work, velox_obs::SpanStatus::Error);
            return Response::Error {
                code: ErrorCode::Unavailable,
                message: format!("item {item_id} not seeded at node {me}"),
            };
        };
        let ts = self.clock.fetch_add(1, Ordering::AcqRel) + 1;
        let rec = Observation { uid, item_id, y, timestamp: ts };
        {
            let mut log = self.log.lock().unwrap();
            if let Some(wal) = log.wal.as_mut() {
                let append_start = if work_ctx.is_some() { now_ns() } else { 0 };
                match wal.append_timed(&rec) {
                    Ok(timing) => {
                        // WAL spans are externally timed: the storage layer
                        // measured the write and the (possibly skipped)
                        // fsync, so attribute exactly those windows.
                        let append_end = append_start + timing.append_ns;
                        tracer.record(
                            work_ctx.as_ref(),
                            SpanKind::WalAppend,
                            me as u32,
                            append_start,
                            append_end,
                        );
                        if timing.fsync_ns > 0 {
                            tracer.record(
                                work_ctx.as_ref(),
                                SpanKind::WalFsync,
                                me as u32,
                                append_end,
                                append_end + timing.fsync_ns,
                            );
                        }
                    }
                    Err(e) => {
                        tracer.finish_status(work, velox_obs::SpanStatus::Error);
                        return Response::Error {
                            code: ErrorCode::Internal,
                            message: format!("wal append failed: {e}"),
                        };
                    }
                }
            }
            log.applied.insert((uid, ts));
            log.records.push(rec.clone());
            lms_update(self.weights.lock().unwrap().entry(uid).or_default(), &x, y, self.config.lr);
        }
        // Replicate outside the log lock (two owners shipping to each
        // other must not deadlock); idempotent replay keeps this safe.
        let mut shipped_to = 0u32;
        for replica in self.replica_nodes_of_user(uid) {
            if replica == me {
                continue;
            }
            let Some(peer) = self.peers.get(replica) else { continue };
            let ship_span = tracer.child(work_ctx.as_ref(), SpanKind::ShipReplica, me as u32);
            let ship_ctx = ship_span.as_ref().map(|s| s.ctx());
            match peer
                .call_traced(&Request::ShipLog { records: vec![rec.clone()] }, ship_ctx.as_ref())
            {
                Ok(Response::Ok) => {
                    shipped_to += 1;
                    tracer.finish(ship_span);
                }
                _ => {
                    self.config.metrics.ship_failures.inc();
                    tracer.finish_status(ship_span, velox_obs::SpanStatus::Error);
                }
            }
        }
        self.config.metrics.observes.inc();
        tracer.finish(work);
        Response::Observed { node: me as u32, ts, shipped_to }
    }

    fn respond_ship(&self, records: Vec<Observation>, ctx: Option<&TraceContext>) -> Response {
        let apply = self.config.tracer.child(ctx, SpanKind::ShipApply, self.config.node_id as u32);
        let resp = self.apply_shipped(records);
        let status = if matches!(resp, Response::Ok) {
            velox_obs::SpanStatus::Ok
        } else {
            velox_obs::SpanStatus::Error
        };
        self.config.tracer.finish_status(apply, status);
        resp
    }

    fn apply_shipped(&self, records: Vec<Observation>) -> Response {
        let lr = self.config.lr;
        let mut log = self.log.lock().unwrap();
        for rec in &records {
            self.clock.fetch_max(rec.timestamp, Ordering::AcqRel);
            if !log.applied.insert((rec.uid, rec.timestamp)) {
                continue;
            }
            if let Some(wal) = log.wal.as_mut() {
                if let Err(e) = wal.append(rec) {
                    return Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("replica wal append failed: {e}"),
                    };
                }
            }
            log.records.push(rec.clone());
            if let Some(x) = self.items.lock().unwrap().get(&rec.item_id).cloned() {
                lms_update(self.weights.lock().unwrap().entry(rec.uid).or_default(), &x, rec.y, lr);
            }
            self.config.metrics.ship_in_records.inc();
        }
        Response::Ok
    }

    fn respond_pull(&self, from_ts: u64) -> Response {
        let log = self.log.lock().unwrap();
        let mut records: Vec<Observation> =
            log.records.iter().filter(|r| r.timestamp >= from_ts).cloned().collect();
        records.sort_by_key(|r| r.timestamp);
        Response::Log { records }
    }
}

impl NodeState {
    /// Request dispatch, with the optional span context of the server
    /// receive span wrapping this request.
    fn dispatch(&self, req: Request, ctx: Option<&TraceContext>) -> Response {
        match req {
            Request::Predict { uid, item_id, no_forward } => {
                self.respond_predict(uid, item_id, no_forward, ctx)
            }
            Request::Observe { uid, item_id, y, no_forward } => {
                self.respond_observe(uid, item_id, y, no_forward, ctx)
            }
            Request::FetchWeights { uid } => {
                Response::Weights { w: self.weights.lock().unwrap().get(&uid).cloned() }
            }
            Request::ShipLog { records } => self.respond_ship(records, ctx),
            Request::PullLog { from_ts } => self.respond_pull(from_ts),
            Request::SeedItems { entries } => {
                self.seed_items(&entries);
                Response::Ok
            }
            Request::PutWeights { uid, w } => {
                self.weights.lock().unwrap().insert(uid, w);
                Response::Ok
            }
            Request::Health => Response::Ok,
        }
    }
}

impl Handler for NodeState {
    fn handle(&self, req: Request) -> Response {
        self.dispatch(req, None)
    }

    fn handle_traced(&self, req: Request, rpc: RpcContext) -> Response {
        // The receive span starts when the frame finished arriving
        // (`rpc.recv_ns`), so its head — before the node work child —
        // is decode + dispatch + queue wait on the server side.
        let recv = self.config.tracer.child_at(
            rpc.trace.as_ref(),
            SpanKind::ServerRecv,
            self.config.node_id as u32,
            rpc.recv_ns,
        );
        let recv_ctx = recv.as_ref().map(|s| s.ctx());
        let resp = self.dispatch(req, recv_ctx.as_ref());
        self.config.tracer.finish(recv);
        resp
    }
}

/// A running node: its state plus its TCP server.
pub struct NodeServer {
    state: Arc<NodeState>,
    server: NetServer,
}

impl NodeServer {
    /// Opens the node's WAL (when configured), loads whatever it held
    /// into the log (weights are *not* rebuilt — recovery seeds items
    /// first, then calls [`NodeState::rebuild_weights`]), and starts
    /// serving on an ephemeral loopback port. Returns the node plus what
    /// the WAL scan found.
    pub fn start(
        config: NodeConfig,
        peers: Arc<PeerTable>,
    ) -> io::Result<(NodeServer, Option<WalRecovery>)> {
        let mut wal = None;
        let mut recovery = None;
        if let Some(dir) = &config.wal_dir {
            let (w, rec) =
                Wal::open(WalConfig::new(dir)).map_err(|e| io::Error::other(e.to_string()))?;
            wal = Some(w);
            recovery = Some(rec);
        }
        let mut log = LogInner { wal, records: Vec::new(), applied: HashSet::new() };
        let mut clock = 0u64;
        if let Some(rec) = &recovery {
            for obs in &rec.records {
                clock = clock.max(obs.timestamp);
                log.applied.insert((obs.uid, obs.timestamp));
                log.records.push(obs.clone());
            }
        }
        let workers = config.workers;
        let state = Arc::new(NodeState {
            users: HashPartitioner::new(config.n_nodes, USER_SALT),
            config,
            weights: Mutex::new(HashMap::new()),
            items: Mutex::new(HashMap::new()),
            log: Mutex::new(log),
            clock: AtomicU64::new(clock),
            peers,
        });
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&state) as Arc<dyn Handler>,
            NetServerConfig { workers },
        )?;
        Ok((NodeServer { state, server }, recovery))
    }

    /// The node's state (the runtime drives recovery through it).
    pub fn state(&self) -> &Arc<NodeState> {
        &self.state
    }

    /// The node's listening address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Stops the node's server (simulated crash: in-memory state is
    /// dropped with the handle; the WAL directory survives).
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}
