//! A node: one partition of `W`, its WAL, and the RPC handlers.
//!
//! Each [`NodeServer`] is what the paper co-locates with a storage worker
//! (§3): the shard of the user-weight table its partition owns (plus the
//! shards shipped to it as a replica), a full copy of the item-feature
//! table, a local write-ahead log, and the serving logic — score `wᵤ·x`,
//! apply online LMS updates, and replicate acknowledged observations to
//! the partition's replica set before acking (`ShipLog`).
//!
//! ## Durability and ordering
//!
//! An observe is acknowledged only after (1) the record is appended to
//! the owner's WAL and (2) a `ShipLog` round trip to every *reachable*
//! replica completed — so losing the owner's disk still leaves every
//! acknowledged record in a replica's WAL. Records carry a logical
//! timestamp from the owner's clock; the clock is `fetch_max`-ed with
//! every shipped/pulled record so an acting owner (failover writer)
//! always assigns timestamps above everything it has seen, and recovery
//! replays strictly in timestamp order. The `(uid, ts)` pair identifies a
//! record: replay and re-shipping are idempotent.
//!
//! Weight updates happen under the log lock, so replaying the log in
//! timestamp order reproduces the exact floating-point op sequence — the
//! property the backends-agree and recovery tests lean on.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use velox_cluster::netfault::{LinkChaos, FRONT_PEER};
use velox_cluster::retry::ObsDedupe;
use velox_cluster::transport::{dot, lms_update};
use velox_cluster::{NodeId, PartitionMap};
use velox_obs::{trace::now_ns, Counter, Gauge, Registry, SpanKind, TraceContext, Tracer};
use velox_storage::{Observation, Wal, WalConfig, WalRecovery};

use crate::client::{ChaosLink, ClientMetrics, NetClient, NetClientConfig};
use crate::rpc::{build_chunk, BatchScore, ErrorCode, Request, Response};
use crate::server::{Handler, NetServer, NetServerConfig, RpcContext};

/// Observe acks remembered per node for exactly-once replay.
const OBS_DEDUPE_WINDOW: usize = 65_536;

/// One reachable node incarnation: its address plus the clients built for
/// it so far, one per *calling* peer. Keying clients by caller is what
/// makes partitions directional — the front's link to node 2 and node 0's
/// link to node 2 are separate [`ChaosLink`]s the fault engine can cut
/// independently.
struct PeerEndpoint {
    addr: SocketAddr,
    config: NetClientConfig,
    /// Lazily built clients, keyed by the calling peer id
    /// ([`FRONT_PEER`] for the routing tier).
    clients: Mutex<HashMap<u32, Arc<NetClient>>>,
}

/// Shared, mutable address book: node id → endpoint of its current
/// incarnation (`None` while the node is down). Nodes use it to forward
/// and ship; the runtime rewrites entries as nodes die and come back on
/// new ports. Client attempt/failure counters live here (per destination,
/// shared by every caller) so they survive node restarts.
pub struct PeerTable {
    entries: RwLock<Vec<Option<Arc<PeerEndpoint>>>>,
    /// Installed once at cluster start; every client built afterwards
    /// carries a link into it. Inert plans cost one atomic load per call.
    chaos: Option<Arc<LinkChaos>>,
    metrics: Vec<ClientMetrics>,
}

impl PeerTable {
    /// An address book for `n_nodes`, all initially down, without fault
    /// injection.
    pub fn new(n_nodes: usize) -> Self {
        PeerTable {
            entries: RwLock::new((0..n_nodes).map(|_| None).collect()),
            chaos: None,
            metrics: (0..n_nodes).map(|_| ClientMetrics::new()).collect(),
        }
    }

    /// An address book whose clients all route through `chaos`.
    pub fn with_chaos(n_nodes: usize, chaos: Arc<LinkChaos>) -> Self {
        PeerTable { chaos: Some(chaos), ..PeerTable::new(n_nodes) }
    }

    /// The routing tier's client for `node`, when it is reachable.
    pub fn get(&self, node: NodeId) -> Option<Arc<NetClient>> {
        self.get_from(FRONT_PEER, node)
    }

    /// The client `src` uses to reach `node`, when `node` is reachable.
    /// Built lazily per `(src, node)` edge and cached for the lifetime of
    /// the node's current incarnation.
    pub fn get_from(&self, src: u32, node: NodeId) -> Option<Arc<NetClient>> {
        let endpoint = self.entries.read().unwrap().get(node).cloned().flatten()?;
        let mut clients = endpoint.clients.lock().unwrap();
        if let Some(client) = clients.get(&src) {
            return Some(Arc::clone(client));
        }
        let mut client = NetClient::with_config(endpoint.addr, endpoint.config.clone())
            .with_metrics(self.metrics[node].clone());
        if let Some(chaos) = &self.chaos {
            client =
                client.with_chaos(ChaosLink { chaos: Arc::clone(chaos), src, dst: node as u32 });
        }
        let client = Arc::new(client);
        clients.insert(src, Arc::clone(&client));
        Some(client)
    }

    /// Installs (or clears) the endpoint for `node`. Installing drops
    /// every client built for the previous incarnation, so callers redial
    /// the new port instead of a stale one.
    pub fn set(&self, node: NodeId, endpoint: Option<(SocketAddr, NetClientConfig)>) {
        self.entries.write().unwrap()[node] = endpoint.map(|(addr, config)| {
            Arc::new(PeerEndpoint { addr, config, clients: Mutex::new(HashMap::new()) })
        });
    }

    /// The address of `node`'s current incarnation, when it is up. The
    /// heartbeat prober dials this directly (bypassing the chaos-linked
    /// clients, so probes never perturb the data-plane fault stream).
    pub fn addr(&self, node: NodeId) -> Option<SocketAddr> {
        self.entries.read().unwrap().get(node).cloned().flatten().map(|e| e.addr)
    }

    /// The restart-surviving client counters for calls *to* `node`.
    pub fn client_metrics(&self, node: NodeId) -> &ClientMetrics {
        &self.metrics[node]
    }
}

/// Counters for one node, owned by the runtime so they survive the
/// node's restarts (a reborn node keeps incrementing the same series).
#[derive(Clone)]
pub struct NodeMetrics {
    /// Predict requests answered (locally or via forward).
    pub predicts: Arc<Counter>,
    /// Observations applied at this node as owner or acting owner.
    pub observes: Arc<Counter>,
    /// Requests this node forwarded to the owning node.
    pub forwards: Arc<Counter>,
    /// Log records received (and newly applied) via `ShipLog`.
    pub ship_in_records: Arc<Counter>,
    /// `ShipLog` sends that failed (replica unreachable before deadline).
    pub ship_failures: Arc<Counter>,
    /// Observes answered from the dedupe window (a retry or a chaos
    /// duplicate replayed its original ack instead of updating twice).
    pub duplicate_observes: Arc<Counter>,
    /// Records queued for a replica whose link was down at ship time.
    pub ship_backlog_queued: Arc<Counter>,
    /// Backlogged records delivered to a replica after its link healed.
    pub ship_catch_up_records: Arc<Counter>,
    /// Records currently sitting in bounded per-replica ship queues
    /// (resync markers excluded — their debt lives in the log).
    pub ship_backlog_depth: Arc<Gauge>,
    /// High-watermark of `ship_backlog_depth` over the node's lifetime.
    pub ship_backlog_hwm: Arc<Gauge>,
    /// Requests rejected because the sender's map epoch was stale.
    pub wrong_epoch: Arc<Counter>,
    /// Partition maps adopted via `InstallMap` (newer-epoch installs only).
    pub map_installs: Arc<Counter>,
}

impl NodeMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        NodeMetrics {
            predicts: Arc::new(Counter::new()),
            observes: Arc::new(Counter::new()),
            forwards: Arc::new(Counter::new()),
            ship_in_records: Arc::new(Counter::new()),
            ship_failures: Arc::new(Counter::new()),
            duplicate_observes: Arc::new(Counter::new()),
            ship_backlog_queued: Arc::new(Counter::new()),
            ship_catch_up_records: Arc::new(Counter::new()),
            ship_backlog_depth: Arc::new(Gauge::new()),
            ship_backlog_hwm: Arc::new(Gauge::new()),
            wrong_epoch: Arc::new(Counter::new()),
            map_installs: Arc::new(Counter::new()),
        }
    }

    /// Registers every counter under `velox_net_*` with a `node` label.
    pub fn register(&self, registry: &Registry, node: NodeId) {
        let id = node.to_string();
        let labels = [("node", id.as_str())];
        registry.register_counter("velox_net_predicts_total", &labels, Arc::clone(&self.predicts));
        registry.register_counter("velox_net_observes_total", &labels, Arc::clone(&self.observes));
        registry.register_counter("velox_net_forwards_total", &labels, Arc::clone(&self.forwards));
        registry.register_counter(
            "velox_net_ship_in_records_total",
            &labels,
            Arc::clone(&self.ship_in_records),
        );
        registry.register_counter(
            "velox_net_ship_failures_total",
            &labels,
            Arc::clone(&self.ship_failures),
        );
        registry.register_counter(
            "velox_net_duplicate_observes_total",
            &labels,
            Arc::clone(&self.duplicate_observes),
        );
        registry.register_counter(
            "velox_net_ship_backlog_queued_total",
            &labels,
            Arc::clone(&self.ship_backlog_queued),
        );
        registry.register_counter(
            "velox_net_ship_catch_up_records_total",
            &labels,
            Arc::clone(&self.ship_catch_up_records),
        );
        registry.register_gauge(
            "velox_net_ship_backlog_depth",
            &labels,
            Arc::clone(&self.ship_backlog_depth),
        );
        registry.register_gauge(
            "velox_net_ship_backlog_hwm",
            &labels,
            Arc::clone(&self.ship_backlog_hwm),
        );
        registry.register_counter(
            "velox_net_wrong_epoch_total",
            &labels,
            Arc::clone(&self.wrong_epoch),
        );
        registry.register_counter(
            "velox_net_map_installs_total",
            &labels,
            Arc::clone(&self.map_installs),
        );
    }
}

impl Default for NodeMetrics {
    fn default() -> Self {
        NodeMetrics::new()
    }
}

/// Configuration for one node server.
pub struct NodeConfig {
    /// This node's id on the ring.
    pub node_id: NodeId,
    /// Cluster *capacity*: one more than the highest node id the cluster
    /// can ever grow to. Sizes the per-replica backlog slots; the live
    /// member set comes from the partition map.
    pub n_nodes: usize,
    /// The partition map at start. Ownership, replica sets, and
    /// `holds_user` all come from the node's current map, which later
    /// `InstallMap` frames advance.
    pub map: Arc<PartitionMap>,
    /// LMS learning rate.
    pub lr: f64,
    /// WAL directory for this node; `None` runs without local durability
    /// (acknowledged records then live only in replicas' WALs).
    pub wal_dir: Option<std::path::PathBuf>,
    /// Worker threads for the node's RPC server.
    pub workers: usize,
    /// Records queued per replica while its ship link is down before the
    /// queue collapses into a resync marker (re-ship from the log on
    /// heal).
    pub ship_backlog_cap: usize,
    /// Runtime-owned counters (survive restarts).
    pub metrics: NodeMetrics,
    /// Cluster-wide tracer (this node records into its own ring). Use
    /// [`Tracer::disabled`] to run untraced.
    pub tracer: Arc<Tracer>,
}

/// The log half of a node's state: the WAL handle, every record this
/// node holds (own writes + shipped-in), and the idempotency set.
struct LogInner {
    wal: Option<Wal>,
    records: Vec<Observation>,
    applied: HashSet<(u64, u64)>,
}

/// What an owner owes one replica whose ship link failed. Queued records
/// preserve ship order; once the bounded queue overflows, the exact
/// backlog no longer fits and the state collapses to "re-ship everything
/// from timestamp `ts` on" — the log holds it all, so nothing acked is
/// ever lost, only re-sent (idempotent by `(uid, ts)`).
enum ShipBacklog {
    /// Link healthy, nothing owed.
    Clear,
    /// `(record, obs_id)` pairs to deliver, in ship order.
    Queue(VecDeque<(Observation, u64)>),
    /// Queue overflowed: on heal, re-ship every log record with
    /// `timestamp >= ts` instead (obs ids are lost for resynced records —
    /// the log does not store them — so only the queued window feeds the
    /// replica's dedupe).
    ResyncFrom(u64),
}

/// All mutable state of one node. Lock order: `log` before `weights`;
/// a `backlog` slot may take `log` (resync reads the records) but never
/// the other way around.
pub struct NodeState {
    config: NodeConfig,
    /// Current partition map; swapped whole-`Arc` by `InstallMap`.
    map: RwLock<Arc<PartitionMap>>,
    weights: Mutex<HashMap<u64, Vec<f64>>>,
    items: Mutex<HashMap<u64, Vec<f64>>>,
    log: Mutex<LogInner>,
    /// Last logical timestamp assigned or seen (Lamport-style).
    clock: AtomicU64,
    peers: Arc<PeerTable>,
    /// Recent observe acks by observation id: a replayed id (client retry
    /// or chaos duplication) answers with its original ack instead of a
    /// second weight update.
    dedupe: Mutex<ObsDedupe<(u32, u64, u32)>>,
    /// Per-replica ship debt, one slot per cluster node. Each slot's
    /// mutex is held across the drain + ship RPCs so records reach a
    /// replica in ship order even under concurrent observes.
    backlog: Vec<Mutex<ShipBacklog>>,
    /// Observation ids currently being applied. An ack only enters the
    /// dedupe window after the (possibly slow) replica ship, so a client
    /// retry racing its own original attempt parks here until the
    /// original's ack is published instead of re-applying the update.
    inflight: Mutex<HashSet<u64>>,
    /// Signalled whenever an id leaves `inflight`.
    inflight_done: Condvar,
}

impl NodeState {
    /// The node's current partition map.
    pub fn current_map(&self) -> Arc<PartitionMap> {
        Arc::clone(&self.map.read().unwrap())
    }

    /// Adopts `map` if it is newer than the current one (idempotent for
    /// replayed install frames). Returns whether it was adopted.
    pub fn install_map(&self, map: Arc<PartitionMap>) -> bool {
        let mut cur = self.map.write().unwrap();
        if map.epoch() > cur.epoch() {
            *cur = map;
            self.config.metrics.map_installs.inc();
            true
        } else {
            false
        }
    }

    /// Replica set of a user under the current map (owner first).
    fn replica_nodes_of_user(&self, uid: u64) -> Vec<NodeId> {
        self.map.read().unwrap().replicas_of(uid).to_vec()
    }

    /// True when this node is in `uid`'s replica set.
    pub fn holds_user(&self, uid: u64) -> bool {
        let map = self.map.read().unwrap();
        map.holds(self.config.node_id, uid)
    }

    /// Checks a request's map-epoch stamp against the node's map. `0`
    /// (unstamped: server-internal hops, pre-membership tooling) always
    /// passes. A mismatch in either direction means the sender routed
    /// with a different map than this node serves under, so the request
    /// is refused before anything is applied — the sender refreshes
    /// (`GetMap`) and retries under the new map.
    fn admit_epoch(&self, epoch: u64) -> Result<(), Response> {
        if epoch == 0 {
            return Ok(());
        }
        let cur = self.map.read().unwrap().epoch();
        if epoch == cur {
            return Ok(());
        }
        self.config.metrics.wrong_epoch.inc();
        Err(Response::Error {
            code: ErrorCode::WrongEpoch,
            message: format!("stale map epoch {epoch}, node is at {cur}"),
        })
    }

    /// Installs item features (management plane; not logged).
    pub fn seed_items(&self, entries: &[(u64, Vec<f64>)]) {
        let mut items = self.items.lock().unwrap();
        for (item_id, x) in entries {
            items.insert(*item_id, x.clone());
        }
    }

    /// Merges foreign log records (recovery): records already applied are
    /// skipped; new ones enter the log and the local WAL but do **not**
    /// touch the weights — call [`NodeState::rebuild_weights`] once after
    /// all merges. Returns how many records were new.
    pub fn merge_records(&self, records: &[Observation]) -> io::Result<u64> {
        let mut log = self.log.lock().unwrap();
        let mut added = 0u64;
        for rec in records {
            self.clock.fetch_max(rec.timestamp, Ordering::AcqRel);
            if !log.applied.insert((rec.uid, rec.timestamp)) {
                continue;
            }
            if let Some(wal) = log.wal.as_mut() {
                wal.append(rec).map_err(|e| io::Error::other(e.to_string()))?;
            }
            log.records.push(rec.clone());
            added += 1;
        }
        Ok(added)
    }

    /// Rebuilds the weight table by replaying every held record in
    /// timestamp order — the same op order the records were first applied
    /// in, so the rebuilt floats are bit-identical.
    pub fn rebuild_weights(&self) {
        let lr = self.config.lr;
        let log = self.log.lock().unwrap();
        let mut records: Vec<&Observation> = log.records.iter().collect();
        records.sort_by_key(|r| r.timestamp);
        let items = self.items.lock().unwrap();
        let mut weights = self.weights.lock().unwrap();
        weights.clear();
        for rec in records {
            if let Some(x) = items.get(&rec.item_id) {
                lms_update(weights.entry(rec.uid).or_default(), x, rec.y, lr);
            }
        }
    }

    /// Number of log records currently held.
    pub fn log_len(&self) -> usize {
        self.log.lock().unwrap().records.len()
    }

    fn respond_predict(
        &self,
        uid: u64,
        item_id: u64,
        no_forward: bool,
        ctx: Option<&TraceContext>,
    ) -> Response {
        let me = self.config.node_id;
        let tracer = &self.config.tracer;
        let owner = self.map.read().unwrap().owner_of(uid);
        if owner != me && !no_forward {
            if let Some(peer) = self.peers.get(owner) {
                // Forwarded leg is unstamped (epoch 0): both hops already
                // run under this node's map, and a mid-flight install
                // must not fail a request that routed correctly.
                let fwd = Request::Predict { uid, item_id, no_forward: true, epoch: 0 };
                let rpc_span = tracer.child(ctx, SpanKind::RpcCall, me as u32);
                let rpc_ctx = rpc_span.as_ref().map(|s| s.ctx());
                let reply = peer.call_traced(&fwd, rpc_ctx.as_ref());
                tracer.finish(rpc_span);
                if let Ok(Response::Predicted { score, node, cold_start, .. }) = reply {
                    self.config.metrics.forwards.inc();
                    return Response::Predicted { score, node, forwarded: true, cold_start };
                }
            }
            // Owner unreachable: fall through and answer from local state
            // (a replica's shipped copy, or the cold-start prior).
        }
        let work = tracer.child(ctx, SpanKind::NodePredict, me as u32);
        let Some(x) = self.items.lock().unwrap().get(&item_id).cloned() else {
            tracer.finish_status(work, velox_obs::SpanStatus::Error);
            return Response::Error {
                code: ErrorCode::Unavailable,
                message: format!("item {item_id} not seeded at node {me}"),
            };
        };
        let weights = self.weights.lock().unwrap();
        let (score, cold_start) = match weights.get(&uid) {
            Some(w) => (dot(w, &x), false),
            None => (0.0, true),
        };
        self.config.metrics.predicts.inc();
        tracer.finish(work);
        Response::Predicted { score, node: me as u32, forwarded: false, cold_start }
    }

    /// Scores a whole batch at this node. The item table and the weight
    /// map are each locked once for the pass (items before weights, the
    /// order `rebuild_partition` uses), so per-pair cost is two map
    /// probes and a dot product. A pair the node cannot score (unseeded
    /// item) comes back `!ok` instead of failing the frame — the sender
    /// retries it on the single-predict path for the precise error. No
    /// forwarding: the sender already grouped pairs by owner under its
    /// map, and a stale grouping is answered from local state exactly
    /// like a `no_forward` single predict.
    fn respond_predict_batch(&self, pairs: &[(u64, u64)], ctx: Option<&TraceContext>) -> Response {
        let me = self.config.node_id;
        let tracer = &self.config.tracer;
        let work = tracer.child(ctx, SpanKind::NodePredict, me as u32);
        let items = self.items.lock().unwrap();
        let weights = self.weights.lock().unwrap();
        let scores = pairs
            .iter()
            .map(|&(uid, item_id)| match items.get(&item_id) {
                None => BatchScore { ok: false, score: 0.0, cold_start: false },
                Some(x) => match weights.get(&uid) {
                    Some(w) => BatchScore { ok: true, score: dot(w, x), cold_start: false },
                    None => BatchScore { ok: true, score: 0.0, cold_start: true },
                },
            })
            .collect();
        self.config.metrics.predicts.add(pairs.len() as u64);
        tracer.finish(work);
        Response::PredictedBatch { node: me as u32, scores }
    }

    fn respond_observe(
        &self,
        uid: u64,
        item_id: u64,
        y: f64,
        no_forward: bool,
        obs_id: u64,
        ctx: Option<&TraceContext>,
    ) -> Response {
        let me = self.config.node_id;
        let tracer = &self.config.tracer;
        let owner = self.map.read().unwrap().owner_of(uid);
        if owner != me && !no_forward {
            if let Some(peer) = self.peers.get_from(me as u32, owner) {
                let fwd = Request::Observe { uid, item_id, y, no_forward: true, obs_id, epoch: 0 };
                let rpc_span = tracer.child(ctx, SpanKind::RpcCall, me as u32);
                let rpc_ctx = rpc_span.as_ref().map(|s| s.ctx());
                let reply = peer.call_traced(&fwd, rpc_ctx.as_ref());
                tracer.finish(rpc_span);
                match reply {
                    Ok(resp @ Response::Observed { .. }) => {
                        self.config.metrics.forwards.inc();
                        return resp;
                    }
                    Ok(other) => return other,
                    Err(_) => {} // owner unreachable → act as owner below
                }
            }
        }
        // Exactly-once past the ack point: a replayed observation id —
        // a client retry after a lost ack, or chaos duplicating the
        // request frame — answers with the original ack, not a second
        // LMS update. Ids still being applied (the ack only enters the
        // dedupe window after the replica ship, which can outlast the
        // client's per-try timeout) park until the original publishes
        // its ack; re-applying concurrently would double-count.
        if obs_id != 0 {
            let mut inflight = self.inflight.lock().unwrap();
            loop {
                if let Some((node, ts, shipped_to)) = self.dedupe.lock().unwrap().hit(obs_id) {
                    self.config.metrics.duplicate_observes.inc();
                    return Response::Observed { node, ts, shipped_to };
                }
                if inflight.insert(obs_id) {
                    break;
                }
                inflight = self.inflight_done.wait(inflight).unwrap();
            }
        }
        let resp = self.apply_observe(uid, item_id, y, obs_id, ctx);
        if obs_id != 0 {
            // The ack (if any) is in the dedupe window by now; parked
            // replays wake and answer from it.
            self.inflight.lock().unwrap().remove(&obs_id);
            self.inflight_done.notify_all();
        }
        resp
    }

    /// The owner-side apply: WAL append, LMS update, replica ship, and
    /// dedupe-window publication. Callers hold the `inflight` claim for
    /// `obs_id` (when non-zero) across this call.
    fn apply_observe(
        &self,
        uid: u64,
        item_id: u64,
        y: f64,
        obs_id: u64,
        ctx: Option<&TraceContext>,
    ) -> Response {
        let me = self.config.node_id;
        let tracer = &self.config.tracer;
        let work = tracer.child(ctx, SpanKind::NodeObserve, me as u32);
        let work_ctx = work.as_ref().map(|s| s.ctx());
        let Some(x) = self.items.lock().unwrap().get(&item_id).cloned() else {
            tracer.finish_status(work, velox_obs::SpanStatus::Error);
            return Response::Error {
                code: ErrorCode::Unavailable,
                message: format!("item {item_id} not seeded at node {me}"),
            };
        };
        let ts = self.clock.fetch_add(1, Ordering::AcqRel) + 1;
        let rec = Observation { uid, item_id, y, timestamp: ts };
        {
            let mut log = self.log.lock().unwrap();
            if let Some(wal) = log.wal.as_mut() {
                let append_start = if work_ctx.is_some() { now_ns() } else { 0 };
                match wal.append_timed(&rec) {
                    Ok(timing) => {
                        // WAL spans are externally timed: the storage layer
                        // measured the write and the (possibly skipped)
                        // fsync, so attribute exactly those windows.
                        let append_end = append_start + timing.append_ns;
                        tracer.record(
                            work_ctx.as_ref(),
                            SpanKind::WalAppend,
                            me as u32,
                            append_start,
                            append_end,
                        );
                        if timing.fsync_ns > 0 {
                            tracer.record(
                                work_ctx.as_ref(),
                                SpanKind::WalFsync,
                                me as u32,
                                append_end,
                                append_end + timing.fsync_ns,
                            );
                        }
                    }
                    Err(e) => {
                        tracer.finish_status(work, velox_obs::SpanStatus::Error);
                        return Response::Error {
                            code: ErrorCode::Internal,
                            message: format!("wal append failed: {e}"),
                        };
                    }
                }
            }
            log.applied.insert((uid, ts));
            log.records.push(rec.clone());
            lms_update(self.weights.lock().unwrap().entry(uid).or_default(), &x, y, self.config.lr);
        }
        // Replicate outside the log lock (two owners shipping to each
        // other must not deadlock); idempotent replay keeps this safe.
        let mut shipped_to = 0u32;
        for replica in self.replica_nodes_of_user(uid) {
            if replica == me {
                continue;
            }
            let Some(peer) = self.peers.get_from(me as u32, replica) else { continue };
            // Serialize ships per replica and settle any backlog first,
            // so records arrive in ship order even across a heal.
            let mut debt = self.backlog[replica].lock().unwrap();
            if !self.settle_backlog(&mut debt, &peer, work_ctx.as_ref()) {
                // Link still bad: this record joins the debt; the owner
                // keeps serving (degraded) and catches the replica up on
                // heal or via its `PullLog` recovery.
                self.config.metrics.ship_failures.inc();
                self.push_backlog(&mut debt, rec.clone(), obs_id);
                continue;
            }
            let ship_span = tracer.child(work_ctx.as_ref(), SpanKind::ShipReplica, me as u32);
            let ship_ctx = ship_span.as_ref().map(|s| s.ctx());
            let ship = Request::ShipLog { records: vec![rec.clone()], obs_ids: vec![obs_id] };
            match peer.call_traced(&ship, ship_ctx.as_ref()) {
                Ok(Response::Ok) => {
                    shipped_to += 1;
                    tracer.finish(ship_span);
                }
                _ => {
                    self.config.metrics.ship_failures.inc();
                    self.push_backlog(&mut debt, rec.clone(), obs_id);
                    tracer.finish_status(ship_span, velox_obs::SpanStatus::Error);
                }
            }
        }
        self.dedupe.lock().unwrap().put(obs_id, (me as u32, ts, shipped_to));
        self.config.metrics.observes.inc();
        tracer.finish(work);
        Response::Observed { node: me as u32, ts, shipped_to }
    }

    /// Queues one record a replica missed, collapsing to a resync marker
    /// when the bounded queue is full. Tracks the queued-depth gauge and
    /// its high-watermark.
    fn push_backlog(&self, debt: &mut ShipBacklog, rec: Observation, obs_id: u64) {
        let cap = self.config.ship_backlog_cap.max(1);
        let metrics = &self.config.metrics;
        metrics.ship_backlog_queued.inc();
        match debt {
            ShipBacklog::Clear => {
                *debt = ShipBacklog::Queue(VecDeque::from([(rec, obs_id)]));
                metrics.ship_backlog_depth.add(1);
            }
            ShipBacklog::Queue(q) => {
                if q.len() >= cap {
                    let oldest = q.front().map(|(r, _)| r.timestamp).unwrap_or(rec.timestamp);
                    metrics.ship_backlog_depth.add(-(q.len() as i64));
                    *debt = ShipBacklog::ResyncFrom(oldest.min(rec.timestamp));
                } else {
                    q.push_back((rec, obs_id));
                    metrics.ship_backlog_depth.add(1);
                }
            }
            ShipBacklog::ResyncFrom(ts) => {
                *debt = ShipBacklog::ResyncFrom(rec.timestamp.min(*ts));
            }
        }
        let depth = metrics.ship_backlog_depth.get();
        if depth > metrics.ship_backlog_hwm.get() {
            metrics.ship_backlog_hwm.set(depth);
        }
    }

    /// Tries to deliver everything owed to one replica. Returns `true`
    /// when the backlog is clear (link usable for fresh ships); on a
    /// failed delivery the debt is kept and `false` says "queue, don't
    /// ship".
    fn settle_backlog(
        &self,
        debt: &mut ShipBacklog,
        peer: &NetClient,
        ctx: Option<&TraceContext>,
    ) -> bool {
        let (records, obs_ids): (Vec<Observation>, Vec<u64>) = match &*debt {
            ShipBacklog::Clear => return true,
            ShipBacklog::Queue(q) => q.iter().cloned().unzip(),
            ShipBacklog::ResyncFrom(ts) => {
                let from = *ts;
                let log = self.log.lock().unwrap();
                let mut records: Vec<Observation> =
                    log.records.iter().filter(|r| r.timestamp >= from).cloned().collect();
                drop(log);
                records.sort_by_key(|r| r.timestamp);
                let ids = vec![0u64; records.len()];
                (records, ids)
            }
        };
        let n = records.len() as u64;
        let queued = matches!(&*debt, ShipBacklog::Queue(_));
        let tracer = &self.config.tracer;
        let ship_span = tracer.child(ctx, SpanKind::ShipReplica, self.config.node_id as u32);
        let ship_ctx = ship_span.as_ref().map(|s| s.ctx());
        match peer.call_traced(&Request::ShipLog { records, obs_ids }, ship_ctx.as_ref()) {
            Ok(Response::Ok) => {
                tracer.finish(ship_span);
                self.config.metrics.ship_catch_up_records.add(n);
                if queued {
                    self.config.metrics.ship_backlog_depth.add(-(n as i64));
                }
                *debt = ShipBacklog::Clear;
                true
            }
            _ => {
                tracer.finish_status(ship_span, velox_obs::SpanStatus::Error);
                false
            }
        }
    }

    /// Total records currently owed to replicas (resync markers count the
    /// log suffix they would re-ship).
    pub fn ship_backlog_len(&self) -> usize {
        let mut total = 0usize;
        for slot in &self.backlog {
            match &*slot.lock().unwrap() {
                ShipBacklog::Clear => {}
                ShipBacklog::Queue(q) => total += q.len(),
                ShipBacklog::ResyncFrom(ts) => {
                    let from = *ts;
                    let log = self.log.lock().unwrap();
                    total += log.records.iter().filter(|r| r.timestamp >= from).count();
                }
            }
        }
        total
    }

    fn respond_ship(
        &self,
        records: Vec<Observation>,
        obs_ids: Vec<u64>,
        ctx: Option<&TraceContext>,
    ) -> Response {
        let apply = self.config.tracer.child(ctx, SpanKind::ShipApply, self.config.node_id as u32);
        let resp = self.apply_shipped(records, obs_ids);
        let status = if matches!(resp, Response::Ok) {
            velox_obs::SpanStatus::Ok
        } else {
            velox_obs::SpanStatus::Error
        };
        self.config.tracer.finish_status(apply, status);
        resp
    }

    fn apply_shipped(&self, records: Vec<Observation>, obs_ids: Vec<u64>) -> Response {
        let lr = self.config.lr;
        let mut log = self.log.lock().unwrap();
        for (i, rec) in records.iter().enumerate() {
            self.clock.fetch_max(rec.timestamp, Ordering::AcqRel);
            // Feed the owner's observation id into this replica's dedupe
            // window even for records it already holds: if a cutover later
            // promotes this replica to owner, an ack-lost client retry
            // routed here answers with the original ack instead of a
            // second LMS update.
            let obs_id = obs_ids.get(i).copied().unwrap_or(0);
            if obs_id != 0 {
                let mut dedupe = self.dedupe.lock().unwrap();
                if dedupe.hit(obs_id).is_none() {
                    dedupe.put(obs_id, (self.config.node_id as u32, rec.timestamp, 0));
                }
            }
            if !log.applied.insert((rec.uid, rec.timestamp)) {
                continue;
            }
            if let Some(wal) = log.wal.as_mut() {
                if let Err(e) = wal.append(rec) {
                    return Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("replica wal append failed: {e}"),
                    };
                }
            }
            log.records.push(rec.clone());
            if let Some(x) = self.items.lock().unwrap().get(&rec.item_id).cloned() {
                lms_update(self.weights.lock().unwrap().entry(rec.uid).or_default(), &x, rec.y, lr);
            }
            self.config.metrics.ship_in_records.inc();
        }
        Response::Ok
    }

    fn respond_pull(&self, from_ts: u64) -> Response {
        let log = self.log.lock().unwrap();
        let mut records: Vec<Observation> =
            log.records.iter().filter(|r| r.timestamp >= from_ts).cloned().collect();
        records.sort_by_key(|r| r.timestamp);
        Response::Log { records }
    }

    /// Snapshot of every user weight vector this node holds for one
    /// virtual partition — the migration checkpoint stream source. The
    /// snapshot covers weights with no log records too (management-plane
    /// `PutWeights` installs), which log replay alone would miss.
    fn respond_pull_partition(&self, partition: u32) -> Response {
        let map = self.current_map();
        let weights = self.weights.lock().unwrap();
        let entries: Vec<(u64, Vec<f64>)> = weights
            .iter()
            .filter(|(uid, _)| map.partition_of(**uid) == partition)
            .map(|(uid, w)| (*uid, w.clone()))
            .collect();
        Response::Partition { entries }
    }

    /// One bounded step of the resumable checkpoint stream: the held
    /// `(uid, weights)` pairs of `partition` with `uid ≥ cursor`, uid
    /// ascending, cut off at `max_bytes` of encoded entries and stamped
    /// with a CRC over the chunk body, cursor, and done flag. Pure read —
    /// re-pulling a cursor after a dropped link replays the same chunk.
    fn respond_pull_partition_chunk(
        &self,
        partition: u32,
        cursor: u64,
        max_bytes: u32,
    ) -> Response {
        let map = self.current_map();
        let weights = self.weights.lock().unwrap();
        let mut entries: Vec<(u64, Vec<f64>)> = weights
            .iter()
            .filter(|(uid, _)| map.partition_of(**uid) == partition)
            .map(|(uid, w)| (*uid, w.clone()))
            .collect();
        drop(weights);
        entries.sort_by_key(|(uid, _)| *uid);
        build_chunk(&entries, cursor, max_bytes)
    }

    /// Drops every weight vector of `partition` that this node's current
    /// map says it does not hold — the abort rollback for checkpoint
    /// chunks streamed to a destination that never became a replica.
    /// Weights the map legitimately places here are untouched, so a
    /// scrub after a *committed* migration is a no-op. Returns how many
    /// vectors were dropped.
    pub fn scrub_partition(&self, partition: u32) -> u64 {
        let me = self.config.node_id;
        let map = self.current_map();
        let mut weights = self.weights.lock().unwrap();
        let doomed: Vec<u64> = weights
            .keys()
            .filter(|uid| map.partition_of(**uid) == partition && !map.holds(me, **uid))
            .copied()
            .collect();
        for uid in &doomed {
            weights.remove(uid);
        }
        doomed.len() as u64
    }

    /// Installs checkpoint-streamed weights, keeping any vector this node
    /// already has (dual-write updates that landed here are newer than
    /// the snapshot; the post-cutover log replay reconciles exactly).
    fn respond_push_partition(&self, entries: Vec<(u64, Vec<f64>)>) -> Response {
        let mut weights = self.weights.lock().unwrap();
        for (uid, w) in entries {
            weights.entry(uid).or_insert(w);
        }
        Response::Ok
    }

    /// Rebuilds the weights of every user in `partition` that has log
    /// records here, replaying in timestamp order — the same op order the
    /// owner first applied, so the rebuilt floats are bit-identical.
    /// Users without records (checkpoint-only state) are left untouched;
    /// other partitions' weights are never cleared.
    pub fn rebuild_partition(&self, partition: u32) {
        let lr = self.config.lr;
        let map = self.current_map();
        let log = self.log.lock().unwrap();
        let mut records: Vec<&Observation> =
            log.records.iter().filter(|r| map.partition_of(r.uid) == partition).collect();
        records.sort_by_key(|r| r.timestamp);
        let items = self.items.lock().unwrap();
        let mut weights = self.weights.lock().unwrap();
        for rec in &records {
            weights.remove(&rec.uid);
        }
        for rec in records {
            if let Some(x) = items.get(&rec.item_id) {
                lms_update(weights.entry(rec.uid).or_default(), x, rec.y, lr);
            }
        }
    }
}

impl NodeState {
    /// Request dispatch, with the optional span context of the server
    /// receive span wrapping this request.
    fn dispatch(&self, req: Request, ctx: Option<&TraceContext>) -> Response {
        match req {
            Request::Predict { uid, item_id, no_forward, epoch } => {
                if let Err(reject) = self.admit_epoch(epoch) {
                    return reject;
                }
                self.respond_predict(uid, item_id, no_forward, ctx)
            }
            Request::Observe { uid, item_id, y, no_forward, obs_id, epoch } => {
                // Rejected-for-epoch observes were never applied, so the
                // client's same-obs_id retry under the fresh map is safe.
                if let Err(reject) = self.admit_epoch(epoch) {
                    return reject;
                }
                self.respond_observe(uid, item_id, y, no_forward, obs_id, ctx)
            }
            Request::FetchWeights { uid } => {
                Response::Weights { w: self.weights.lock().unwrap().get(&uid).cloned() }
            }
            Request::ShipLog { records, obs_ids } => self.respond_ship(records, obs_ids, ctx),
            Request::PullLog { from_ts } => self.respond_pull(from_ts),
            Request::SeedItems { entries } => {
                self.seed_items(&entries);
                Response::Ok
            }
            Request::PutWeights { uid, w } => {
                self.weights.lock().unwrap().insert(uid, w);
                Response::Ok
            }
            Request::Health => Response::Ok,
            Request::GetMap => Response::Map { map: (*self.current_map()).clone() },
            Request::InstallMap { map } => {
                self.install_map(Arc::new(map));
                Response::Ok
            }
            Request::PullPartition { partition } => self.respond_pull_partition(partition),
            Request::PushPartition { entries } => self.respond_push_partition(entries),
            Request::PullPartitionChunk { partition, cursor, max_bytes } => {
                self.respond_pull_partition_chunk(partition, cursor, max_bytes)
            }
            Request::PredictBatch { pairs, epoch } => {
                if let Err(reject) = self.admit_epoch(epoch) {
                    return reject;
                }
                self.respond_predict_batch(&pairs, ctx)
            }
        }
    }
}

impl Handler for NodeState {
    fn handle(&self, req: Request) -> Response {
        self.dispatch(req, None)
    }

    fn handle_traced(&self, req: Request, rpc: RpcContext) -> Response {
        // The receive span starts when the frame finished arriving
        // (`rpc.recv_ns`), so its head — before the node work child —
        // is decode + dispatch + queue wait on the server side.
        let recv = self.config.tracer.child_at(
            rpc.trace.as_ref(),
            SpanKind::ServerRecv,
            self.config.node_id as u32,
            rpc.recv_ns,
        );
        let recv_ctx = recv.as_ref().map(|s| s.ctx());
        let resp = self.dispatch(req, recv_ctx.as_ref());
        self.config.tracer.finish(recv);
        resp
    }
}

/// A running node: its state plus its TCP server.
pub struct NodeServer {
    state: Arc<NodeState>,
    server: NetServer,
}

impl NodeServer {
    /// Opens the node's WAL (when configured), loads whatever it held
    /// into the log (weights are *not* rebuilt — recovery seeds items
    /// first, then calls [`NodeState::rebuild_weights`]), and starts
    /// serving on an ephemeral loopback port. Returns the node plus what
    /// the WAL scan found.
    pub fn start(
        config: NodeConfig,
        peers: Arc<PeerTable>,
    ) -> io::Result<(NodeServer, Option<WalRecovery>)> {
        let mut wal = None;
        let mut recovery = None;
        if let Some(dir) = &config.wal_dir {
            let (w, rec) =
                Wal::open(WalConfig::new(dir)).map_err(|e| io::Error::other(e.to_string()))?;
            wal = Some(w);
            recovery = Some(rec);
        }
        let mut log = LogInner { wal, records: Vec::new(), applied: HashSet::new() };
        let mut clock = 0u64;
        if let Some(rec) = &recovery {
            for obs in &rec.records {
                clock = clock.max(obs.timestamp);
                log.applied.insert((obs.uid, obs.timestamp));
                log.records.push(obs.clone());
            }
        }
        let workers = config.workers;
        let n_nodes = config.n_nodes;
        let state = Arc::new(NodeState {
            map: RwLock::new(Arc::clone(&config.map)),
            config,
            weights: Mutex::new(HashMap::new()),
            items: Mutex::new(HashMap::new()),
            log: Mutex::new(log),
            clock: AtomicU64::new(clock),
            peers,
            dedupe: Mutex::new(ObsDedupe::new(OBS_DEDUPE_WINDOW)),
            backlog: (0..n_nodes).map(|_| Mutex::new(ShipBacklog::Clear)).collect(),
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
        });
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&state) as Arc<dyn Handler>,
            NetServerConfig { workers, ..Default::default() },
        )?;
        Ok((NodeServer { state, server }, recovery))
    }

    /// The node's state (the runtime drives recovery through it).
    pub fn state(&self) -> &Arc<NodeState> {
        &self.state
    }

    /// The node's listening address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Stops the node's server (simulated crash: in-memory state is
    /// dropped with the handle; the WAL directory survives).
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}
