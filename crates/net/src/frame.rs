//! Length-prefixed, CRC-checksummed frame codec.
//!
//! Every message on a `velox-net` socket is one frame:
//!
//! ```text
//! ┌────────────┬────────────┬───────────────────┐
//! │ len (u32)  │ crc (u32)  │ payload (len B)   │   all integers big-endian
//! └────────────┴────────────┴───────────────────┘
//! ```
//!
//! `crc` is the same reflected CRC-32 the WAL uses
//! ([`velox_storage::crc32`]) computed over the payload, so a bit flip
//! anywhere in transit is detected before the payload reaches the RPC
//! decoder. `len` is bounded by [`MAX_FRAME_LEN`]: a corrupt or hostile
//! length prefix fails fast instead of asking the reader to allocate
//! gigabytes.
//!
//! The codec is carefully un-clever: blocking reads, no buffering beyond
//! the frame being assembled, and a clean distinction between an orderly
//! peer close (EOF *between* frames → [`FrameError::Closed`]) and a torn
//! frame (EOF *inside* a frame → [`FrameError::Corrupt`]).

use std::io::{ErrorKind, Read, Write};

use velox_storage::crc32;

/// Hard upper bound on a frame payload (8 MiB). Large enough for a bulk
/// table seed, small enough that a corrupt length cannot balloon memory.
pub const MAX_FRAME_LEN: u32 = 8 << 20;

/// Bytes of framing overhead per message (length + checksum).
pub const FRAME_HEADER_LEN: usize = 8;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (orderly EOF).
    Closed,
    /// The operating system reported an I/O error (includes timeouts).
    Io(std::io::Error),
    /// The bytes on the wire are not a valid frame: checksum mismatch or
    /// EOF in the middle of a frame.
    Corrupt(String),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            FrameError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds maximum {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// True when the error signals a timed-out blocking read/write (the
    /// deadline expired) rather than a broken connection.
    pub fn is_timeout(&self) -> bool {
        matches!(self, FrameError::Io(e)
            if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut)
    }
}

/// Writes one frame (header + payload) to `w` and flushes it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(FrameError::TooLarge(payload.len() as u32));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    header[4..8].copy_from_slice(&crc32(payload).to_be_bytes());
    w.write_all(&header).map_err(FrameError::Io)?;
    w.write_all(payload).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// Reads exactly `buf.len()` bytes. `at_boundary` selects how EOF before
/// the first byte is classified: an orderly close between frames, or a
/// torn frame.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Corrupt(format!(
                        "torn frame: eof after {filled} of {} bytes",
                        buf.len()
                    )))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame from `r`, verifying length bound and checksum.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exact_or(r, &mut header, true)?;
    let len = u32::from_be_bytes(header[0..4].try_into().unwrap());
    let want_crc = u32::from_be_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, false)?;
    let got_crc = crc32(&payload);
    if got_crc != want_crc {
        return Err(FrameError::Corrupt(format!(
            "checksum mismatch: header {want_crc:#010x}, payload {got_crc:#010x}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn encode(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn round_trip() {
        let payloads: [&[u8]; 4] = [b"", b"x", b"hello velox", &[0u8; 4096]];
        for payload in payloads {
            let buf = encode(payload);
            assert_eq!(buf.len(), FRAME_HEADER_LEN + payload.len());
            let got = read_frame(&mut Cursor::new(&buf)).unwrap();
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn back_to_back_frames_then_orderly_close() {
        let mut buf = encode(b"first");
        buf.extend(encode(b"second"));
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"first");
        assert_eq!(read_frame(&mut cur).unwrap(), b"second");
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }

    #[test]
    fn bit_flip_is_corrupt() {
        let mut buf = encode(b"payload under test");
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        match read_frame(&mut Cursor::new(&buf)) {
            Err(FrameError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_corrupt_not_closed() {
        let buf = encode(b"truncated in flight");
        let cut = &buf[..buf.len() - 5];
        assert!(matches!(read_frame(&mut Cursor::new(cut)), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(read_frame(&mut Cursor::new(&buf)), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn writer_refuses_oversized_payload() {
        let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut sink = Vec::new();
        assert!(matches!(write_frame(&mut sink, &huge), Err(FrameError::TooLarge(_))));
        assert!(sink.is_empty(), "nothing may reach the wire on refusal");
    }
}
