//! Length-prefixed, CRC-checksummed frame codec.
//!
//! Every message on a `velox-net` socket is one frame:
//!
//! ```text
//! ┌────────────┬────────────┬───────────────────┐
//! │ len (u32)  │ crc (u32)  │ payload (len B)   │   all integers big-endian
//! └────────────┴────────────┴───────────────────┘
//! ```
//!
//! `crc` is the same reflected CRC-32 the WAL uses
//! ([`velox_storage::crc32`]) computed over the payload, so a bit flip
//! anywhere in transit is detected before the payload reaches the RPC
//! decoder. `len` is bounded by [`MAX_FRAME_LEN`]: a corrupt or hostile
//! length prefix fails fast instead of asking the reader to allocate
//! gigabytes.
//!
//! # Header extension section
//!
//! Because [`MAX_FRAME_LEN`] is far below 2³¹, the top bit of the length
//! word is free; setting it ([`FLAG_EXT`]) announces an *extension
//! section* between the base header and the payload:
//!
//! ```text
//! ┌──────────────────┬────────────┬───────────────┬───────────┬─────────┐
//! │ FLAG_EXT|len u32 │ crc (u32)  │ ext_len (u16) │ ext bytes │ payload │
//! └──────────────────┴────────────┴───────────────┴───────────┴─────────┘
//! ```
//!
//! The extension bytes are a TLV sequence (`type u8`, `len u8`, value):
//! today the only defined type is [`EXT_TRACE`] carrying a
//! [`TraceContext`]. Unknown types are *skipped* (and counted via
//! [`unknown_ext_skipped_total`]) rather than rejected, so a node that
//! understands newer header fields interoperates with one that does not.
//! `crc` covers `ext_len ‖ ext bytes ‖ payload`, so corruption anywhere
//! in the extension is caught exactly like payload corruption. A frame
//! without the flag is byte-identical to the pre-extension format.
//!
//! The codec is carefully un-clever: blocking reads, no buffering beyond
//! the frame being assembled, and a clean distinction between an orderly
//! peer close (EOF *between* frames → [`FrameError::Closed`]) and a torn
//! frame (EOF *inside* a frame → [`FrameError::Corrupt`]).

use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use velox_obs::TraceContext;
use velox_storage::{crc32, crc32_begin, crc32_feed, crc32_finish};

/// Hard upper bound on a frame payload (8 MiB). Large enough for a bulk
/// table seed, small enough that a corrupt length cannot balloon memory.
pub const MAX_FRAME_LEN: u32 = 8 << 20;

/// Bytes of framing overhead per message (length + checksum).
pub const FRAME_HEADER_LEN: usize = 8;

/// Top bit of the length word: an extension section follows the header.
pub const FLAG_EXT: u32 = 1 << 31;

/// Hard upper bound on the extension section (TLV bytes, excluding the
/// `ext_len` prefix itself).
pub const MAX_EXT_LEN: u16 = 1024;

/// TLV type: a propagated trace context (17 bytes: trace_id u64,
/// span_id u64, flags u8 with bit 0 = sampled).
pub const EXT_TRACE: u8 = 1;

static UNKNOWN_EXT_SKIPPED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of unknown header-extension TLVs skipped by
/// [`read_frame_ext`] — nonzero means a peer is sending header fields
/// this build does not understand (and interop still worked).
pub fn unknown_ext_skipped_total() -> u64 {
    UNKNOWN_EXT_SKIPPED.load(Ordering::Relaxed)
}

/// Decoded extension section of a frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameMeta {
    /// Trace context propagated by the peer, if any.
    pub trace: Option<TraceContext>,
    /// Unknown TLV entries skipped in this frame.
    pub unknown_exts: u32,
}

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (orderly EOF).
    Closed,
    /// The operating system reported an I/O error (includes timeouts).
    Io(std::io::Error),
    /// The bytes on the wire are not a valid frame: checksum mismatch or
    /// EOF in the middle of a frame.
    Corrupt(String),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            FrameError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds maximum {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// True when the error signals a timed-out blocking read/write (the
    /// deadline expired) rather than a broken connection.
    pub fn is_timeout(&self) -> bool {
        matches!(self, FrameError::Io(e)
            if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut)
    }
}

/// Writes one plain frame (header + payload) to `w` and flushes it.
/// Byte-identical to the pre-extension wire format.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    write_frame_ext(w, payload, None)
}

/// Encodes one frame (with optional trace TLV) into a byte vector — the
/// exact bytes [`write_frame_ext`] would put on the wire. The chaos
/// layer uses this to corrupt a frame *after* framing, so injected bit
/// rot exercises the receiver's CRC rejection path.
pub fn encode_frame_ext(
    payload: &[u8],
    trace: Option<&TraceContext>,
) -> Result<Vec<u8>, FrameError> {
    let mut buf = Vec::with_capacity(payload.len() + FRAME_HEADER_LEN + TRACE_EXT_LEN + 2);
    write_frame_ext(&mut buf, payload, trace)?;
    Ok(buf)
}

/// Encoded size of the trace TLV: type byte + length byte + 17-byte value.
const TRACE_EXT_LEN: usize = 19;

fn encode_trace_ext(trace: &TraceContext) -> [u8; TRACE_EXT_LEN] {
    let mut ext = [0u8; TRACE_EXT_LEN];
    ext[0] = EXT_TRACE;
    ext[1] = 17;
    ext[2..10].copy_from_slice(&trace.trace_id.to_be_bytes());
    ext[10..18].copy_from_slice(&trace.span_id.to_be_bytes());
    ext[18] = trace.sampled as u8;
    ext
}

/// RPC-sized payloads ship as one `write_all` (header and payload in a
/// single stack buffer), so a small frame costs one syscall on an
/// unbuffered socket instead of two. The wire bytes are identical either
/// way.
const SMALL_WRITE_MAX: usize = 512;

/// Writes `head ‖ payload`, coalescing small payloads into a single
/// write.
fn write_parts(w: &mut impl Write, head: &[u8], payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() <= SMALL_WRITE_MAX {
        let mut buf = [0u8; FRAME_HEADER_LEN + 2 + TRACE_EXT_LEN + SMALL_WRITE_MAX];
        buf[..head.len()].copy_from_slice(head);
        buf[head.len()..head.len() + payload.len()].copy_from_slice(payload);
        w.write_all(&buf[..head.len() + payload.len()]).map_err(FrameError::Io)
    } else {
        w.write_all(head).map_err(FrameError::Io)?;
        w.write_all(payload).map_err(FrameError::Io)
    }
}

/// Writes one frame, attaching `trace` as a header-extension TLV when
/// present. Without a trace this is exactly [`write_frame`].
pub fn write_frame_ext(
    w: &mut impl Write,
    payload: &[u8],
    trace: Option<&TraceContext>,
) -> Result<(), FrameError> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(FrameError::TooLarge(payload.len() as u32));
    }
    match trace {
        None => {
            let mut header = [0u8; FRAME_HEADER_LEN];
            header[0..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
            header[4..8].copy_from_slice(&crc32(payload).to_be_bytes());
            write_parts(w, &header, payload)?;
        }
        Some(trace) => {
            let ext = encode_trace_ext(trace);
            let ext_len = (ext.len() as u16).to_be_bytes();
            // The checksum covers ext_len ‖ ext ‖ payload, fed through the
            // incremental CRC so the hot path never concatenates buffers.
            let mut crc = crc32_begin();
            crc = crc32_feed(crc, &ext_len);
            crc = crc32_feed(crc, &ext);
            crc = crc32_feed(crc, payload);
            // Header, ext_len, and the trace TLV go out as one stack
            // buffer, keeping the write count identical to plain frames.
            let mut head = [0u8; FRAME_HEADER_LEN + 2 + TRACE_EXT_LEN];
            head[0..4].copy_from_slice(&((payload.len() as u32) | FLAG_EXT).to_be_bytes());
            head[4..8].copy_from_slice(&crc32_finish(crc).to_be_bytes());
            head[8..10].copy_from_slice(&ext_len);
            head[10..].copy_from_slice(&ext);
            write_parts(w, &head, payload)?;
        }
    }
    w.flush().map_err(FrameError::Io)
}

/// Reads exactly `buf.len()` bytes. `at_boundary` selects how EOF before
/// the first byte is classified: an orderly close between frames, or a
/// torn frame.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Corrupt(format!(
                        "torn frame: eof after {filled} of {} bytes",
                        buf.len()
                    )))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame from `r`, verifying length bound and checksum and
/// discarding any extension metadata.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    read_frame_ext(r).map(|(payload, _)| payload)
}

/// Reads one frame, returning the payload plus decoded extension
/// metadata. Plain (unflagged) frames decode exactly as before with a
/// default [`FrameMeta`]; unknown TLV types in the extension are skipped
/// and counted, not rejected.
pub fn read_frame_ext(r: &mut impl Read) -> Result<(Vec<u8>, FrameMeta), FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exact_or(r, &mut header, true)?;
    let len_word = u32::from_be_bytes(header[0..4].try_into().unwrap());
    let want_crc = u32::from_be_bytes(header[4..8].try_into().unwrap());
    let len = len_word & !FLAG_EXT;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    if len_word & FLAG_EXT == 0 {
        let mut payload = vec![0u8; len as usize];
        read_exact_or(r, &mut payload, false)?;
        let got_crc = crc32(&payload);
        if got_crc != want_crc {
            return Err(FrameError::Corrupt(format!(
                "checksum mismatch: header {want_crc:#010x}, payload {got_crc:#010x}"
            )));
        }
        return Ok((payload, FrameMeta::default()));
    }
    let mut ext_len_buf = [0u8; 2];
    read_exact_or(r, &mut ext_len_buf, false)?;
    let ext_len = u16::from_be_bytes(ext_len_buf);
    if ext_len > MAX_EXT_LEN {
        return Err(FrameError::Corrupt(format!(
            "extension length {ext_len} exceeds maximum {MAX_EXT_LEN}"
        )));
    }
    // A trace-only ext (the overwhelmingly common case) fits a small
    // stack buffer — zeroing MAX_EXT_LEN bytes per frame would cost more
    // than the rest of the decode. Oversized exts (forward-compat TLVs)
    // take the heap path. The incremental CRC sees ext_len ‖ ext ‖
    // payload exactly as the writer summed it, with no concatenation.
    let mut small = [0u8; 64];
    let mut big = Vec::new();
    let ext: &mut [u8] = if ext_len as usize <= small.len() {
        &mut small[..ext_len as usize]
    } else {
        big.resize(ext_len as usize, 0);
        &mut big
    };
    read_exact_or(r, ext, false)?;
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, false)?;
    let mut crc = crc32_begin();
    crc = crc32_feed(crc, &ext_len_buf);
    crc = crc32_feed(crc, ext);
    crc = crc32_feed(crc, &payload);
    let got_crc = crc32_finish(crc);
    if got_crc != want_crc {
        return Err(FrameError::Corrupt(format!(
            "checksum mismatch: header {want_crc:#010x}, frame {got_crc:#010x}"
        )));
    }
    let meta = parse_ext(ext)?;
    Ok((payload, meta))
}

fn parse_ext(ext: &[u8]) -> Result<FrameMeta, FrameError> {
    let mut meta = FrameMeta::default();
    let mut i = 0usize;
    while i < ext.len() {
        if i + 2 > ext.len() {
            return Err(FrameError::Corrupt("truncated TLV header in extension".to_string()));
        }
        let tlv_type = ext[i];
        let tlv_len = ext[i + 1] as usize;
        i += 2;
        if i + tlv_len > ext.len() {
            return Err(FrameError::Corrupt(format!(
                "TLV type {tlv_type} length {tlv_len} overruns extension"
            )));
        }
        let value = &ext[i..i + tlv_len];
        i += tlv_len;
        match tlv_type {
            // A trace TLV with an unexpected length is treated as unknown
            // (a future revision may grow the context).
            EXT_TRACE if tlv_len == 17 => {
                meta.trace = Some(TraceContext {
                    trace_id: u64::from_be_bytes(value[0..8].try_into().unwrap()),
                    span_id: u64::from_be_bytes(value[8..16].try_into().unwrap()),
                    sampled: value[16] & 1 == 1,
                });
            }
            _ => {
                meta.unknown_exts += 1;
                UNKNOWN_EXT_SKIPPED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn encode(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn round_trip() {
        let payloads: [&[u8]; 4] = [b"", b"x", b"hello velox", &[0u8; 4096]];
        for payload in payloads {
            let buf = encode(payload);
            assert_eq!(buf.len(), FRAME_HEADER_LEN + payload.len());
            let got = read_frame(&mut Cursor::new(&buf)).unwrap();
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn back_to_back_frames_then_orderly_close() {
        let mut buf = encode(b"first");
        buf.extend(encode(b"second"));
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"first");
        assert_eq!(read_frame(&mut cur).unwrap(), b"second");
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }

    #[test]
    fn bit_flip_is_corrupt() {
        let mut buf = encode(b"payload under test");
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        match read_frame(&mut Cursor::new(&buf)) {
            Err(FrameError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_corrupt_not_closed() {
        let buf = encode(b"truncated in flight");
        let cut = &buf[..buf.len() - 5];
        assert!(matches!(read_frame(&mut Cursor::new(cut)), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(read_frame(&mut Cursor::new(&buf)), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn writer_refuses_oversized_payload() {
        let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut sink = Vec::new();
        assert!(matches!(write_frame(&mut sink, &huge), Err(FrameError::TooLarge(_))));
        assert!(sink.is_empty(), "nothing may reach the wire on refusal");
    }

    fn test_ctx() -> TraceContext {
        TraceContext {
            trace_id: 0x1122_3344_5566_7788,
            span_id: 0x99aa_bbcc_ddee_ff00,
            sampled: true,
        }
    }

    #[test]
    fn traced_frame_round_trips_context_and_payload() {
        let ctx = test_ctx();
        let mut buf = Vec::new();
        write_frame_ext(&mut buf, b"payload", Some(&ctx)).unwrap();
        let (payload, meta) = read_frame_ext(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(payload, b"payload");
        assert_eq!(meta.trace, Some(ctx));
        assert_eq!(meta.unknown_exts, 0);
    }

    #[test]
    fn untraced_frame_is_byte_identical_to_legacy_format() {
        let payload = b"legacy wire bytes";
        let mut via_ext = Vec::new();
        write_frame_ext(&mut via_ext, payload, None).unwrap();
        // Hand-build the pre-extension encoding.
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        legacy.extend_from_slice(&crc32(payload).to_be_bytes());
        legacy.extend_from_slice(payload);
        assert_eq!(via_ext, legacy);
        // And an ext-aware reader decodes it with empty metadata.
        let (got, meta) = read_frame_ext(&mut Cursor::new(&legacy)).unwrap();
        assert_eq!(got, payload);
        assert_eq!(meta, FrameMeta::default());
    }

    #[test]
    fn unknown_tlv_types_are_skipped_and_counted() {
        // Hand-build a frame whose extension holds an unknown TLV followed
        // by a valid trace TLV: the reader must skip the former and still
        // decode the latter.
        let ctx = test_ctx();
        let payload = b"interop";
        let mut ext = vec![0xee, 3, 1, 2, 3]; // unknown type 0xee, 3 bytes
        let mut traced = Vec::new();
        write_frame_ext(&mut traced, payload, Some(&ctx)).unwrap();
        ext.extend_from_slice(&traced[FRAME_HEADER_LEN + 2..FRAME_HEADER_LEN + 2 + 19]);
        let mut covered = Vec::new();
        covered.extend_from_slice(&(ext.len() as u16).to_be_bytes());
        covered.extend_from_slice(&ext);
        covered.extend_from_slice(payload);
        let mut frame = Vec::new();
        frame.extend_from_slice(&((payload.len() as u32) | FLAG_EXT).to_be_bytes());
        frame.extend_from_slice(&crc32(&covered).to_be_bytes());
        frame.extend_from_slice(&covered);

        let before = unknown_ext_skipped_total();
        let (got, meta) = read_frame_ext(&mut Cursor::new(&frame)).unwrap();
        assert_eq!(got, payload);
        assert_eq!(meta.trace, Some(ctx), "known TLV after unknown one must still decode");
        assert_eq!(meta.unknown_exts, 1);
        assert!(unknown_ext_skipped_total() > before);
    }

    #[test]
    fn bit_flip_in_extension_is_corrupt() {
        let mut buf = Vec::new();
        write_frame_ext(&mut buf, b"guarded", Some(&test_ctx())).unwrap();
        // Flip a bit inside the trace_id bytes (after header + ext_len + TL).
        buf[FRAME_HEADER_LEN + 2 + 2] ^= 0x01;
        match read_frame_ext(&mut Cursor::new(&buf)) {
            Err(FrameError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn oversized_extension_length_rejected() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&FLAG_EXT.to_be_bytes()); // payload len 0
        frame.extend_from_slice(&0u32.to_be_bytes());
        frame.extend_from_slice(&(MAX_EXT_LEN + 1).to_be_bytes());
        assert!(matches!(read_frame_ext(&mut Cursor::new(&frame)), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn truncated_tlv_is_corrupt_not_panic() {
        // Extension of one byte: a TLV header needs two.
        let ext = [0x07u8];
        let mut covered = Vec::new();
        covered.extend_from_slice(&1u16.to_be_bytes());
        covered.extend_from_slice(&ext);
        let mut frame = Vec::new();
        frame.extend_from_slice(&FLAG_EXT.to_be_bytes());
        frame.extend_from_slice(&crc32(&covered).to_be_bytes());
        frame.extend_from_slice(&covered);
        assert!(matches!(read_frame_ext(&mut Cursor::new(&frame)), Err(FrameError::Corrupt(_))));
    }
}
