//! RPC message set and binary wire encoding.
//!
//! One frame carries one message. The payload is a `u8` tag followed by
//! big-endian fixed-width fields; vectors are length-prefixed (`u32`
//! count). Shipped log records use the WAL's own payload order
//! (`timestamp, uid, item_id, y` — see `velox-storage::wal`), so a record
//! read back from disk and a record on the wire are byte-identical.
//!
//! The RPC set is the paper's serving interface plus the replication
//! plane: `Predict` / `Observe` / `FetchWeights` for the model, `ShipLog`
//! / `PullLog` for WAL log shipping, `SeedItems` / `PutWeights` for the
//! management plane, and `Health` for liveness probes.

use velox_storage::Observation;

/// Wire tag values for [`Request`] variants.
mod req_tag {
    pub const PREDICT: u8 = 1;
    pub const OBSERVE: u8 = 2;
    pub const FETCH_WEIGHTS: u8 = 3;
    pub const SHIP_LOG: u8 = 4;
    pub const PULL_LOG: u8 = 5;
    pub const SEED_ITEMS: u8 = 6;
    pub const PUT_WEIGHTS: u8 = 7;
    pub const HEALTH: u8 = 8;
}

/// Wire tag values for [`Response`] variants.
mod resp_tag {
    pub const PREDICTED: u8 = 1;
    pub const OBSERVED: u8 = 2;
    pub const WEIGHTS: u8 = 3;
    pub const LOG: u8 = 4;
    pub const OK: u8 = 5;
    pub const ERROR: u8 = 6;
}

/// Why a node refused a request (carried in [`Response::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// No live replica can serve the key (degrade or retry elsewhere).
    Unavailable,
    /// The request was malformed or addressed to the wrong node.
    BadRequest,
    /// The node hit an internal failure (e.g. its WAL append failed).
    Internal,
    /// The server shed the connection before dispatch (accept queue
    /// full). Nothing was applied; retry after backoff.
    Overloaded,
}

impl ErrorCode {
    fn encode(self) -> u8 {
        match self {
            ErrorCode::Unavailable => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Internal => 3,
            ErrorCode::Overloaded => 4,
        }
    }

    fn decode(v: u8) -> Result<Self, DecodeError> {
        match v {
            1 => Ok(ErrorCode::Unavailable),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::Internal),
            4 => Ok(ErrorCode::Overloaded),
            other => Err(DecodeError(format!("unknown error code {other}"))),
        }
    }
}

/// A request frame, client → node.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score `item_id` for `uid`. A node that does not own the user's
    /// partition forwards one hop to the owner unless `no_forward` is set
    /// (set on the forwarded leg to make loops impossible).
    Predict {
        /// User whose weight vector scores the item.
        uid: u64,
        /// Item to score.
        item_id: u64,
        /// Answer locally even if this node is not the owner.
        no_forward: bool,
    },
    /// Apply one online observation at the owning node.
    Observe {
        /// User whose model updates.
        uid: u64,
        /// Observed item.
        item_id: u64,
        /// Supervised label.
        y: f64,
        /// Apply locally even if this node is not the owner (failover
        /// writes and the forwarded leg).
        no_forward: bool,
        /// Caller-chosen observation id for exactly-once application: a
        /// node remembers recent ids and answers a replayed id with the
        /// original ack instead of a second weight update. `0` opts out.
        obs_id: u64,
    },
    /// Management-plane read of a user's current weights.
    FetchWeights {
        /// User to look up.
        uid: u64,
    },
    /// Replication plane: the owner ships acknowledged log records to a
    /// replica, which applies and persists them.
    ShipLog {
        /// Acknowledged records in owner log order.
        records: Vec<Observation>,
    },
    /// Recovery plane: fetch every log record with `timestamp ≥ from_ts`
    /// that this node holds (its own writes plus records shipped to it).
    PullLog {
        /// Inclusive lower bound on record timestamps.
        from_ts: u64,
    },
    /// Management plane: install item feature vectors (full copy).
    SeedItems {
        /// `(item_id, features)` pairs.
        entries: Vec<(u64, Vec<f64>)>,
    },
    /// Management plane: install a user's weight vector directly.
    PutWeights {
        /// User to install.
        uid: u64,
        /// The weight vector.
        w: Vec<f64>,
    },
    /// Liveness probe.
    Health,
}

/// A response frame, node → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Predict`].
    Predicted {
        /// The score `wᵤ·x`.
        score: f64,
        /// Node that computed the score.
        node: u32,
        /// True when the request took the forwarding hop to the owner.
        forwarded: bool,
        /// True when the user had no weights and the zero prior scored.
        cold_start: bool,
    },
    /// Answer to [`Request::Observe`]: the acknowledgement.
    Observed {
        /// Node that applied the update.
        node: u32,
        /// Logical timestamp the owner assigned to the record.
        ts: u64,
        /// Replicas the record was shipped to before this ack.
        shipped_to: u32,
    },
    /// Answer to [`Request::FetchWeights`].
    Weights {
        /// The vector, or `None` for a never-observed user.
        w: Option<Vec<f64>>,
    },
    /// Answer to [`Request::PullLog`].
    Log {
        /// Matching records in timestamp order.
        records: Vec<Observation>,
    },
    /// Generic success (ship, seed, put, health).
    Ok,
    /// The request failed at the node.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A message payload that could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rpc decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_vec_f64(buf: &mut Vec<u8>, v: &[f64]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_f64(buf, x);
    }
}

fn put_observation(buf: &mut Vec<u8>, obs: &Observation) {
    put_u64(buf, obs.timestamp);
    put_u64(buf, obs.uid);
    put_u64(buf, obs.item_id);
    put_f64(buf, obs.y);
}

/// Bounded cursor over a payload; every read is checked.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.u8()? != 0)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Checked element count: rejects counts whose encoding could not fit
    /// in the remaining payload (corrupt counts would otherwise allocate).
    fn count(&mut self, elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes) > self.buf.len() - self.pos {
            return Err(DecodeError(format!("element count {n} exceeds payload")));
        }
        Ok(n)
    }

    fn vec_f64(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.count(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn observation(&mut self) -> Result<Observation, DecodeError> {
        Ok(Observation {
            timestamp: self.u64()?,
            uid: self.u64()?,
            item_id: self.u64()?,
            y: self.f64()?,
        })
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Request {
    /// Serializes the request to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Request::Predict { uid, item_id, no_forward } => {
                buf.push(req_tag::PREDICT);
                put_u64(&mut buf, *uid);
                put_u64(&mut buf, *item_id);
                buf.push(*no_forward as u8);
            }
            Request::Observe { uid, item_id, y, no_forward, obs_id } => {
                buf.push(req_tag::OBSERVE);
                put_u64(&mut buf, *uid);
                put_u64(&mut buf, *item_id);
                put_f64(&mut buf, *y);
                buf.push(*no_forward as u8);
                put_u64(&mut buf, *obs_id);
            }
            Request::FetchWeights { uid } => {
                buf.push(req_tag::FETCH_WEIGHTS);
                put_u64(&mut buf, *uid);
            }
            Request::ShipLog { records } => {
                buf.push(req_tag::SHIP_LOG);
                put_u32(&mut buf, records.len() as u32);
                for rec in records {
                    put_observation(&mut buf, rec);
                }
            }
            Request::PullLog { from_ts } => {
                buf.push(req_tag::PULL_LOG);
                put_u64(&mut buf, *from_ts);
            }
            Request::SeedItems { entries } => {
                buf.push(req_tag::SEED_ITEMS);
                put_u32(&mut buf, entries.len() as u32);
                for (item_id, x) in entries {
                    put_u64(&mut buf, *item_id);
                    put_vec_f64(&mut buf, x);
                }
            }
            Request::PutWeights { uid, w } => {
                buf.push(req_tag::PUT_WEIGHTS);
                put_u64(&mut buf, *uid);
                put_vec_f64(&mut buf, w);
            }
            Request::Health => buf.push(req_tag::HEALTH),
        }
        buf
    }

    /// Parses a frame payload into a request.
    pub fn decode(buf: &[u8]) -> Result<Request, DecodeError> {
        let mut c = Cursor::new(buf);
        let req = match c.u8()? {
            req_tag::PREDICT => {
                Request::Predict { uid: c.u64()?, item_id: c.u64()?, no_forward: c.bool()? }
            }
            req_tag::OBSERVE => Request::Observe {
                uid: c.u64()?,
                item_id: c.u64()?,
                y: c.f64()?,
                no_forward: c.bool()?,
                obs_id: c.u64()?,
            },
            req_tag::FETCH_WEIGHTS => Request::FetchWeights { uid: c.u64()? },
            req_tag::SHIP_LOG => {
                let n = c.count(32)?;
                let records = (0..n).map(|_| c.observation()).collect::<Result<_, _>>()?;
                Request::ShipLog { records }
            }
            req_tag::PULL_LOG => Request::PullLog { from_ts: c.u64()? },
            req_tag::SEED_ITEMS => {
                let n = c.count(12)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let item_id = c.u64()?;
                    entries.push((item_id, c.vec_f64()?));
                }
                Request::SeedItems { entries }
            }
            req_tag::PUT_WEIGHTS => Request::PutWeights { uid: c.u64()?, w: c.vec_f64()? },
            req_tag::HEALTH => Request::Health,
            other => return Err(DecodeError(format!("unknown request tag {other}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Response::Predicted { score, node, forwarded, cold_start } => {
                buf.push(resp_tag::PREDICTED);
                put_f64(&mut buf, *score);
                put_u32(&mut buf, *node);
                buf.push(*forwarded as u8);
                buf.push(*cold_start as u8);
            }
            Response::Observed { node, ts, shipped_to } => {
                buf.push(resp_tag::OBSERVED);
                put_u32(&mut buf, *node);
                put_u64(&mut buf, *ts);
                put_u32(&mut buf, *shipped_to);
            }
            Response::Weights { w } => {
                buf.push(resp_tag::WEIGHTS);
                match w {
                    Some(w) => {
                        buf.push(1);
                        put_vec_f64(&mut buf, w);
                    }
                    None => buf.push(0),
                }
            }
            Response::Log { records } => {
                buf.push(resp_tag::LOG);
                put_u32(&mut buf, records.len() as u32);
                for rec in records {
                    put_observation(&mut buf, rec);
                }
            }
            Response::Ok => buf.push(resp_tag::OK),
            Response::Error { code, message } => {
                buf.push(resp_tag::ERROR);
                buf.push(code.encode());
                let bytes = message.as_bytes();
                put_u32(&mut buf, bytes.len() as u32);
                buf.extend_from_slice(bytes);
            }
        }
        buf
    }

    /// Parses a frame payload into a response.
    pub fn decode(buf: &[u8]) -> Result<Response, DecodeError> {
        let mut c = Cursor::new(buf);
        let resp = match c.u8()? {
            resp_tag::PREDICTED => Response::Predicted {
                score: c.f64()?,
                node: c.u32()?,
                forwarded: c.bool()?,
                cold_start: c.bool()?,
            },
            resp_tag::OBSERVED => {
                Response::Observed { node: c.u32()?, ts: c.u64()?, shipped_to: c.u32()? }
            }
            resp_tag::WEIGHTS => {
                let present = c.bool()?;
                Response::Weights { w: if present { Some(c.vec_f64()?) } else { None } }
            }
            resp_tag::LOG => {
                let n = c.count(32)?;
                let records = (0..n).map(|_| c.observation()).collect::<Result<_, _>>()?;
                Response::Log { records }
            }
            resp_tag::OK => Response::Ok,
            resp_tag::ERROR => {
                let code = ErrorCode::decode(c.u8()?)?;
                let n = c.count(1)?;
                let message = String::from_utf8(c.take(n)?.to_vec())
                    .map_err(|_| DecodeError("error message is not utf-8".into()))?;
                Response::Error { code, message }
            }
            other => return Err(DecodeError(format!("unknown response tag {other}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(ts: u64) -> Observation {
        Observation { uid: ts * 7, item_id: ts * 13, y: ts as f64 * 0.5, timestamp: ts }
    }

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Predict { uid: 1, item_id: 2, no_forward: false },
            Request::Observe { uid: 3, item_id: 4, y: -1.5, no_forward: true, obs_id: 77 },
            Request::FetchWeights { uid: u64::MAX },
            Request::ShipLog { records: vec![obs(1), obs(2), obs(3)] },
            Request::ShipLog { records: vec![] },
            Request::PullLog { from_ts: 42 },
            Request::SeedItems { entries: vec![(9, vec![1.0, 2.0]), (10, vec![])] },
            Request::PutWeights { uid: 5, w: vec![0.25, -0.5, 1e300] },
            Request::Health,
        ];
        for req in cases {
            let buf = req.encode();
            assert_eq!(Request::decode(&buf).unwrap(), req, "round trip failed");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Predicted { score: 0.75, node: 2, forwarded: true, cold_start: false },
            Response::Observed { node: 0, ts: 99, shipped_to: 2 },
            Response::Weights { w: Some(vec![1.0, 2.0, 3.0]) },
            Response::Weights { w: None },
            Response::Log { records: vec![obs(5)] },
            Response::Ok,
            Response::Error { code: ErrorCode::Unavailable, message: "node 1 down".into() },
        ];
        for resp in cases {
            let buf = resp.encode();
            assert_eq!(Response::decode(&buf).unwrap(), resp, "round trip failed");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Request::Health.encode();
        buf.push(0);
        assert!(Request::decode(&buf).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let buf =
            Request::Observe { uid: 1, item_id: 2, y: 3.0, no_forward: false, obs_id: 9 }.encode();
        for cut in 0..buf.len() {
            assert!(Request::decode(&buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_count_rejected_without_allocation() {
        // ShipLog claiming u32::MAX records in a 9-byte payload.
        let mut buf = vec![4u8]; // SHIP_LOG
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(Request::decode(&buf).is_err());
    }
}
