//! RPC message set and binary wire encoding.
//!
//! One frame carries one message. The payload is a `u8` tag followed by
//! big-endian fixed-width fields; vectors are length-prefixed (`u32`
//! count). Shipped log records use the WAL's own payload order
//! (`timestamp, uid, item_id, y` — see `velox-storage::wal`), so a record
//! read back from disk and a record on the wire are byte-identical.
//!
//! The RPC set is the paper's serving interface plus the replication
//! plane: `Predict` / `Observe` / `FetchWeights` for the model, `ShipLog`
//! / `PullLog` for WAL log shipping, `SeedItems` / `PutWeights` for the
//! management plane, and `Health` for liveness probes.

use velox_cluster::{PartitionError, PartitionMap};
use velox_storage::Observation;

/// Wire tag values for [`Request`] variants.
mod req_tag {
    pub const PREDICT: u8 = 1;
    pub const OBSERVE: u8 = 2;
    pub const FETCH_WEIGHTS: u8 = 3;
    pub const SHIP_LOG: u8 = 4;
    pub const PULL_LOG: u8 = 5;
    pub const SEED_ITEMS: u8 = 6;
    pub const PUT_WEIGHTS: u8 = 7;
    pub const HEALTH: u8 = 8;
    pub const GET_MAP: u8 = 9;
    pub const INSTALL_MAP: u8 = 10;
    pub const PULL_PARTITION: u8 = 11;
    pub const PUSH_PARTITION: u8 = 12;
    pub const PULL_PARTITION_CHUNK: u8 = 13;
    pub const PREDICT_BATCH: u8 = 14;
}

/// Wire tag values for [`Response`] variants.
mod resp_tag {
    pub const PREDICTED: u8 = 1;
    pub const OBSERVED: u8 = 2;
    pub const WEIGHTS: u8 = 3;
    pub const LOG: u8 = 4;
    pub const OK: u8 = 5;
    pub const ERROR: u8 = 6;
    pub const MAP: u8 = 7;
    pub const PARTITION: u8 = 8;
    pub const PARTITION_CHUNK: u8 = 9;
    pub const PREDICTED_BATCH: u8 = 10;
}

/// Why a node refused a request (carried in [`Response::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// No live replica can serve the key (degrade or retry elsewhere).
    Unavailable,
    /// The request was malformed or addressed to the wrong node.
    BadRequest,
    /// The node hit an internal failure (e.g. its WAL append failed).
    Internal,
    /// The server shed the connection before dispatch (accept queue
    /// full). Nothing was applied; retry after backoff.
    Overloaded,
    /// The request was stamped with a stale partition-map epoch. Nothing
    /// was applied; refresh the map (`GetMap`) and retry.
    WrongEpoch,
}

impl ErrorCode {
    fn encode(self) -> u8 {
        match self {
            ErrorCode::Unavailable => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Internal => 3,
            ErrorCode::Overloaded => 4,
            ErrorCode::WrongEpoch => 5,
        }
    }

    fn decode(v: u8) -> Result<Self, DecodeError> {
        match v {
            1 => Ok(ErrorCode::Unavailable),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::Internal),
            4 => Ok(ErrorCode::Overloaded),
            5 => Ok(ErrorCode::WrongEpoch),
            other => Err(DecodeError(format!("unknown error code {other}"))),
        }
    }
}

/// A request frame, client → node.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score `item_id` for `uid`. A node that does not own the user's
    /// partition forwards one hop to the owner unless `no_forward` is set
    /// (set on the forwarded leg to make loops impossible).
    Predict {
        /// User whose weight vector scores the item.
        uid: u64,
        /// Item to score.
        item_id: u64,
        /// Answer locally even if this node is not the owner.
        no_forward: bool,
        /// Sender's partition-map epoch. A node whose map is at a
        /// different epoch rejects with [`ErrorCode::WrongEpoch`];
        /// `0` means "unstamped" and bypasses the check (server-internal
        /// hops and pre-membership tooling).
        epoch: u64,
    },
    /// Apply one online observation at the owning node.
    Observe {
        /// User whose model updates.
        uid: u64,
        /// Observed item.
        item_id: u64,
        /// Supervised label.
        y: f64,
        /// Apply locally even if this node is not the owner (failover
        /// writes and the forwarded leg).
        no_forward: bool,
        /// Caller-chosen observation id for exactly-once application: a
        /// node remembers recent ids and answers a replayed id with the
        /// original ack instead of a second weight update. `0` opts out.
        obs_id: u64,
        /// Sender's partition-map epoch (`0` = unstamped, skip the check).
        epoch: u64,
    },
    /// Management-plane read of a user's current weights.
    FetchWeights {
        /// User to look up.
        uid: u64,
    },
    /// Replication plane: the owner ships acknowledged log records to a
    /// replica, which applies and persists them.
    ShipLog {
        /// Acknowledged records in owner log order.
        records: Vec<Observation>,
        /// Observation id of each record, parallel to `records` (`0` for
        /// records without one). Replicas feed these into their dedupe
        /// window so an ack-lost retry that lands on a promoted replica
        /// after a cutover is suppressed, not applied twice.
        obs_ids: Vec<u64>,
    },
    /// Recovery plane: fetch every log record with `timestamp ≥ from_ts`
    /// that this node holds (its own writes plus records shipped to it).
    PullLog {
        /// Inclusive lower bound on record timestamps.
        from_ts: u64,
    },
    /// Management plane: install item feature vectors (full copy).
    SeedItems {
        /// `(item_id, features)` pairs.
        entries: Vec<(u64, Vec<f64>)>,
    },
    /// Management plane: install a user's weight vector directly.
    PutWeights {
        /// User to install.
        uid: u64,
        /// The weight vector.
        w: Vec<f64>,
    },
    /// Liveness probe.
    Health,
    /// Membership plane: fetch the node's current partition map.
    GetMap,
    /// Membership plane: install a partition map if it is newer than the
    /// node's current one (idempotent for replayed frames). This is the
    /// cutover frame: the payload carries the map followed by a TLV
    /// extension section; unknown TLV types are skipped so older nodes
    /// survive frames from newer tooling.
    InstallMap {
        /// The epoch-stamped map to adopt.
        map: PartitionMap,
    },
    /// Migration plane: snapshot every user weight vector this node holds
    /// for one virtual partition (the checkpoint stream source).
    PullPartition {
        /// The virtual partition to snapshot.
        partition: u32,
    },
    /// Migration plane: bulk-install user weight vectors streamed from a
    /// partition snapshot (the checkpoint stream sink).
    PushPartition {
        /// `(uid, weights)` pairs.
        entries: Vec<(u64, Vec<f64>)>,
    },
    /// Migration plane: one bounded step of a resumable checkpoint
    /// stream. The source returns every held `(uid, weights)` pair of
    /// `partition` with `uid ≥ cursor` in ascending uid order, stopping
    /// once the encoded entries would exceed `max_bytes` (at least one
    /// entry is always returned so oversized vectors cannot wedge the
    /// stream). Idempotent: re-sending the same cursor after a dropped or
    /// reset link replays the same chunk, which is how a migrator resumes
    /// mid-transfer without restarting from zero.
    PullPartitionChunk {
        /// The virtual partition being streamed.
        partition: u32,
        /// Exclusive-lower-bound resume point: only uids `≥ cursor` are
        /// returned. `0` starts the stream.
        cursor: u64,
        /// Soft bound on the encoded entry bytes per chunk (the in-flight
        /// budget; also bounds the response frame size).
        max_bytes: u32,
    },
    /// Serving plane: score many `(uid, item_id)` pairs in one frame —
    /// the serving tier's adaptive batches amortize the round trip this
    /// way. The sender groups pairs by owning node under its map; the
    /// receiver answers every pair from local state (no forwarding), in
    /// request order.
    PredictBatch {
        /// `(uid, item_id)` pairs to score.
        pairs: Vec<(u64, u64)>,
        /// Sender's partition-map epoch (`0` = unstamped, skip the
        /// check).
        epoch: u64,
    },
}

/// One `(uid, item_id)` outcome inside a [`Response::PredictedBatch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchScore {
    /// False when the node could not score the pair (e.g. the item is
    /// not seeded there); the caller retries it on the single-predict
    /// path for a precise error.
    pub ok: bool,
    /// The score `wᵤ·x` (`0.0` when `!ok`).
    pub score: f64,
    /// True when the user had no weights and the zero prior scored.
    pub cold_start: bool,
}

/// A response frame, node → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Predict`].
    Predicted {
        /// The score `wᵤ·x`.
        score: f64,
        /// Node that computed the score.
        node: u32,
        /// True when the request took the forwarding hop to the owner.
        forwarded: bool,
        /// True when the user had no weights and the zero prior scored.
        cold_start: bool,
    },
    /// Answer to [`Request::Observe`]: the acknowledgement.
    Observed {
        /// Node that applied the update.
        node: u32,
        /// Logical timestamp the owner assigned to the record.
        ts: u64,
        /// Replicas the record was shipped to before this ack.
        shipped_to: u32,
    },
    /// Answer to [`Request::FetchWeights`].
    Weights {
        /// The vector, or `None` for a never-observed user.
        w: Option<Vec<f64>>,
    },
    /// Answer to [`Request::PullLog`].
    Log {
        /// Matching records in timestamp order.
        records: Vec<Observation>,
    },
    /// Answer to [`Request::GetMap`].
    Map {
        /// The node's current partition map.
        map: PartitionMap,
    },
    /// Answer to [`Request::PullPartition`].
    Partition {
        /// `(uid, weights)` pairs held by the node for the partition.
        entries: Vec<(u64, Vec<f64>)>,
    },
    /// Answer to [`Request::PullPartitionChunk`]: one bounded chunk of
    /// the stream, integrity-checked end to end. The frame ends with a
    /// TLV extension section (empty today) so future senders can attach
    /// metadata without breaking old receivers.
    PartitionChunk {
        /// `(uid, weights)` pairs, ascending by uid, all `≥` the request
        /// cursor.
        entries: Vec<(u64, Vec<f64>)>,
        /// Cursor to present on the next pull (first uid not included in
        /// this chunk). Meaningless when `done`.
        next_cursor: u64,
        /// True when the stream is exhausted: no held uid of the
        /// partition is `≥ next_cursor`.
        done: bool,
        /// CRC-32 over the encoded `entries · next_cursor · done` fields
        /// (see [`chunk_crc`]) — a bit flip anywhere in the chunk body,
        /// cursor, or done flag fails verification before anything is
        /// applied.
        crc: u32,
    },
    /// Answer to [`Request::PredictBatch`]: one outcome per pair, in
    /// request order.
    PredictedBatch {
        /// Node that computed the scores.
        node: u32,
        /// Per-pair outcomes.
        scores: Vec<BatchScore>,
    },
    /// Generic success (ship, seed, put, install, push, health).
    Ok,
    /// The request failed at the node.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Wire cost of one `(uid, weights)` entry inside a chunk: `uid u64 ·
/// count u32 · count × f64`. The chunk budget and the source's stopping
/// rule both use this, so "no frame exceeds the bound" is checkable.
pub fn chunk_entry_bytes(dim: usize) -> usize {
    8 + 4 + 8 * dim
}

/// Integrity checksum for a [`Response::PartitionChunk`]: CRC-32 over the
/// canonically encoded `entries`, `next_cursor`, and `done` fields. The
/// cursor and done flag are covered on purpose — a bit flip that would
/// silently skip or rewind the stream fails the check the same way a
/// flipped weight byte does.
pub fn chunk_crc(entries: &[(u64, Vec<f64>)], next_cursor: u64, done: bool) -> u32 {
    let mut buf = Vec::with_capacity(16 + entries.len() * 16);
    put_entries(&mut buf, entries);
    put_u64(&mut buf, next_cursor);
    buf.push(done as u8);
    velox_storage::crc32(&buf)
}

/// Fixed encoding overhead of a [`Response::PartitionChunk`] beyond its
/// entries: response tag, entry count, `next_cursor`, `done`, `crc`, and
/// the empty TLV-section count. [`build_chunk`] charges this against the
/// byte budget so the *whole encoded frame* honours `max_bytes`, not
/// just the entry payload.
pub const CHUNK_ENVELOPE_BYTES: usize = 1 + 4 + 8 + 1 + 4 + 4;

/// Builds one bounded chunk of a partition checkpoint stream from
/// `entries`, the **uid-ascending** full entry set of the partition:
/// takes pairs with `uid ≥ cursor` while the encoded frame (envelope
/// included) stays within `max_bytes` (always at least one entry, so an
/// oversized vector cannot wedge the stream), and stamps the result with
/// its CRC.
pub fn build_chunk(entries: &[(u64, Vec<f64>)], cursor: u64, max_bytes: u32) -> Response {
    let start = entries.partition_point(|(uid, _)| *uid < cursor);
    let mut taken = 0usize;
    let mut size = CHUNK_ENVELOPE_BYTES;
    for (uid, w) in &entries[start..] {
        let cost = chunk_entry_bytes(w.len());
        if taken > 0 && size + cost > max_bytes as usize {
            break;
        }
        debug_assert!(*uid >= cursor);
        size += cost;
        taken += 1;
    }
    let chunk = &entries[start..start + taken];
    let done = start + taken == entries.len();
    let next_cursor = chunk.last().map_or(cursor, |(uid, _)| uid + 1);
    let crc = chunk_crc(chunk, next_cursor, done);
    Response::PartitionChunk { entries: chunk.to_vec(), next_cursor, done, crc }
}

/// Receiver-side admission check for a [`Response::PartitionChunk`],
/// run **before** any entry is applied: the CRC must match, uids must be
/// strictly ascending and `≥ cursor` (no duplicated or reordered chunk
/// can smuggle a repeat application), and the stream must advance
/// (`next_cursor` past every delivered uid and past `cursor` unless the
/// stream is done and empty). Returns the reason the chunk is
/// inadmissible, or `None` when it is safe to apply.
pub fn verify_chunk(
    cursor: u64,
    entries: &[(u64, Vec<f64>)],
    next_cursor: u64,
    done: bool,
    crc: u32,
) -> Option<String> {
    let expect = chunk_crc(entries, next_cursor, done);
    if crc != expect {
        return Some(format!("chunk crc mismatch: got {crc:#010x}, want {expect:#010x}"));
    }
    let mut prev: Option<u64> = None;
    for (uid, _) in entries {
        if *uid < cursor {
            return Some(format!("chunk replays uid {uid} below cursor {cursor}"));
        }
        if let Some(p) = prev {
            if *uid <= p {
                return Some(format!("chunk uids not strictly ascending at {uid}"));
            }
        }
        prev = Some(*uid);
    }
    if let Some(last) = prev {
        if next_cursor <= last {
            return Some(format!("next_cursor {next_cursor} does not pass delivered uid {last}"));
        }
    }
    if !done && entries.is_empty() {
        return Some("chunk is empty but the stream claims more data".into());
    }
    if !done && next_cursor <= cursor {
        return Some(format!(
            "stream does not advance: next_cursor {next_cursor} ≤ cursor {cursor}"
        ));
    }
    None
}

/// A message payload that could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rpc decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_vec_f64(buf: &mut Vec<u8>, v: &[f64]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_f64(buf, x);
    }
}

fn put_observation(buf: &mut Vec<u8>, obs: &Observation) {
    put_u64(buf, obs.timestamp);
    put_u64(buf, obs.uid);
    put_u64(buf, obs.item_id);
    put_f64(buf, obs.y);
}

fn put_entries(buf: &mut Vec<u8>, entries: &[(u64, Vec<f64>)]) {
    put_u32(buf, entries.len() as u32);
    for (id, v) in entries {
        put_u64(buf, *id);
        put_vec_f64(buf, v);
    }
}

/// Map wire layout: `epoch u64 · salt u64 · replication u32 · members
/// (count + u32 each) · partitions count · owners (u32 each) · replica
/// sets (count + u32 each, one set per partition)`. Decoding revalidates
/// through [`PartitionMap::from_parts`], so a corrupt frame can never
/// install a structurally broken map.
fn put_map(buf: &mut Vec<u8>, map: &PartitionMap) {
    put_u64(buf, map.epoch());
    put_u64(buf, map.salt());
    put_u32(buf, map.replication() as u32);
    put_u32(buf, map.members().len() as u32);
    for &m in map.members() {
        put_u32(buf, m as u32);
    }
    put_u32(buf, map.n_partitions());
    for p in 0..map.n_partitions() {
        put_u32(buf, map.owner_of_partition(p) as u32);
    }
    for p in 0..map.n_partitions() {
        let set = map.replicas_of_partition(p);
        put_u32(buf, set.len() as u32);
        for &n in set {
            put_u32(buf, n as u32);
        }
    }
}

/// Bounded cursor over a payload; every read is checked.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        // Canonical encoding only: anything but 0/1 is corruption, not a
        // creative truthy value (keeps re-encoding byte-exact for CRCs).
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError(format!("non-canonical bool byte {other:#04x}"))),
        }
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Checked element count: rejects counts whose encoding could not fit
    /// in the remaining payload (corrupt counts would otherwise allocate).
    fn count(&mut self, elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes) > self.buf.len() - self.pos {
            return Err(DecodeError(format!("element count {n} exceeds payload")));
        }
        Ok(n)
    }

    fn vec_f64(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.count(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn observation(&mut self) -> Result<Observation, DecodeError> {
        Ok(Observation {
            timestamp: self.u64()?,
            uid: self.u64()?,
            item_id: self.u64()?,
            y: self.f64()?,
        })
    }

    fn entries(&mut self) -> Result<Vec<(u64, Vec<f64>)>, DecodeError> {
        let n = self.count(12)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.u64()?;
            entries.push((id, self.vec_f64()?));
        }
        Ok(entries)
    }

    fn map(&mut self) -> Result<PartitionMap, DecodeError> {
        let epoch = self.u64()?;
        let salt = self.u64()?;
        let replication = self.u32()? as usize;
        let n_members = self.count(4)?;
        let members = (0..n_members)
            .map(|_| self.u32().map(|m| m as usize))
            .collect::<Result<Vec<_>, _>>()?;
        let n_parts = self.count(4)?;
        let owners =
            (0..n_parts).map(|_| self.u32().map(|o| o as usize)).collect::<Result<Vec<_>, _>>()?;
        let mut replicas = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let k = self.count(4)?;
            replicas
                .push((0..k).map(|_| self.u32().map(|r| r as usize)).collect::<Result<_, _>>()?);
        }
        PartitionMap::from_parts(epoch, salt, replication, members, owners, replicas)
            .map_err(|e: PartitionError| DecodeError(format!("invalid map: {e}")))
    }

    /// Skips a TLV extension section: `count u32`, then per entry a
    /// `type u8 · len u32 · len bytes` triple. Unknown types are legal
    /// (skipped); a length past the payload end is not.
    fn skip_tlvs(&mut self) -> Result<(), DecodeError> {
        let n = self.count(5)?;
        for _ in 0..n {
            let _ty = self.u8()?;
            let len = self.count(1)?;
            self.take(len)?;
        }
        Ok(())
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Request {
    /// Serializes the request to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Request::Predict { uid, item_id, no_forward, epoch } => {
                buf.push(req_tag::PREDICT);
                put_u64(&mut buf, *uid);
                put_u64(&mut buf, *item_id);
                buf.push(*no_forward as u8);
                put_u64(&mut buf, *epoch);
            }
            Request::Observe { uid, item_id, y, no_forward, obs_id, epoch } => {
                buf.push(req_tag::OBSERVE);
                put_u64(&mut buf, *uid);
                put_u64(&mut buf, *item_id);
                put_f64(&mut buf, *y);
                buf.push(*no_forward as u8);
                put_u64(&mut buf, *obs_id);
                put_u64(&mut buf, *epoch);
            }
            Request::FetchWeights { uid } => {
                buf.push(req_tag::FETCH_WEIGHTS);
                put_u64(&mut buf, *uid);
            }
            Request::ShipLog { records, obs_ids } => {
                buf.push(req_tag::SHIP_LOG);
                debug_assert_eq!(records.len(), obs_ids.len());
                put_u32(&mut buf, records.len() as u32);
                for (rec, id) in records.iter().zip(obs_ids) {
                    put_observation(&mut buf, rec);
                    put_u64(&mut buf, *id);
                }
            }
            Request::PullLog { from_ts } => {
                buf.push(req_tag::PULL_LOG);
                put_u64(&mut buf, *from_ts);
            }
            Request::SeedItems { entries } => {
                buf.push(req_tag::SEED_ITEMS);
                put_u32(&mut buf, entries.len() as u32);
                for (item_id, x) in entries {
                    put_u64(&mut buf, *item_id);
                    put_vec_f64(&mut buf, x);
                }
            }
            Request::PutWeights { uid, w } => {
                buf.push(req_tag::PUT_WEIGHTS);
                put_u64(&mut buf, *uid);
                put_vec_f64(&mut buf, w);
            }
            Request::Health => buf.push(req_tag::HEALTH),
            Request::GetMap => buf.push(req_tag::GET_MAP),
            Request::InstallMap { map } => {
                buf.push(req_tag::INSTALL_MAP);
                put_map(&mut buf, map);
                // Empty TLV extension section (see `Cursor::skip_tlvs`).
                put_u32(&mut buf, 0);
            }
            Request::PullPartition { partition } => {
                buf.push(req_tag::PULL_PARTITION);
                put_u32(&mut buf, *partition);
            }
            Request::PushPartition { entries } => {
                buf.push(req_tag::PUSH_PARTITION);
                put_entries(&mut buf, entries);
            }
            Request::PullPartitionChunk { partition, cursor, max_bytes } => {
                buf.push(req_tag::PULL_PARTITION_CHUNK);
                put_u32(&mut buf, *partition);
                put_u64(&mut buf, *cursor);
                put_u32(&mut buf, *max_bytes);
            }
            Request::PredictBatch { pairs, epoch } => {
                buf.push(req_tag::PREDICT_BATCH);
                put_u32(&mut buf, pairs.len() as u32);
                for (uid, item_id) in pairs {
                    put_u64(&mut buf, *uid);
                    put_u64(&mut buf, *item_id);
                }
                put_u64(&mut buf, *epoch);
            }
        }
        buf
    }

    /// Parses a frame payload into a request.
    pub fn decode(buf: &[u8]) -> Result<Request, DecodeError> {
        let mut c = Cursor::new(buf);
        let req = match c.u8()? {
            req_tag::PREDICT => Request::Predict {
                uid: c.u64()?,
                item_id: c.u64()?,
                no_forward: c.bool()?,
                epoch: c.u64()?,
            },
            req_tag::OBSERVE => Request::Observe {
                uid: c.u64()?,
                item_id: c.u64()?,
                y: c.f64()?,
                no_forward: c.bool()?,
                obs_id: c.u64()?,
                epoch: c.u64()?,
            },
            req_tag::FETCH_WEIGHTS => Request::FetchWeights { uid: c.u64()? },
            req_tag::SHIP_LOG => {
                let n = c.count(40)?;
                let mut records = Vec::with_capacity(n);
                let mut obs_ids = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(c.observation()?);
                    obs_ids.push(c.u64()?);
                }
                Request::ShipLog { records, obs_ids }
            }
            req_tag::PULL_LOG => Request::PullLog { from_ts: c.u64()? },
            req_tag::SEED_ITEMS => Request::SeedItems { entries: c.entries()? },
            req_tag::PUT_WEIGHTS => Request::PutWeights { uid: c.u64()?, w: c.vec_f64()? },
            req_tag::HEALTH => Request::Health,
            req_tag::GET_MAP => Request::GetMap,
            req_tag::INSTALL_MAP => {
                let map = c.map()?;
                c.skip_tlvs()?;
                Request::InstallMap { map }
            }
            req_tag::PULL_PARTITION => Request::PullPartition { partition: c.u32()? },
            req_tag::PUSH_PARTITION => Request::PushPartition { entries: c.entries()? },
            req_tag::PULL_PARTITION_CHUNK => Request::PullPartitionChunk {
                partition: c.u32()?,
                cursor: c.u64()?,
                max_bytes: c.u32()?,
            },
            req_tag::PREDICT_BATCH => {
                let n = c.count(16)?;
                let pairs =
                    (0..n).map(|_| Ok((c.u64()?, c.u64()?))).collect::<Result<_, DecodeError>>()?;
                Request::PredictBatch { pairs, epoch: c.u64()? }
            }
            other => return Err(DecodeError(format!("unknown request tag {other}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Response::Predicted { score, node, forwarded, cold_start } => {
                buf.push(resp_tag::PREDICTED);
                put_f64(&mut buf, *score);
                put_u32(&mut buf, *node);
                buf.push(*forwarded as u8);
                buf.push(*cold_start as u8);
            }
            Response::Observed { node, ts, shipped_to } => {
                buf.push(resp_tag::OBSERVED);
                put_u32(&mut buf, *node);
                put_u64(&mut buf, *ts);
                put_u32(&mut buf, *shipped_to);
            }
            Response::Weights { w } => {
                buf.push(resp_tag::WEIGHTS);
                match w {
                    Some(w) => {
                        buf.push(1);
                        put_vec_f64(&mut buf, w);
                    }
                    None => buf.push(0),
                }
            }
            Response::Log { records } => {
                buf.push(resp_tag::LOG);
                put_u32(&mut buf, records.len() as u32);
                for rec in records {
                    put_observation(&mut buf, rec);
                }
            }
            Response::Map { map } => {
                buf.push(resp_tag::MAP);
                put_map(&mut buf, map);
            }
            Response::Partition { entries } => {
                buf.push(resp_tag::PARTITION);
                put_entries(&mut buf, entries);
            }
            Response::PartitionChunk { entries, next_cursor, done, crc } => {
                buf.push(resp_tag::PARTITION_CHUNK);
                put_entries(&mut buf, entries);
                put_u64(&mut buf, *next_cursor);
                buf.push(*done as u8);
                put_u32(&mut buf, *crc);
                // Empty TLV extension section (see `Cursor::skip_tlvs`).
                put_u32(&mut buf, 0);
            }
            Response::PredictedBatch { node, scores } => {
                buf.push(resp_tag::PREDICTED_BATCH);
                put_u32(&mut buf, *node);
                put_u32(&mut buf, scores.len() as u32);
                for s in scores {
                    buf.push(s.ok as u8 | (s.cold_start as u8) << 1);
                    put_f64(&mut buf, s.score);
                }
            }
            Response::Ok => buf.push(resp_tag::OK),
            Response::Error { code, message } => {
                buf.push(resp_tag::ERROR);
                buf.push(code.encode());
                let bytes = message.as_bytes();
                put_u32(&mut buf, bytes.len() as u32);
                buf.extend_from_slice(bytes);
            }
        }
        buf
    }

    /// Parses a frame payload into a response.
    pub fn decode(buf: &[u8]) -> Result<Response, DecodeError> {
        let mut c = Cursor::new(buf);
        let resp = match c.u8()? {
            resp_tag::PREDICTED => Response::Predicted {
                score: c.f64()?,
                node: c.u32()?,
                forwarded: c.bool()?,
                cold_start: c.bool()?,
            },
            resp_tag::OBSERVED => {
                Response::Observed { node: c.u32()?, ts: c.u64()?, shipped_to: c.u32()? }
            }
            resp_tag::WEIGHTS => {
                let present = c.bool()?;
                Response::Weights { w: if present { Some(c.vec_f64()?) } else { None } }
            }
            resp_tag::LOG => {
                let n = c.count(32)?;
                let records = (0..n).map(|_| c.observation()).collect::<Result<_, _>>()?;
                Response::Log { records }
            }
            resp_tag::MAP => Response::Map { map: c.map()? },
            resp_tag::PARTITION => Response::Partition { entries: c.entries()? },
            resp_tag::PARTITION_CHUNK => {
                let entries = c.entries()?;
                let next_cursor = c.u64()?;
                let done = c.bool()?;
                let crc = c.u32()?;
                c.skip_tlvs()?;
                Response::PartitionChunk { entries, next_cursor, done, crc }
            }
            resp_tag::PREDICTED_BATCH => {
                let node = c.u32()?;
                let n = c.count(9)?;
                let scores = (0..n)
                    .map(|_| {
                        let flags = c.u8()?;
                        Ok(BatchScore {
                            ok: flags & 1 != 0,
                            score: c.f64()?,
                            cold_start: flags & 2 != 0,
                        })
                    })
                    .collect::<Result<_, DecodeError>>()?;
                Response::PredictedBatch { node, scores }
            }
            resp_tag::OK => Response::Ok,
            resp_tag::ERROR => {
                let code = ErrorCode::decode(c.u8()?)?;
                let n = c.count(1)?;
                let message = String::from_utf8(c.take(n)?.to_vec())
                    .map_err(|_| DecodeError("error message is not utf-8".into()))?;
                Response::Error { code, message }
            }
            other => return Err(DecodeError(format!("unknown response tag {other}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(ts: u64) -> Observation {
        Observation { uid: ts * 7, item_id: ts * 13, y: ts as f64 * 0.5, timestamp: ts }
    }

    fn sample_map() -> PartitionMap {
        PartitionMap::bootstrap(3, 2, 0xC0FFEE).unwrap().with_member(3).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Predict { uid: 1, item_id: 2, no_forward: false, epoch: 7 },
            Request::Observe {
                uid: 3,
                item_id: 4,
                y: -1.5,
                no_forward: true,
                obs_id: 77,
                epoch: 0,
            },
            Request::FetchWeights { uid: u64::MAX },
            Request::ShipLog { records: vec![obs(1), obs(2), obs(3)], obs_ids: vec![9, 0, 11] },
            Request::ShipLog { records: vec![], obs_ids: vec![] },
            Request::PullLog { from_ts: 42 },
            Request::SeedItems { entries: vec![(9, vec![1.0, 2.0]), (10, vec![])] },
            Request::PutWeights { uid: 5, w: vec![0.25, -0.5, 1e300] },
            Request::Health,
            Request::GetMap,
            Request::InstallMap { map: sample_map() },
            Request::PullPartition { partition: 17 },
            Request::PushPartition { entries: vec![(1, vec![0.5]), (2, vec![])] },
            Request::PullPartitionChunk { partition: 5, cursor: 1 << 40, max_bytes: 4096 },
            Request::PredictBatch { pairs: vec![(1, 2), (u64::MAX, 0), (1, 2)], epoch: 9 },
            Request::PredictBatch { pairs: vec![], epoch: 0 },
        ];
        for req in cases {
            let buf = req.encode();
            assert_eq!(Request::decode(&buf).unwrap(), req, "round trip failed");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Predicted { score: 0.75, node: 2, forwarded: true, cold_start: false },
            Response::Observed { node: 0, ts: 99, shipped_to: 2 },
            Response::Weights { w: Some(vec![1.0, 2.0, 3.0]) },
            Response::Weights { w: None },
            Response::Log { records: vec![obs(5)] },
            Response::Map { map: sample_map() },
            Response::Partition { entries: vec![(8, vec![1.0, -2.0])] },
            {
                let entries = vec![(8u64, vec![1.0, -2.0]), (11, vec![0.5])];
                let crc = chunk_crc(&entries, 12, false);
                Response::PartitionChunk { entries, next_cursor: 12, done: false, crc }
            },
            Response::PartitionChunk { entries: vec![], next_cursor: 0, done: true, crc: 7 },
            Response::PredictedBatch {
                node: 1,
                scores: vec![
                    BatchScore { ok: true, score: -0.25, cold_start: false },
                    BatchScore { ok: false, score: 0.0, cold_start: false },
                    BatchScore { ok: true, score: 0.0, cold_start: true },
                ],
            },
            Response::PredictedBatch { node: 0, scores: vec![] },
            Response::Ok,
            Response::Error { code: ErrorCode::WrongEpoch, message: "stale epoch 3".into() },
        ];
        for resp in cases {
            let buf = resp.encode();
            assert_eq!(Response::decode(&buf).unwrap(), resp, "round trip failed");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Request::Health.encode();
        buf.push(0);
        assert!(Request::decode(&buf).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let buf =
            Request::Observe { uid: 1, item_id: 2, y: 3.0, no_forward: false, obs_id: 9, epoch: 4 }
                .encode();
        for cut in 0..buf.len() {
            assert!(Request::decode(&buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_count_rejected_without_allocation() {
        // ShipLog claiming u32::MAX records in a 9-byte payload.
        let mut buf = vec![4u8]; // SHIP_LOG
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(Request::decode(&buf).is_err());
    }

    #[test]
    fn install_map_skips_unknown_tlvs() {
        // Rebuild the frame with a non-empty TLV tail: one unknown type.
        let map = sample_map();
        let mut buf = Request::InstallMap { map: map.clone() }.encode();
        buf.truncate(buf.len() - 4); // drop the empty TLV count
        buf.extend_from_slice(&1u32.to_be_bytes()); // one TLV
        buf.push(0xEE); // unknown type
        buf.extend_from_slice(&3u32.to_be_bytes()); // 3-byte value
        buf.extend_from_slice(&[1, 2, 3]);
        assert_eq!(Request::decode(&buf).unwrap(), Request::InstallMap { map });
    }

    /// uid-sorted sample partition: 6 entries of dim 2.
    fn chunk_entries() -> Vec<(u64, Vec<f64>)> {
        (0..6u64).map(|i| (i * 10 + 3, vec![i as f64, -(i as f64)])).collect()
    }

    #[test]
    fn build_chunk_respects_budget_and_resumes_idempotently() {
        let entries = chunk_entries();
        let per_entry = chunk_entry_bytes(2);
        // Budget for exactly two entries per chunk, envelope included.
        let budget = (CHUNK_ENVELOPE_BYTES + 2 * per_entry) as u32;
        let mut cursor = 0u64;
        let mut collected = Vec::new();
        let mut chunks = 0;
        loop {
            let Response::PartitionChunk { entries: got, next_cursor, done, crc } =
                build_chunk(&entries, cursor, budget)
            else {
                unreachable!()
            };
            assert!(verify_chunk(cursor, &got, next_cursor, done, crc).is_none());
            assert!(got.len() <= 2, "budget holds");
            let frame =
                Response::PartitionChunk { entries: got.clone(), next_cursor, done, crc }.encode();
            assert!(frame.len() <= budget as usize, "the whole encoded frame honours the budget");
            // Replaying the same cursor yields the identical chunk (the
            // resume path after a dropped link).
            assert_eq!(
                build_chunk(&entries, cursor, budget),
                Response::PartitionChunk { entries: got.clone(), next_cursor, done, crc }
            );
            collected.extend(got);
            chunks += 1;
            cursor = next_cursor;
            if done {
                break;
            }
        }
        assert_eq!(chunks, 3);
        assert_eq!(collected, entries, "stream reassembles the partition exactly");
    }

    #[test]
    fn build_chunk_never_wedges_on_oversized_entry() {
        let entries = vec![(1u64, vec![0.0; 100]), (2, vec![0.0; 100])];
        let Response::PartitionChunk { entries: got, done, .. } = build_chunk(&entries, 0, 16)
        else {
            unreachable!()
        };
        assert_eq!(got.len(), 1, "at least one entry always moves");
        assert!(!done);
    }

    #[test]
    fn verify_chunk_rejects_tampered_fields() {
        let entries = chunk_entries();
        let crc = chunk_crc(&entries, 54, true);
        assert!(verify_chunk(0, &entries, 54, true, crc).is_none());
        // Flipped CRC.
        assert!(verify_chunk(0, &entries, 54, true, crc ^ 1).is_some());
        // Tampered cursor (CRC covers it).
        assert!(verify_chunk(0, &entries, 55, true, crc).is_some());
        // Tampered done flag.
        assert!(verify_chunk(0, &entries, 54, false, crc).is_some());
        // Reordered entries fail even with a freshly computed CRC.
        let mut swapped = entries.clone();
        swapped.swap(0, 1);
        let crc2 = chunk_crc(&swapped, 54, true);
        assert!(verify_chunk(0, &swapped, 54, true, crc2).is_some());
        // Duplicated entry likewise.
        let mut duped = entries.clone();
        duped.insert(1, duped[0].clone());
        let crc3 = chunk_crc(&duped, 54, true);
        assert!(verify_chunk(0, &duped, 54, true, crc3).is_some());
        // Replay below the cursor is refused even when self-consistent.
        assert!(verify_chunk(100, &entries, 54, true, crc).is_some());
    }

    #[test]
    fn partition_chunk_skips_unknown_tlvs() {
        let entries = vec![(4u64, vec![1.5])];
        let crc = chunk_crc(&entries, 5, true);
        let resp = Response::PartitionChunk { entries, next_cursor: 5, done: true, crc };
        let mut buf = resp.encode();
        buf.truncate(buf.len() - 4); // drop the empty TLV count
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(0xAB); // unknown type
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[9, 9]);
        assert_eq!(Response::decode(&buf).unwrap(), resp);
    }

    #[test]
    fn install_map_rejects_structurally_invalid_map() {
        let mut buf = Request::InstallMap { map: sample_map() }.encode();
        // Flip a replica id inside the map body to a non-member (0xFF).
        let n = buf.len();
        buf[n - 6] = 0xFF;
        assert!(Request::decode(&buf).is_err(), "corrupt map must not install");
    }
}
