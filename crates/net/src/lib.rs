//! # velox-net
//!
//! A real TCP transport for the Velox cluster — std-only, no async
//! runtime, no external dependencies, consistent with the workspace's
//! hermetic build.
//!
//! The stack, bottom up:
//!
//! - [`frame`]: length-prefixed, CRC-32-checksummed frames (the WAL's
//!   checksum, re-exported from `velox-storage`).
//! - [`rpc`]: the message set — `Predict` / `Observe` / `FetchWeights`
//!   for serving, `ShipLog` / `PullLog` for WAL replication, plus the
//!   management plane — with a compact big-endian binary encoding.
//! - [`server`] / [`client`]: a blocking worker-pool server and a pooled
//!   client with per-request deadlines and reconnect-on-failure.
//! - [`node`]: one partition's state behind the RPC surface: weights,
//!   a full item-table copy, the local WAL, and log shipping.
//! - [`runtime`]: [`NetCluster`] — N nodes on loopback implementing
//!   `velox-cluster`'s `Transport` trait, with fault plans, replica
//!   failover, and WAL-log-shipping recovery over real sockets.
//!
//! The paper's claims this backs: request routing to the node owning
//! `wᵤ` (§3), low-latency serving over an RPC boundary, and durable
//! online updates that survive node loss via replication (§3, §8).

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod node;
pub mod rpc;
pub mod runtime;
pub mod server;

pub use client::{ChaosLink, ClientMetrics, NetClient, NetClientConfig, NetError, RetryMode};
pub use frame::{
    read_frame, read_frame_ext, unknown_ext_skipped_total, write_frame, write_frame_ext,
    FrameError, FrameMeta, EXT_TRACE, FLAG_EXT, FRAME_HEADER_LEN, MAX_EXT_LEN, MAX_FRAME_LEN,
};
pub use node::{NodeConfig, NodeMetrics, NodeServer, NodeState, PeerTable};
pub use rpc::{
    build_chunk, chunk_crc, chunk_entry_bytes, verify_chunk, BatchScore, DecodeError, ErrorCode,
    Request, Response, CHUNK_ENVELOPE_BYTES,
};
pub use runtime::{NetCluster, NetClusterConfig};
pub use server::{Handler, NetServer, NetServerConfig, RpcContext};
