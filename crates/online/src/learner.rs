//! Per-user online weight updates — Eq. (2) of the paper, two ways.
//!
//! ```text
//! wᵤ ← (F(X, θ)ᵀ F(X, θ) + λIₙ)⁻¹ F(X, θ)ᵀ Y
//! ```
//!
//! **Naive** (the paper's measured prototype): keep the sufficient
//! statistics `(FᵀF, FᵀY)` and Cholesky-solve from scratch on every
//! observation — O(d²) accumulation + O(d³) solve.
//!
//! **Sherman–Morrison** (the optimization the paper points to): maintain
//! `(FᵀF + λI)⁻¹` directly under rank-one updates — O(d²) per observation,
//! and the inverse doubles as the uncertainty estimate the bandit layer
//! needs.
//!
//! Warm starts: after offline training, a user's weights come back from the
//! batch job without their raw history. [`UserOnlineModel::from_prior`]
//! encodes those weights as the ridge prior — with `b = λ·w₀` and `A = λI`,
//! the solution of the empty problem is exactly `w₀`, and subsequent
//! observations blend data evidence with the prior in the standard Bayesian
//! linear-regression way.

use velox_linalg::{IncrementalRidge, LinalgError, RidgeProblem, Vector};

/// Which algorithm maintains the user weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// Accumulate `(FᵀF, FᵀY)`; full Cholesky re-solve per update (O(d³)).
    Naive,
    /// Rank-one maintenance of the inverse (O(d²) per update).
    ShermanMorrison,
}

/// One user's online model state.
#[derive(Debug, Clone)]
pub struct UserOnlineModel {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Naive {
        problem: RidgeProblem,
        /// Weights re-solved after the most recent observation. For an
        /// empty problem with a prior, equals the prior weights.
        weights: Vector,
    },
    Incremental(IncrementalRidge),
}

impl UserOnlineModel {
    /// Creates a cold-start model of dimension `d` (weights start at zero).
    pub fn new(d: usize, lambda: f64, strategy: UpdateStrategy) -> Self {
        let inner = match strategy {
            UpdateStrategy::Naive => {
                Inner::Naive { problem: RidgeProblem::new(d, lambda), weights: Vector::zeros(d) }
            }
            UpdateStrategy::ShermanMorrison => Inner::Incremental(IncrementalRidge::new(d, lambda)),
        };
        UserOnlineModel { inner }
    }

    /// Creates a warm-start model whose initial solution equals `prior`
    /// (typically the user's weights from the last offline retrain, or the
    /// population-mean bootstrap for new users). Implemented by setting the
    /// moment vector to `λ·prior`, which makes the ridge prior mean equal
    /// to `prior`.
    pub fn from_prior(prior: &Vector, lambda: f64, strategy: UpdateStrategy) -> Self {
        let d = prior.len();
        let mut m = Self::new(d, lambda, strategy);
        let mut b = prior.clone();
        b.scale(lambda);
        match &mut m.inner {
            Inner::Naive { problem, weights } => {
                // RidgeProblem doesn't expose b mutation; rebuild through a
                // single synthetic observation would distort the Gram
                // matrix, so we instead keep the prior in `weights` and
                // fold it in lazily: replace the problem with one seeded by
                // the prior moments.
                *problem = RidgeProblem::with_prior_moments(d, lambda, b);
                *weights = prior.clone();
            }
            Inner::Incremental(inc) => {
                inc.reset_moments(b).expect("dimension-consistent prior");
            }
        }
        m
    }

    /// The strategy in use (derived from the state representation).
    pub fn strategy(&self) -> UpdateStrategy {
        match &self.inner {
            Inner::Naive { .. } => UpdateStrategy::Naive,
            Inner::Incremental(_) => UpdateStrategy::ShermanMorrison,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        match &self.inner {
            Inner::Naive { problem, .. } => problem.dim(),
            Inner::Incremental(inc) => inc.dim(),
        }
    }

    /// Observations folded in since creation.
    pub fn n_obs(&self) -> usize {
        match &self.inner {
            Inner::Naive { problem, .. } => problem.n_obs(),
            Inner::Incremental(inc) => inc.n_obs(),
        }
    }

    /// Current weight vector.
    pub fn weights(&self) -> &Vector {
        match &self.inner {
            Inner::Naive { weights, .. } => weights,
            Inner::Incremental(inc) => inc.weights(),
        }
    }

    /// Predicted score `wᵀx`.
    pub fn predict(&self, x: &Vector) -> Result<f64, LinalgError> {
        self.weights().dot(x)
    }

    /// Folds in one observation and refreshes the weights. This is the
    /// operation Figure 3 times.
    pub fn observe(&mut self, x: &Vector, y: f64) -> Result<(), LinalgError> {
        match &mut self.inner {
            Inner::Naive { problem, weights } => {
                problem.observe(x, y)?;
                *weights = problem.solve()?;
                Ok(())
            }
            Inner::Incremental(inc) => inc.observe(x, y),
        }
    }

    /// Predictive variance proxy `xᵀ(FᵀF + λI)⁻¹x` — the uncertainty score
    /// the bandit layer adds to predictions. O(d²) for Sherman–Morrison
    /// (cached inverse); O(d³) for naive (fresh factorization), one more
    /// reason the serving path prefers the incremental strategy.
    pub fn variance(&self, x: &Vector) -> Result<f64, LinalgError> {
        match &self.inner {
            Inner::Naive { problem, .. } => {
                let mut a = problem.gram().clone();
                a.add_scaled_identity(problem.lambda())?;
                let ch = velox_linalg::Cholesky::factor(&a)?;
                let z = ch.solve(x)?;
                x.dot(&z)
            }
            Inner::Incremental(inc) => inc.variance(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_stream(d: usize, n: usize, seed: u64) -> Vec<(Vector, f64)> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n)
            .map(|_| {
                let x = Vector::from_vec((0..d).map(|_| next()).collect());
                let y = next() * 2.0;
                (x, y)
            })
            .collect()
    }

    #[test]
    fn strategies_agree() {
        let d = 6;
        let mut naive = UserOnlineModel::new(d, 0.5, UpdateStrategy::Naive);
        let mut sm = UserOnlineModel::new(d, 0.5, UpdateStrategy::ShermanMorrison);
        for (x, y) in obs_stream(d, 100, 42) {
            naive.observe(&x, y).unwrap();
            sm.observe(&x, y).unwrap();
            let diff = naive.weights().sub(sm.weights()).unwrap().norm2();
            assert!(diff < 1e-7, "strategies diverged: {diff}");
        }
        assert_eq!(naive.n_obs(), 100);
        assert_eq!(sm.n_obs(), 100);
    }

    #[test]
    fn cold_start_weights_are_zero() {
        for s in [UpdateStrategy::Naive, UpdateStrategy::ShermanMorrison] {
            let m = UserOnlineModel::new(4, 1.0, s);
            assert_eq!(m.weights().norm2(), 0.0);
            assert_eq!(m.n_obs(), 0);
            assert_eq!(m.dim(), 4);
        }
    }

    #[test]
    fn prior_is_exact_before_observations() {
        let prior = Vector::from_vec(vec![1.0, -2.0, 0.5]);
        for s in [UpdateStrategy::Naive, UpdateStrategy::ShermanMorrison] {
            let m = UserOnlineModel::from_prior(&prior, 0.7, s);
            assert!(m.weights().sub(&prior).unwrap().norm2() < 1e-12, "{s:?}");
            let x = Vector::from_vec(vec![1.0, 1.0, 1.0]);
            assert!((m.predict(&x).unwrap() - (-0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn prior_strategies_agree_after_observations() {
        let prior = Vector::from_vec(vec![0.3, -0.1, 0.8, 0.0]);
        let mut naive = UserOnlineModel::from_prior(&prior, 1.0, UpdateStrategy::Naive);
        let mut sm = UserOnlineModel::from_prior(&prior, 1.0, UpdateStrategy::ShermanMorrison);
        for (x, y) in obs_stream(4, 50, 7) {
            naive.observe(&x, y).unwrap();
            sm.observe(&x, y).unwrap();
        }
        assert!(naive.weights().sub(sm.weights()).unwrap().norm2() < 1e-8);
    }

    #[test]
    fn observations_pull_weights_toward_data() {
        // Observe y = 3·x₀ repeatedly; weights should approach [3, 0].
        let mut m = UserOnlineModel::new(2, 0.1, UpdateStrategy::ShermanMorrison);
        let x = Vector::from_vec(vec![1.0, 0.0]);
        for _ in 0..100 {
            m.observe(&x, 3.0).unwrap();
        }
        assert!((m.weights()[0] - 3.0).abs() < 0.01);
        assert!(m.weights()[1].abs() < 1e-12);
    }

    #[test]
    fn prior_fades_with_evidence() {
        let prior = Vector::from_vec(vec![10.0]);
        let mut m = UserOnlineModel::from_prior(&prior, 1.0, UpdateStrategy::ShermanMorrison);
        let x = Vector::from_vec(vec![1.0]);
        // True signal is y = 1·x; prior said 10.
        for _ in 0..200 {
            m.observe(&x, 1.0).unwrap();
        }
        assert!((m.weights()[0] - 1.0).abs() < 0.1, "prior should wash out: {}", m.weights()[0]);
    }

    #[test]
    fn variance_matches_between_strategies_and_shrinks() {
        let d = 4;
        let mut naive = UserOnlineModel::new(d, 1.0, UpdateStrategy::Naive);
        let mut sm = UserOnlineModel::new(d, 1.0, UpdateStrategy::ShermanMorrison);
        let probe = Vector::from_vec(vec![0.5, -0.5, 1.0, 0.25]);
        let mut last = f64::INFINITY;
        for (x, y) in obs_stream(d, 30, 99) {
            naive.observe(&x, y).unwrap();
            sm.observe(&x, y).unwrap();
            let vn = naive.variance(&probe).unwrap();
            let vs = sm.variance(&probe).unwrap();
            assert!((vn - vs).abs() < 1e-8, "variance mismatch {vn} vs {vs}");
            assert!(vs <= last + 1e-12);
            last = vs;
        }
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let mut m = UserOnlineModel::new(3, 1.0, UpdateStrategy::ShermanMorrison);
        assert!(m.observe(&Vector::zeros(2), 1.0).is_err());
        assert!(m.predict(&Vector::zeros(5)).is_err());
    }
}
