//! Model evaluation: error aggregates, prequential cross-validation, and
//! staleness detection (§4.3 and §6 of the paper).
//!
//! "To assess model performance, Velox applies several strategies. First,
//! Velox maintains running per-user aggregates of errors associated with
//! each model. Second, Velox runs an additional cross-validation step
//! during incremental user weight updates to assess generalization
//! performance. ... When the error rate on any of these metrics exceeds a
//! pre-configured threshold, the model is retrained offline."

use std::collections::HashMap;

use velox_linalg::stats::RunningStats;

/// Running per-user error aggregates, plus a global aggregate.
#[derive(Debug, Default)]
pub struct PerUserErrorTracker {
    per_user: HashMap<u64, RunningStats>,
    global: RunningStats,
}

impl PerUserErrorTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a loss value for a user.
    pub fn record(&mut self, uid: u64, loss: f64) {
        self.per_user.entry(uid).or_default().push(loss);
        self.global.push(loss);
    }

    /// The user's mean loss, if any observations were recorded.
    pub fn user_mean(&self, uid: u64) -> Option<f64> {
        self.per_user.get(&uid).map(RunningStats::mean)
    }

    /// Number of losses recorded for the user.
    pub fn user_count(&self, uid: u64) -> u64 {
        self.per_user.get(&uid).map(RunningStats::count).unwrap_or(0)
    }

    /// Global mean loss across all users (0.0 when empty).
    pub fn global_mean(&self) -> f64 {
        self.global.mean()
    }

    /// Total recorded losses.
    pub fn total_count(&self) -> u64 {
        self.global.count()
    }

    /// Users whose mean loss exceeds `multiple` × the global mean, with at
    /// least `min_obs` recorded losses — the administrator's "which users
    /// is the model failing?" diagnostic.
    pub fn underperforming_users(&self, multiple: f64, min_obs: u64) -> Vec<u64> {
        let global = self.global_mean();
        let mut out: Vec<u64> = self
            .per_user
            .iter()
            .filter(|(_, s)| s.count() >= min_obs && s.mean() > multiple * global)
            .map(|(uid, _)| *uid)
            .collect();
        out.sort_unstable();
        out
    }

    /// Clears everything (after a retrain establishes a new baseline).
    pub fn reset(&mut self) {
        self.per_user.clear();
        self.global = RunningStats::new();
    }
}

/// Prequential ("predict, then maybe train") cross-validation.
///
/// Every `holdout_every`-th observation per stream is *held out*: its
/// prediction error is recorded as an unbiased generalization estimate, and
/// the caller is told not to train on it. All other observations are
/// recorded as (optimistically biased) training-stream error.
#[derive(Debug)]
pub struct PrequentialEvaluator {
    holdout_every: u64,
    counter: u64,
    heldout: RunningStats,
    trained: RunningStats,
}

impl PrequentialEvaluator {
    /// Creates an evaluator holding out every `holdout_every`-th
    /// observation (0 disables holdout entirely).
    pub fn new(holdout_every: u64) -> Self {
        PrequentialEvaluator {
            holdout_every,
            counter: 0,
            heldout: RunningStats::new(),
            trained: RunningStats::new(),
        }
    }

    /// Records a prediction error for the next observation. Returns `true`
    /// when the observation should be *trained on*, `false` when it is held
    /// out for validation.
    pub fn record(&mut self, loss: f64) -> bool {
        self.counter += 1;
        if self.holdout_every > 0 && self.counter.is_multiple_of(self.holdout_every) {
            self.heldout.push(loss);
            false
        } else {
            self.trained.push(loss);
            true
        }
    }

    /// Mean held-out (generalization) loss; `None` before any holdout.
    pub fn generalization_loss(&self) -> Option<f64> {
        if self.heldout.count() == 0 {
            None
        } else {
            Some(self.heldout.mean())
        }
    }

    /// Mean loss over trained-on observations.
    pub fn training_loss(&self) -> f64 {
        self.trained.mean()
    }

    /// `(heldout, trained)` observation counts.
    pub fn counts(&self) -> (u64, u64) {
        (self.heldout.count(), self.trained.count())
    }
}

/// Detects model staleness from the loss stream.
///
/// Two exponentially-weighted moving averages track the loss at different
/// horizons; the model is stale when the fast average exceeds the slow one
/// by more than `threshold` (relative), after a warmup. This is the §6
/// trigger — "if the loss starts to increase faster than a threshold value,
/// the model is detected as stale" — made robust to noise: a single bad
/// prediction moves the fast EWMA a little, only a sustained shift crosses
/// the threshold.
#[derive(Debug, Clone)]
pub struct StalenessDetector {
    slow: f64,
    fast: f64,
    slow_alpha: f64,
    fast_alpha: f64,
    n: u64,
    warmup: u64,
    threshold: f64,
}

impl StalenessDetector {
    /// Creates a detector. `threshold` is the relative excess of recent
    /// loss over baseline loss that triggers (e.g. `0.5` = recent loss 50%
    /// above baseline); `warmup` is the number of observations before the
    /// detector may fire.
    pub fn new(threshold: f64, warmup: u64) -> Self {
        assert!(threshold > 0.0);
        StalenessDetector {
            slow: 0.0,
            fast: 0.0,
            slow_alpha: 0.005,
            fast_alpha: 0.08,
            n: 0,
            warmup,
            threshold,
        }
    }

    /// Feeds one loss; returns `true` when the model is now stale.
    pub fn push(&mut self, loss: f64) -> bool {
        self.n += 1;
        if self.n == 1 {
            self.slow = loss;
            self.fast = loss;
            return false;
        }
        self.slow += self.slow_alpha * (loss - self.slow);
        self.fast += self.fast_alpha * (loss - self.fast);
        self.is_stale()
    }

    /// Whether the current state is past the threshold (without feeding a
    /// new sample).
    pub fn is_stale(&self) -> bool {
        if self.n < self.warmup {
            return false;
        }
        // Guard tiny baselines: a model with near-zero loss shouldn't
        // trigger on absolute noise.
        let baseline = self.slow.max(1e-12);
        (self.fast - self.slow) / baseline > self.threshold
    }

    /// Current `(fast, slow)` EWMA values — exposed for dashboards/tests.
    pub fn ewmas(&self) -> (f64, f64) {
        (self.fast, self.slow)
    }

    /// Resets the detector (called after the offline retrain completes and
    /// a new baseline should form).
    pub fn reset(&mut self) {
        self.slow = 0.0;
        self.fast = 0.0;
        self.n = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_user_tracking() {
        let mut t = PerUserErrorTracker::new();
        t.record(1, 1.0);
        t.record(1, 3.0);
        t.record(2, 10.0);
        assert_eq!(t.user_mean(1), Some(2.0));
        assert_eq!(t.user_mean(2), Some(10.0));
        assert_eq!(t.user_mean(3), None);
        assert_eq!(t.user_count(1), 2);
        assert!((t.global_mean() - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.total_count(), 3);
    }

    #[test]
    fn underperformers_flagged() {
        let mut t = PerUserErrorTracker::new();
        for _ in 0..10 {
            t.record(1, 1.0);
            t.record(2, 1.0);
            t.record(3, 8.0); // 3 is clearly failing
        }
        let bad = t.underperforming_users(1.5, 5);
        assert_eq!(bad, vec![3]);
        // Minimum-observation filter applies: user 4 has one huge loss but
        // too few observations to be flagged.
        t.record(4, 100.0);
        assert!(!t.underperforming_users(1.5, 5).contains(&4));
    }

    #[test]
    fn tracker_reset() {
        let mut t = PerUserErrorTracker::new();
        t.record(1, 5.0);
        t.reset();
        assert_eq!(t.total_count(), 0);
        assert_eq!(t.user_mean(1), None);
    }

    #[test]
    fn prequential_holds_out_every_kth() {
        let mut ev = PrequentialEvaluator::new(3);
        let decisions: Vec<bool> = (0..9).map(|i| ev.record(i as f64)).collect();
        assert_eq!(decisions, vec![true, true, false, true, true, false, true, true, false]);
        let (held, trained) = ev.counts();
        assert_eq!((held, trained), (3, 6));
        // Held-out losses were 2, 5, 8 → mean 5.
        assert_eq!(ev.generalization_loss(), Some(5.0));
        // Trained losses 0,1,3,4,6,7 → mean 3.5.
        assert!((ev.training_loss() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn prequential_disabled() {
        let mut ev = PrequentialEvaluator::new(0);
        for i in 0..10 {
            assert!(ev.record(i as f64), "holdout disabled: always train");
        }
        assert_eq!(ev.generalization_loss(), None);
    }

    #[test]
    fn staleness_fires_on_sustained_loss_increase() {
        let mut det = StalenessDetector::new(0.5, 50);
        // Stable regime: loss ~1.0.
        for _ in 0..500 {
            assert!(!det.push(1.0), "must not fire on a flat loss stream");
        }
        // Drift: loss jumps to 3.0 and stays.
        let mut fired_at = None;
        for i in 0..500 {
            if det.push(3.0) {
                fired_at = Some(i);
                break;
            }
        }
        let fired_at = fired_at.expect("detector must fire on sustained 3x loss");
        assert!(fired_at < 100, "should fire promptly, fired after {fired_at}");
    }

    #[test]
    fn staleness_ignores_isolated_spikes() {
        let mut det = StalenessDetector::new(0.5, 50);
        for i in 0..1000 {
            let loss = if i % 100 == 0 { 10.0 } else { 1.0 };
            assert!(!det.push(loss), "isolated spikes (1%) must not trigger, i={i}");
        }
    }

    #[test]
    fn staleness_respects_warmup() {
        let mut det = StalenessDetector::new(0.1, 200);
        // Immediately bad data, but within warmup.
        for i in 0..199 {
            let loss = if i < 10 { 1.0 } else { 100.0 };
            assert!(!det.push(loss) || i >= 199, "no firing during warmup");
        }
    }

    #[test]
    fn staleness_reset_reestablishes_baseline() {
        let mut det = StalenessDetector::new(0.5, 10);
        for _ in 0..100 {
            det.push(1.0);
        }
        for _ in 0..100 {
            det.push(5.0);
        }
        assert!(det.is_stale());
        det.reset();
        // New baseline at the higher loss: not stale anymore.
        for _ in 0..100 {
            assert!(!det.push(5.0));
        }
    }

    #[test]
    fn ewma_accessors() {
        let mut det = StalenessDetector::new(1.0, 1);
        det.push(2.0);
        let (fast, slow) = det.ewmas();
        assert_eq!(fast, 2.0);
        assert_eq!(slow, 2.0);
    }
}
