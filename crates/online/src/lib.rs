//! # velox-online
//!
//! The online half of Velox's hybrid learning strategy (§4.2).
//!
//! While the feature parameters `θ` evolve slowly and are retrained in
//! batch, the per-user weights `wᵤ` are updated continuously as
//! observations arrive, by re-solving the user's regularized least-squares
//! problem (Eq. 2). This crate provides:
//!
//! - [`learner::UserOnlineModel`]: one user's online state, updatable under
//!   two strategies — [`learner::UpdateStrategy::Naive`] (accumulate
//!   sufficient statistics, Cholesky re-solve per update, O(d³): the
//!   paper's prototype whose latency Figure 3 plots) and
//!   [`learner::UpdateStrategy::ShermanMorrison`] (O(d²) rank-one inverse
//!   maintenance: the optimization §4.2 names). Both produce identical
//!   weights up to floating-point error, which the property tests pin down.
//! - [`evaluation`]: the §4.3 model-evaluation machinery — per-user running
//!   error aggregates, prequential cross-validation during updates, and a
//!   staleness detector that flags a model for offline retraining when its
//!   loss "starts to increase faster than a threshold value" (§6).

#![warn(missing_docs)]

pub mod evaluation;
pub mod learner;

pub use evaluation::{PerUserErrorTracker, PrequentialEvaluator, StalenessDetector};
pub use learner::{UpdateStrategy, UserOnlineModel};
