//! The §4.2 evaluation protocol: per-user chronological splits.
//!
//! The paper: "We first used offline training to initialize the feature
//! parameters θ on half of the data and then evaluated the prediction error
//! of the proposed strategy on the remaining data. By using Velox's
//! incremental online updates to train on 70% of the remaining data, we were
//! able to achieve a held out prediction error that is only slightly worse
//! than complete retraining."
//!
//! [`three_way_split`] reproduces that: per user, the chronologically first
//! `offline_frac` of ratings go to the offline-initialization set, then
//! `online_frac` of the remainder go to the online-update stream, and the
//! rest are held out.

use crate::ratings::{Rating, RatingsDataset};

/// The three-way split of §4.2: offline init / online stream / held-out.
#[derive(Debug, Clone)]
pub struct LifecycleSplit {
    /// Ratings used to train θ (and initial user weights) offline.
    pub offline: Vec<Rating>,
    /// Ratings streamed through `observe()` for online updates, in global
    /// arrival order.
    pub online: Vec<Rating>,
    /// Held-out ratings for error measurement.
    pub heldout: Vec<Rating>,
}

impl LifecycleSplit {
    /// Total ratings across the three parts.
    pub fn total(&self) -> usize {
        self.offline.len() + self.online.len() + self.heldout.len()
    }
}

/// Splits a dataset per user: first `offline_frac` of each user's ratings
/// (chronological) → offline; next `online_frac` of the remainder → online;
/// rest → held-out. Each output is globally re-sorted by timestamp so the
/// online part can be replayed as an arrival stream.
///
/// Fractions must lie in `[0, 1]`. Users with too few ratings contribute
/// what they have (rounding per user, minimum one offline rating per user
/// when the user has any, so every user has a warm-start model).
pub fn three_way_split(
    dataset: &RatingsDataset,
    offline_frac: f64,
    online_frac: f64,
) -> LifecycleSplit {
    assert!((0.0..=1.0).contains(&offline_frac), "offline_frac out of range");
    assert!((0.0..=1.0).contains(&online_frac), "online_frac out of range");
    let mut offline = Vec::new();
    let mut online = Vec::new();
    let mut heldout = Vec::new();
    for group in dataset.by_user() {
        let n = group.len();
        if n == 0 {
            continue;
        }
        let n_offline = ((n as f64 * offline_frac).round() as usize).clamp(1.min(n), n);
        let rest = n - n_offline;
        let n_online = (rest as f64 * online_frac).round() as usize;
        for (i, r) in group.into_iter().enumerate() {
            if i < n_offline {
                offline.push(r.clone());
            } else if i < n_offline + n_online {
                online.push(r.clone());
            } else {
                heldout.push(r.clone());
            }
        }
    }
    offline.sort_by_key(|r| r.timestamp);
    online.sort_by_key(|r| r.timestamp);
    heldout.sort_by_key(|r| r.timestamp);
    LifecycleSplit { offline, online, heldout }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::SyntheticConfig;

    fn dataset() -> RatingsDataset {
        RatingsDataset::generate(SyntheticConfig {
            n_users: 40,
            n_items: 100,
            rank: 4,
            ratings_per_user: 20,
            seed: 5,
            ..Default::default()
        })
    }

    #[test]
    fn partitions_everything_exactly_once() {
        let ds = dataset();
        let split = three_way_split(&ds, 0.5, 0.7);
        assert_eq!(split.total(), ds.len());
        let mut all: Vec<u64> = split
            .offline
            .iter()
            .chain(&split.online)
            .chain(&split.heldout)
            .map(|r| r.timestamp)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ds.len(), "no rating lost or duplicated");
    }

    #[test]
    fn paper_fractions() {
        let ds = dataset();
        let split = three_way_split(&ds, 0.5, 0.7);
        // 20 per user → 10 offline, 7 online, 3 held out.
        assert_eq!(split.offline.len(), 40 * 10);
        assert_eq!(split.online.len(), 40 * 7);
        assert_eq!(split.heldout.len(), 40 * 3);
    }

    #[test]
    fn per_user_chronology_respected() {
        let ds = dataset();
        let split = three_way_split(&ds, 0.5, 0.7);
        // For each user, every offline timestamp < every online timestamp
        // < every heldout timestamp.
        for uid in 0..40u64 {
            let max_off = split.offline.iter().filter(|r| r.uid == uid).map(|r| r.timestamp).max();
            let min_on = split.online.iter().filter(|r| r.uid == uid).map(|r| r.timestamp).min();
            let max_on = split.online.iter().filter(|r| r.uid == uid).map(|r| r.timestamp).max();
            let min_held = split.heldout.iter().filter(|r| r.uid == uid).map(|r| r.timestamp).min();
            if let (Some(a), Some(b)) = (max_off, min_on) {
                assert!(a < b, "user {uid}: offline after online");
            }
            if let (Some(a), Some(b)) = (max_on, min_held) {
                assert!(a < b, "user {uid}: online after heldout");
            }
        }
    }

    #[test]
    fn outputs_are_globally_time_sorted() {
        let ds = dataset();
        let split = three_way_split(&ds, 0.5, 0.7);
        for part in [&split.offline, &split.online, &split.heldout] {
            for w in part.windows(2) {
                assert!(w[0].timestamp < w[1].timestamp);
            }
        }
    }

    #[test]
    fn extreme_fractions() {
        let ds = dataset();
        let all_offline = three_way_split(&ds, 1.0, 0.5);
        assert_eq!(all_offline.offline.len(), ds.len());
        assert!(all_offline.online.is_empty());
        assert!(all_offline.heldout.is_empty());

        let no_online = three_way_split(&ds, 0.5, 0.0);
        assert!(no_online.online.is_empty());
        assert_eq!(no_online.offline.len() + no_online.heldout.len(), ds.len());

        // offline_frac 0 still keeps ≥1 offline rating per user (warm start).
        let min_offline = three_way_split(&ds, 0.0, 1.0);
        assert_eq!(min_offline.offline.len(), 40);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_fraction() {
        let ds = dataset();
        let _ = three_way_split(&ds, 1.5, 0.5);
    }
}
