//! Deterministic random primitives.
//!
//! Every experiment in the workspace is seeded, so runs are exactly
//! reproducible. The core generator is an in-tree xoshiro256++ (seeded
//! through SplitMix64, the initialization recommended by its authors) —
//! fast, tiny state, and no external dependency, which keeps the build
//! hermetic. The distributions the paper's workloads need beyond uniforms
//! — Gaussians for planted factors and noise, Zipf for item popularity —
//! are implemented on top.

/// SplitMix64: expands a 64-bit seed into well-mixed stream of words used
/// to initialize the xoshiro state (and usable as a one-shot mixer).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random source with the distributions Velox's generators need.
///
/// Internally a xoshiro256++ generator: 256 bits of state, one rotate /
/// shift / xor round per output word, period 2²⁵⁶ − 1.
#[derive(Debug, Clone)]
pub struct VeloxRng {
    s: [u64; 4],
    /// Spare Gaussian from the last Box–Muller pair.
    spare: Option<f64>,
}

impl VeloxRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        VeloxRng { s, spare: None }
    }

    /// Next raw 64-bit word (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`: the top 53 bits of a word over 2⁵³.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be positive. Uses rejection
    /// sampling (Lemire-style threshold) so the draw is exactly uniform.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Rejection zone: discard draws above the largest multiple of n.
        let zone = u64::MAX - (u64::MAX % n) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal via Box–Muller (polar form), caching the spare.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (partial Fisher–Yates).
    /// `k` is clamped to `n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// A Zipf(s) sampler over `{0, 1, ..., n-1}` by inverted CDF with binary
/// search: P(k) ∝ 1/(k+1)^s. Rank 0 is the most popular item.
///
/// CDF construction is O(n) once; each sample is O(log n). This is the item
/// popularity model of §5 ("item popularity often follows a Zipfian
/// distribution").
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s >= 0`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is negative/non-finite — both are
    /// configuration errors.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty universe");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut VeloxRng) -> usize {
        let u = rng.uniform();
        // First index whose CDF value exceeds u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("CDF has no NaN")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = VeloxRng::seed_from(42);
        let mut b = VeloxRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.gaussian().to_bits(), b.gaussian().to_bits());
        }
        let mut c = VeloxRng::seed_from(43);
        assert_ne!(a.uniform(), c.uniform());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = VeloxRng::seed_from(1);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            let r = rng.range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&r));
            let i = rng.below(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = VeloxRng::seed_from(7);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = rng.gaussian();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gaussian_with_params() {
        let mut rng = VeloxRng::seed_from(9);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.gaussian_with(5.0, 0.5);
        }
        assert!((sum / n as f64 - 5.0).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = VeloxRng::seed_from(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 should not give identity permutation");
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = VeloxRng::seed_from(4);
        let sample = rng.sample_distinct(100, 10);
        assert_eq!(sample.len(), 10);
        let mut uniq = sample.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10, "duplicates in distinct sample");
        assert!(sample.iter().all(|&i| i < 100));
        // k > n clamps.
        assert_eq!(rng.sample_distinct(5, 50).len(), 5);
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(1000, 1.0);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..1000 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15, "pmf must be non-increasing");
        }
        assert_eq!(z.pmf(5000), 0.0);
    }

    #[test]
    fn zipf_empirical_skew() {
        let z = Zipf::new(10_000, 1.0);
        let mut rng = VeloxRng::seed_from(11);
        let n = 100_000;
        let mut head = 0u64;
        for _ in 0..n {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With s=1 over 10k items, top-100 carries ~ H(100)/H(10000) ≈ 53%.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.45 && frac < 0.62, "head mass {frac}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(100, 0.0);
        for k in 0..100 {
            assert!((z.pmf(k) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_higher_skew_concentrates_more() {
        let z1 = Zipf::new(1000, 0.8);
        let z2 = Zipf::new(1000, 1.4);
        assert!(z2.pmf(0) > z1.pmf(0));
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn zipf_empty_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
