//! Planted-factor synthetic ratings — the MovieLens substitute.
//!
//! Ground truth: each user `u` has a latent vector `wᵤ* ∈ R^r` and each item
//! `i` a latent vector `xᵢ* ∈ R^r`, both Gaussian. A rating is
//!
//! ```text
//! r_ui = clamp(μ + wᵤ*ᵀ xᵢ* + ε,  scale)     ε ~ N(0, noise_std²)
//! ```
//!
//! which is exactly the matrix-factorization generative model the paper's
//! running example assumes (§2). Which (user, item) pairs are observed is
//! controlled by a Zipfian item-popularity distribution, matching §5's
//! workload assumption. Because the ground-truth factors are returned
//! alongside the ratings, experiments can also measure factor recovery, not
//! just held-out rating error.

use velox_linalg::Vector;

use crate::rng::{VeloxRng, Zipf};

/// One observed rating.
#[derive(Debug, Clone, PartialEq)]
pub struct Rating {
    /// User id in `[0, n_users)`.
    pub uid: u64,
    /// Item id in `[0, n_items)`.
    pub item_id: u64,
    /// Observed rating value.
    pub value: f64,
    /// Arrival order (dense, global). Splits are chronological on this.
    pub timestamp: u64,
}

/// Configuration for the synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Ground-truth latent rank.
    pub rank: usize,
    /// Ratings per user (each user rates exactly this many distinct items).
    pub ratings_per_user: usize,
    /// Standard deviation of the additive rating noise.
    pub noise_std: f64,
    /// Rating scale: values are clamped to `[min, max]`. MovieLens-like
    /// default is (0.5, 5.0).
    pub rating_range: (f64, f64),
    /// Global rating mean `μ` added before clamping.
    pub global_mean: f64,
    /// Zipf exponent for item popularity (0 = uniform).
    pub popularity_skew: f64,
    /// Scale of the *shared* component of user taste: every user's factor
    /// vector is `m + εᵤ` where `m` is a population-level preference vector
    /// of this norm (0 = fully idiosyncratic users). Real populations have
    /// shared taste — it is why popular items are popular, and why the
    /// paper's mean-weight bootstrap ("predicting the average score for all
    /// users") carries signal for a brand-new user.
    pub shared_taste: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_users: 1000,
            n_items: 2000,
            rank: 10,
            ratings_per_user: 30,
            noise_std: 0.5,
            rating_range: (0.5, 5.0),
            global_mean: 3.0,
            popularity_skew: 1.0,
            shared_taste: 0.0,
            seed: 0xC1D1_2015,
        }
    }
}

/// A generated dataset: observed ratings plus the ground truth that
/// generated them.
#[derive(Debug, Clone)]
pub struct RatingsDataset {
    /// All ratings in arrival (timestamp) order.
    pub ratings: Vec<Rating>,
    /// Ground-truth user factors, row `u` = user `u` (n_users × rank).
    pub true_user_factors: Vec<Vector>,
    /// Ground-truth item factors, row `i` = item `i` (n_items × rank).
    pub true_item_factors: Vec<Vector>,
    /// The configuration that produced this dataset.
    pub config: SyntheticConfig,
}

impl RatingsDataset {
    /// Generates a dataset from `config`. Deterministic in `config.seed`.
    ///
    /// Each user rates `ratings_per_user` *distinct* items; the item set is
    /// drawn from the Zipfian popularity distribution (with rejection on
    /// repeats), then the per-user sequence is interleaved globally in
    /// random order so timestamps mix users, as a real arrival stream would.
    pub fn generate(config: SyntheticConfig) -> Self {
        assert!(config.n_users > 0 && config.n_items > 0 && config.rank > 0);
        assert!(
            config.ratings_per_user <= config.n_items,
            "cannot rate more distinct items than exist"
        );
        let mut rng = VeloxRng::seed_from(config.seed);
        let factor_scale = 1.0 / (config.rank as f64).sqrt();

        // Population-level shared taste direction (zero vector when
        // `shared_taste` is 0).
        let mut shared =
            Vector::from_vec((0..config.rank).map(|_| rng.gaussian()).collect::<Vec<f64>>());
        let norm = shared.norm2();
        if norm > 0.0 && config.shared_taste > 0.0 {
            shared.scale(config.shared_taste / norm);
        } else {
            shared.scale(0.0);
        }

        let true_user_factors: Vec<Vector> = (0..config.n_users)
            .map(|_| {
                let mut w = Vector::from_vec(
                    (0..config.rank).map(|_| rng.gaussian() * factor_scale).collect::<Vec<f64>>(),
                );
                w.axpy(1.0, &shared).expect("rank-consistent shared taste");
                w
            })
            .collect();
        let true_item_factors: Vec<Vector> = (0..config.n_items)
            .map(|_| {
                Vector::from_vec((0..config.rank).map(|_| rng.gaussian() * factor_scale).collect())
            })
            .collect();

        let zipf = Zipf::new(config.n_items, config.popularity_skew);
        let (lo, hi) = config.rating_range;

        // Draw each user's distinct item set.
        let mut per_user: Vec<(u64, u64, f64)> =
            Vec::with_capacity(config.n_users * config.ratings_per_user);
        let mut seen = vec![u32::MAX; config.n_items];
        #[allow(clippy::needless_range_loop)] // u is also the uid, not just an index
        for u in 0..config.n_users {
            let mut drawn = 0usize;
            // Zipf rejection sampling for distinct items; falls back to a
            // uniform distinct sample if rejection stalls (tiny catalogs
            // with high skew).
            let mut attempts = 0usize;
            let max_attempts = config.ratings_per_user * 50;
            while drawn < config.ratings_per_user && attempts < max_attempts {
                attempts += 1;
                let item = zipf.sample(&mut rng);
                if seen[item] == u as u32 {
                    continue;
                }
                seen[item] = u as u32;
                let score = true_user_factors[u]
                    .dot(&true_item_factors[item])
                    .expect("rank-consistent factors");
                let noisy = config.global_mean + score + rng.gaussian() * config.noise_std;
                per_user.push((u as u64, item as u64, noisy.clamp(lo, hi)));
                drawn += 1;
            }
            if drawn < config.ratings_per_user {
                for &item in rng.sample_distinct(config.n_items, config.ratings_per_user).iter() {
                    if drawn == config.ratings_per_user {
                        break;
                    }
                    if seen[item] == u as u32 {
                        continue;
                    }
                    seen[item] = u as u32;
                    let score = true_user_factors[u]
                        .dot(&true_item_factors[item])
                        .expect("rank-consistent factors");
                    let noisy = config.global_mean + score + rng.gaussian() * config.noise_std;
                    per_user.push((u as u64, item as u64, noisy.clamp(lo, hi)));
                    drawn += 1;
                }
            }
        }

        // Interleave into a global arrival order.
        rng.shuffle(&mut per_user);
        let ratings = per_user
            .into_iter()
            .enumerate()
            .map(|(ts, (uid, item_id, value))| Rating { uid, item_id, value, timestamp: ts as u64 })
            .collect();

        RatingsDataset { ratings, true_user_factors, true_item_factors, config }
    }

    /// Total number of ratings.
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// True when no ratings were generated.
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// Ratings grouped by user, each group in arrival order. Index = uid.
    pub fn by_user(&self) -> Vec<Vec<&Rating>> {
        let mut groups: Vec<Vec<&Rating>> = vec![Vec::new(); self.config.n_users];
        for r in &self.ratings {
            groups[r.uid as usize].push(r);
        }
        groups
    }

    /// The noiseless ground-truth score for a `(user, item)` pair,
    /// including the global mean (what an oracle would predict).
    pub fn oracle_score(&self, uid: u64, item_id: u64) -> f64 {
        let raw = self.true_user_factors[uid as usize]
            .dot(&self.true_item_factors[item_id as usize])
            .expect("rank-consistent factors");
        let (lo, hi) = self.config.rating_range;
        (self.config.global_mean + raw).clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            n_users: 50,
            n_items: 200,
            rank: 5,
            ratings_per_user: 10,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn generates_expected_counts() {
        let ds = RatingsDataset::generate(small());
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.true_user_factors.len(), 50);
        assert_eq!(ds.true_item_factors.len(), 200);
        assert_eq!(ds.true_user_factors[0].len(), 5);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = RatingsDataset::generate(small());
        let b = RatingsDataset::generate(small());
        assert_eq!(a.ratings, b.ratings);
        let mut cfg = small();
        cfg.seed = 2;
        let c = RatingsDataset::generate(cfg);
        assert_ne!(a.ratings, c.ratings);
    }

    #[test]
    fn ratings_within_scale_and_ids_in_range() {
        let ds = RatingsDataset::generate(small());
        let (lo, hi) = ds.config.rating_range;
        for r in &ds.ratings {
            assert!(r.value >= lo && r.value <= hi);
            assert!((r.uid as usize) < 50);
            assert!((r.item_id as usize) < 200);
        }
    }

    #[test]
    fn timestamps_are_dense_and_ordered() {
        let ds = RatingsDataset::generate(small());
        for (i, r) in ds.ratings.iter().enumerate() {
            assert_eq!(r.timestamp, i as u64);
        }
    }

    #[test]
    fn each_user_rates_distinct_items() {
        let ds = RatingsDataset::generate(small());
        for (u, group) in ds.by_user().iter().enumerate() {
            assert_eq!(group.len(), 10, "user {u}");
            let mut items: Vec<u64> = group.iter().map(|r| r.item_id).collect();
            items.sort_unstable();
            items.dedup();
            assert_eq!(items.len(), 10, "user {u} has duplicate items");
        }
    }

    #[test]
    fn popular_items_get_more_ratings() {
        let mut cfg = small();
        cfg.n_users = 500;
        cfg.popularity_skew = 1.2;
        let ds = RatingsDataset::generate(cfg);
        let mut counts = vec![0u64; 200];
        for r in &ds.ratings {
            counts[r.item_id as usize] += 1;
        }
        let head: u64 = counts[..20].iter().sum();
        let tail: u64 = counts[180..].iter().sum();
        assert!(head > tail * 3, "Zipf skew should concentrate ratings: head={head} tail={tail}");
    }

    #[test]
    fn low_noise_means_ratings_track_oracle() {
        let mut cfg = small();
        cfg.noise_std = 1e-6;
        let ds = RatingsDataset::generate(cfg);
        for r in &ds.ratings {
            let oracle = ds.oracle_score(r.uid, r.item_id);
            assert!((r.value - oracle).abs() < 1e-3, "rating {} vs oracle {oracle}", r.value);
        }
    }

    #[test]
    fn uniform_popularity_spreads_ratings() {
        let mut cfg = small();
        cfg.popularity_skew = 0.0;
        cfg.n_users = 500;
        let ds = RatingsDataset::generate(cfg);
        let mut counts = vec![0u64; 200];
        for r in &ds.ratings {
            counts[r.item_id as usize] += 1;
        }
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonzero > 190, "uniform draw should touch nearly all items");
    }

    #[test]
    fn shared_taste_shifts_population_mean() {
        let mut cfg = small();
        cfg.shared_taste = 1.0;
        cfg.n_users = 400;
        let ds = RatingsDataset::generate(cfg);
        // The mean user factor should be close to a vector of norm ~1
        // (the shared taste), far from zero.
        let mut mean = velox_linalg::Vector::zeros(5);
        for w in &ds.true_user_factors {
            mean.axpy(1.0, w).unwrap();
        }
        mean.scale(1.0 / 400.0);
        assert!(mean.norm2() > 0.8, "shared taste missing: {}", mean.norm2());

        // Zero shared taste → near-zero population mean.
        let ds0 = RatingsDataset::generate(small());
        let mut mean0 = velox_linalg::Vector::zeros(5);
        for w in &ds0.true_user_factors {
            mean0.axpy(1.0, w).unwrap();
        }
        mean0.scale(1.0 / 50.0);
        assert!(mean0.norm2() < 0.5, "idiosyncratic users have small mean");
    }

    #[test]
    #[should_panic(expected = "cannot rate more distinct items")]
    fn rejects_impossible_config() {
        let mut cfg = small();
        cfg.ratings_per_user = 500;
        let _ = RatingsDataset::generate(cfg);
    }
}
