//! Serving-workload generation.
//!
//! The paper's serving experiments (Figure 4, §5) are driven by `topK`
//! queries over candidate item sets and by point-prediction streams whose
//! item popularity is Zipfian. This module turns those into reusable
//! generators: a stream of [`TopKRequest`]s, a stream of `(uid, item)`
//! point lookups, and helpers for measuring how skewed an access pattern is.

use crate::rng::{VeloxRng, Zipf};

/// Configuration for a request-stream generator.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of users requests are drawn from (uniformly).
    pub n_users: usize,
    /// Catalog size items are drawn from.
    pub n_items: usize,
    /// Zipf exponent of item popularity (0 = uniform).
    pub item_skew: f64,
    /// Candidate-set size for `topK` requests.
    pub topk_set_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_users: 1000,
            n_items: 10_000,
            item_skew: 1.0,
            topk_set_size: 100,
            seed: 7,
        }
    }
}

/// A `topK` request: evaluate the candidate items for a user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKRequest {
    /// Requesting user.
    pub uid: u64,
    /// Candidate item ids (may contain repeats across requests, never
    /// within one request).
    pub items: Vec<u64>,
}

/// Stateful generator of serving requests.
pub struct ZipfGenerator {
    config: WorkloadConfig,
    zipf: Zipf,
    rng: VeloxRng,
    /// Random item-id permutation so that "rank 0 is hottest" does not mean
    /// "item id 0 is hottest" — access skew is decoupled from id order,
    /// like a real catalog.
    rank_to_item: Vec<u64>,
}

impl ZipfGenerator {
    /// Creates a generator. Deterministic in `config.seed`.
    pub fn new(config: WorkloadConfig) -> Self {
        assert!(config.n_users > 0 && config.n_items > 0);
        assert!(config.topk_set_size <= config.n_items, "candidate set exceeds catalog");
        let mut rng = VeloxRng::seed_from(config.seed);
        let mut rank_to_item: Vec<u64> = (0..config.n_items as u64).collect();
        rng.shuffle(&mut rank_to_item);
        let zipf = Zipf::new(config.n_items, config.item_skew);
        ZipfGenerator { config, zipf, rng, rank_to_item }
    }

    /// The active configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Draws one item according to the popularity distribution.
    pub fn next_item(&mut self) -> u64 {
        let rank = self.zipf.sample(&mut self.rng);
        self.rank_to_item[rank]
    }

    /// Draws one user uniformly.
    pub fn next_user(&mut self) -> u64 {
        self.rng.below(self.config.n_users as u64)
    }

    /// Draws one `(uid, item)` point-prediction request.
    pub fn next_point(&mut self) -> (u64, u64) {
        (self.next_user(), self.next_item())
    }

    /// Draws a `topK` request: one user plus `topk_set_size` *distinct*
    /// candidate items, popularity-weighted.
    pub fn next_topk(&mut self) -> TopKRequest {
        let uid = self.next_user();
        let k = self.config.topk_set_size;
        let mut items = Vec::with_capacity(k);
        let mut tried = 0usize;
        let budget = k * 40;
        // Popularity-weighted distinct draw with a uniform fallback, so
        // huge skew over tiny candidate budgets still terminates.
        let mut chosen = vec![false; self.config.n_items];
        while items.len() < k && tried < budget {
            tried += 1;
            let item = self.next_item();
            if !chosen[item as usize] {
                chosen[item as usize] = true;
                items.push(item);
            }
        }
        if items.len() < k {
            for idx in self.rng.sample_distinct(self.config.n_items, k * 2) {
                if items.len() == k {
                    break;
                }
                if !chosen[idx] {
                    chosen[idx] = true;
                    items.push(idx as u64);
                }
            }
        }
        TopKRequest { uid, items }
    }

    /// Generates `n` point requests.
    pub fn point_stream(&mut self, n: usize) -> Vec<(u64, u64)> {
        (0..n).map(|_| self.next_point()).collect()
    }

    /// Generates `n` topK requests.
    pub fn topk_stream(&mut self, n: usize) -> Vec<TopKRequest> {
        (0..n).map(|_| self.next_topk()).collect()
    }
}

/// Fraction of accesses in `stream` that hit the `head_size` most frequent
/// items of the stream itself — a skew diagnostic used by the cache
/// ablation (ABL-CACHE).
pub fn head_concentration(stream: &[u64], n_items: usize, head_size: usize) -> f64 {
    if stream.is_empty() || head_size == 0 {
        return 0.0;
    }
    let mut counts = vec![0u64; n_items];
    for &item in stream {
        counts[item as usize] += 1;
    }
    let mut sorted = counts;
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let head: u64 = sorted.iter().take(head_size).sum();
    head as f64 / stream.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> WorkloadConfig {
        WorkloadConfig { n_users: 100, n_items: 1000, item_skew: 1.0, topk_set_size: 50, seed: 3 }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = ZipfGenerator::new(config());
        let mut b = ZipfGenerator::new(config());
        assert_eq!(a.point_stream(100), b.point_stream(100));
        assert_eq!(a.next_topk(), b.next_topk());
    }

    #[test]
    fn ids_in_range() {
        let mut g = ZipfGenerator::new(config());
        for (uid, item) in g.point_stream(1000) {
            assert!(uid < 100);
            assert!(item < 1000);
        }
    }

    #[test]
    fn topk_items_are_distinct_and_sized() {
        let mut g = ZipfGenerator::new(config());
        for req in g.topk_stream(50) {
            assert_eq!(req.items.len(), 50);
            let mut items = req.items.clone();
            items.sort_unstable();
            items.dedup();
            assert_eq!(items.len(), 50);
            assert!(req.uid < 100);
        }
    }

    #[test]
    fn skewed_stream_is_concentrated_uniform_is_not() {
        let mut skewed = ZipfGenerator::new(WorkloadConfig { item_skew: 1.2, ..config() });
        let mut uniform = ZipfGenerator::new(WorkloadConfig { item_skew: 0.0, ..config() });
        let s: Vec<u64> = (0..20_000).map(|_| skewed.next_item()).collect();
        let u: Vec<u64> = (0..20_000).map(|_| uniform.next_item()).collect();
        let cs = head_concentration(&s, 1000, 50);
        let cu = head_concentration(&u, 1000, 50);
        assert!(cs > 0.5, "skewed head concentration {cs}");
        assert!(cu < 0.15, "uniform head concentration {cu}");
    }

    #[test]
    fn hot_items_not_low_ids() {
        // The rank→item permutation decouples popularity from id order:
        // the most frequent item should (with overwhelming probability for
        // this seed) not be item 0..9 all at once.
        let mut g = ZipfGenerator::new(config());
        let stream: Vec<u64> = (0..10_000).map(|_| g.next_item()).collect();
        let mut counts = vec![0u64; 1000];
        for &i in &stream {
            counts[i as usize] += 1;
        }
        let hottest = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        // The hottest item is some shuffled id; assert the shuffle happened
        // by checking the top-10 hottest are not exactly ids 0..10.
        let mut by_count: Vec<usize> = (0..1000).collect();
        by_count.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        assert_ne!(&by_count[..10], &(0..10).collect::<Vec<_>>()[..]);
        assert!(counts[hottest] > 100);
    }

    #[test]
    fn topk_with_extreme_skew_still_fills() {
        let cfg = WorkloadConfig {
            n_users: 10,
            n_items: 60,
            item_skew: 3.0, // nearly all mass on a handful of items
            topk_set_size: 50,
            seed: 9,
        };
        let mut g = ZipfGenerator::new(cfg);
        let req = g.next_topk();
        assert_eq!(req.items.len(), 50);
        let mut items = req.items.clone();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 50);
    }

    #[test]
    fn head_concentration_edges() {
        assert_eq!(head_concentration(&[], 10, 3), 0.0);
        assert_eq!(head_concentration(&[1, 1, 1], 10, 0), 0.0);
        assert_eq!(head_concentration(&[1, 1, 1], 10, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "candidate set exceeds catalog")]
    fn rejects_oversized_candidate_set() {
        let _ = ZipfGenerator::new(WorkloadConfig { n_items: 10, topk_set_size: 20, ..config() });
    }
}
