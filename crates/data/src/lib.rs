//! # velox-data
//!
//! Synthetic datasets and workload generators.
//!
//! The paper's experiments run against the MovieLens 10M ratings set and
//! against request streams whose item popularity "often follows a Zipfian
//! distribution" (§5). Neither real traces nor MovieLens are available in
//! this environment, so this crate generates the closest synthetic
//! equivalents (see DESIGN.md, "Substitutions"):
//!
//! - [`ratings`]: a **planted-factor** ratings generator. Ground-truth user
//!   and item factors are drawn from a Gaussian, ratings are noisy inner
//!   products clamped to a rating scale. This preserves the property the
//!   accuracy experiment (§4.2) depends on: the data genuinely has low-rank
//!   structure, so online refinement of user weights against fixed item
//!   factors measurably reduces held-out error.
//! - [`split`]: the §4.2 evaluation protocol — per-user chronological splits
//!   into offline-initialization, online-update, and held-out sets.
//! - [`workload`]: request-stream generation — Zipfian item popularity,
//!   uniform/weighted user selection, top-K candidate-set sampling.
//! - [`rng`]: deterministic random primitives (an in-tree xoshiro256++
//!   generator, Box–Muller Gaussians, inverted-CDF Zipf) so every
//!   experiment is reproducible from a seed with zero external deps.

#![warn(missing_docs)]

pub mod ratings;
pub mod rng;
pub mod split;
pub mod workload;

pub use ratings::{Rating, RatingsDataset, SyntheticConfig};
pub use rng::{VeloxRng, Zipf};
pub use split::{three_way_split, LifecycleSplit};
pub use workload::{TopKRequest, WorkloadConfig, ZipfGenerator};
