//! Resilience tests for the REST layer: server-side load shedding and the
//! client's retry + circuit-breaker behaviour against a misbehaving
//! server.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use velox_core::{Velox, VeloxConfig, VeloxServer};
use velox_models::IdentityModel;
use velox_rest::{
    BreakerConfig, BreakerState, ClientError, RestServer, RetryPolicy, ServerConfig, VeloxClient,
};

fn deployments() -> Arc<VeloxServer> {
    let server = Arc::new(VeloxServer::new());
    let model = IdentityModel::new("songs", 2, 0.5);
    let velox =
        Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node()));
    for item in 0..4u64 {
        velox.register_item(item, vec![item as f64, 1.0]);
    }
    server.install("songs", velox);
    server
}

/// Sends one raw HTTP request and returns `(status, body)`.
fn raw_call(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request =
        format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len());
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 =
        response.split_whitespace().nth(1).expect("status line").parse().expect("numeric status");
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

#[test]
fn saturated_server_sheds_with_503() {
    // max_in_flight = 0: every connection is over the limit, so every
    // request is shed. The server must still answer each one promptly
    // with 503 rather than hanging or dropping the connection.
    let config = ServerConfig { max_in_flight: 0, ..ServerConfig::default() };
    let handle = RestServer::with_config(deployments(), config).serve("127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    for _ in 0..3 {
        let (status, body) = raw_call(addr, "GET", "/models", "");
        assert_eq!(status, 503);
        assert!(body.contains("shed"), "shed body: {body}");
    }
    handle.shutdown();
}

#[test]
fn shed_503_carries_retry_after() {
    let config = ServerConfig {
        max_in_flight: 0,
        shed_retry_after: Duration::from_secs(3),
        ..ServerConfig::default()
    };
    let handle = RestServer::with_config(deployments(), config).serve("127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(b"GET /models HTTP/1.1\r\ncontent-length: 0\r\n\r\n").expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let head = response.split("\r\n\r\n").next().unwrap_or("");
    assert!(response.starts_with("HTTP/1.1 503"), "shed response: {response}");
    assert!(
        head.lines().any(|l| l.eq_ignore_ascii_case("retry-after: 3")),
        "missing retry-after header in: {head}"
    );
    handle.shutdown();
}

/// The client must honor a server-provided `Retry-After` in place of its
/// own (much shorter here) exponential backoff, and surface the parsed
/// duration on the error.
#[test]
fn client_honors_retry_after_before_backoff() {
    let config = ServerConfig {
        max_in_flight: 0,
        shed_retry_after: Duration::from_secs(1),
        ..ServerConfig::default()
    };
    let handle = RestServer::with_config(deployments(), config).serve("127.0.0.1:0").expect("bind");
    let client = VeloxClient::new(handle.addr(), "songs")
        .with_timeout(Duration::from_secs(2))
        .with_retry(fast_retry(2))
        .with_breaker(BreakerConfig { failure_threshold: 100, cooldown: Duration::from_secs(5) });
    let started = std::time::Instant::now();
    match client.list_models() {
        Err(ClientError::Server { status: 503, retry_after, .. }) => {
            assert_eq!(retry_after, Some(Duration::from_secs(1)), "Retry-After must be parsed");
        }
        other => panic!("expected shed 503, got {other:?}"),
    }
    // Two attempts with one wait between them: the wait must be the
    // server's 1s, not fast_retry's ~1ms backoff.
    assert!(
        started.elapsed() >= Duration::from_millis(900),
        "client retried after only {:?}; Retry-After was ignored",
        started.elapsed()
    );
    handle.shutdown();
}

#[test]
fn unsaturated_server_does_not_shed() {
    let config = ServerConfig { max_in_flight: 8, ..ServerConfig::default() };
    let handle = RestServer::with_config(deployments(), config).serve("127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    let (status, _) = raw_call(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    handle.shutdown();
}

/// A hand-rolled one-thread server whose behaviour is toggled at runtime:
/// in fail mode it accepts and immediately drops connections; in healthy
/// mode it answers every request `200 {"models": []}`.
struct FlakyServer {
    addr: std::net::SocketAddr,
    failing: Arc<AtomicBool>,
    accepts: Arc<AtomicU32>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl FlakyServer {
    fn start(failing: bool) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let failing = Arc::new(AtomicBool::new(failing));
        let accepts = Arc::new(AtomicU32::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let (failing2, accepts2, stop2) =
            (Arc::clone(&failing), Arc::clone(&accepts), Arc::clone(&stop));
        let thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                accepts2.fetch_add(1, Ordering::AcqRel);
                if failing2.load(Ordering::Acquire) {
                    // Drop the connection without answering: the client
                    // sees a protocol/socket failure.
                    continue;
                }
                // Drain the request head, then answer.
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                let body = r#"{"models": []}"#;
                let response = format!(
                    "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(response.as_bytes());
            }
        });
        FlakyServer { addr, failing, accepts, stop, thread: Some(thread) }
    }

    fn heal(&self) {
        self.failing.store(false, Ordering::Release);
    }
}

impl Drop for FlakyServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn fast_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        jitter: 0.2,
        seed: 42,
    }
}

#[test]
fn client_retries_through_transient_failures() {
    let server = FlakyServer::start(true);
    let client = VeloxClient::new(server.addr, "songs")
        .with_timeout(Duration::from_secs(2))
        .with_retry(fast_retry(5))
        .with_breaker(BreakerConfig { failure_threshold: 100, cooldown: Duration::from_secs(5) });

    // Heal the server from a side thread after the first couple of
    // attempts have failed: the retry loop must pick up the recovery.
    let failing = Arc::clone(&server.failing);
    let healer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(3));
        failing.store(false, Ordering::Release);
    });
    let models = client.list_models().expect("retries should reach the healed server");
    assert_eq!(models, Vec::<String>::new());
    healer.join().unwrap();
    assert!(server.accepts.load(Ordering::Acquire) >= 1);
}

#[test]
fn exhausted_retries_surface_the_error() {
    let server = FlakyServer::start(true);
    let client = VeloxClient::new(server.addr, "songs")
        .with_timeout(Duration::from_secs(2))
        .with_retry(fast_retry(2))
        .with_breaker(BreakerConfig { failure_threshold: 100, cooldown: Duration::from_secs(5) });
    match client.list_models() {
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {}
        other => panic!("expected transport error after retries, got {other:?}"),
    }
    assert_eq!(server.accepts.load(Ordering::Acquire), 2, "one accept per attempt");
}

#[test]
fn breaker_opens_half_opens_and_closes() {
    let server = FlakyServer::start(true);
    let client = VeloxClient::new(server.addr, "songs")
        .with_timeout(Duration::from_secs(2))
        .with_retry(fast_retry(1))
        .with_breaker(BreakerConfig { failure_threshold: 2, cooldown: Duration::from_millis(100) });

    assert_eq!(client.breaker_state("/models"), BreakerState::Closed);
    // Two failing calls (one attempt each) trip the breaker.
    assert!(client.list_models().is_err());
    assert!(client.list_models().is_err());
    assert_eq!(client.breaker_state("/models"), BreakerState::Open);

    // While open, calls short-circuit without touching the network.
    let accepts_when_opened = server.accepts.load(Ordering::Acquire);
    match client.list_models() {
        Err(ClientError::CircuitOpen { endpoint }) => assert_eq!(endpoint, "/models"),
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    assert_eq!(server.accepts.load(Ordering::Acquire), accepts_when_opened);

    // After the cooldown the breaker half-opens and admits a probe.
    std::thread::sleep(Duration::from_millis(120));
    assert_eq!(client.breaker_state("/models"), BreakerState::HalfOpen);

    // A failed probe re-opens it.
    assert!(client.list_models().is_err());
    assert_eq!(client.breaker_state("/models"), BreakerState::Open);

    // A successful probe after the next cooldown closes it.
    server.heal();
    std::thread::sleep(Duration::from_millis(120));
    client.list_models().expect("probe against healed server");
    assert_eq!(client.breaker_state("/models"), BreakerState::Closed);
    client.list_models().expect("closed breaker serves normally");
}

#[test]
fn application_errors_do_not_trip_the_breaker() {
    let handle = RestServer::new(deployments()).serve("127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    let client = VeloxClient::new(addr, "no-such-model")
        .with_retry(fast_retry(1))
        .with_breaker(BreakerConfig { failure_threshold: 1, cooldown: Duration::from_secs(5) });
    for _ in 0..3 {
        assert!(matches!(client.predict(1, 1), Err(ClientError::Server { status: 404, .. })));
    }
    assert_eq!(client.breaker_state("/models/no-such-model/predict"), BreakerState::Closed);
    handle.shutdown();
}
