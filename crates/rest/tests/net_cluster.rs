//! The REST layer fronting a real multi-node TCP cluster: `/cluster/*`
//! routes dispatch over the `Transport` trait, so the same HTTP surface
//! serves the in-process simulator and `velox-net`'s loopback runtime.

use std::sync::Arc;
use std::time::Duration;

use velox_cluster::{Cluster, ClusterConfig, SimTransport};
use velox_core::VeloxServer;
use velox_net::{NetCluster, NetClusterConfig};
use velox_rest::json::Json;
use velox_rest::{ClientError, ClusterBackend, RestServer, VeloxClient};

const DIM: usize = 3;
const LR: f64 = 0.1;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 5) as f64 / 4.0).collect()
}

fn seeded_items() -> Vec<(u64, Vec<f64>)> {
    (0..16u64).map(|i| (i, item_features(i))).collect()
}

fn start_net_cluster() -> Arc<NetCluster> {
    let cluster = NetCluster::start(NetClusterConfig {
        n_nodes: 3,
        user_replication: 2,
        lr: LR,
        wal_root: None,
        workers: 8,
        request_timeout: Duration::from_secs(2),
        ..Default::default()
    })
    .expect("start loopback cluster");
    cluster.publish_item_features(seeded_items());
    Arc::new(cluster)
}

fn rest_over(backend: ClusterBackend) -> velox_rest::RestHandle {
    RestServer::new(Arc::new(VeloxServer::new()))
        .with_cluster(backend)
        .serve("127.0.0.1:0")
        .expect("bind")
}

#[test]
fn cluster_routes_serve_over_real_sockets() {
    let net = start_net_cluster();
    let handle = rest_over(Arc::clone(&net) as ClusterBackend);
    let client = VeloxClient::new(handle.addr(), "unused");

    let uid = 7u64;
    let home = net.home_of_user(uid);
    for i in 0..20u64 {
        let ack = client.cluster_observe(uid, i % 16, 1.0).expect("observe over REST");
        assert_eq!(ack.node, home, "observe must land at the owner");
        assert_eq!(ack.shipped_to, 1, "replica ships before the ack");
    }
    let p = client.cluster_predict(uid, 3).expect("predict over REST");
    assert_eq!(p.node, home);
    assert!(!p.routed);
    assert!(!p.cold_start);
    assert!(p.score.is_finite());

    assert_eq!(client.cluster_health().expect("health"), vec!["up", "up", "up"]);
    handle.shutdown();
}

#[test]
fn cluster_health_reports_detector_liveness() {
    let net = start_net_cluster();
    let handle = rest_over(Arc::clone(&net) as ClusterBackend);
    let client = VeloxClient::new(handle.addr(), "unused");

    // Give the heartbeat prober a few rounds to mark every peer alive.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    loop {
        let resp = client.cluster_health_full().expect("health");
        let nodes = resp.get("nodes").and_then(Json::as_array).expect("nodes array");
        assert_eq!(nodes.len(), 3);
        let all_alive = nodes.iter().all(|n| {
            n.get("liveness").and_then(Json::as_str) == Some("alive")
                && n.get("probes").and_then(Json::as_u64).unwrap_or(0) > 0
        });
        for n in nodes {
            assert!(n.get("liveness").is_some(), "liveness field present: {n:?}");
            assert!(n.get("misses").is_some(), "misses field present");
            assert!(n.get("last_rtt_us").is_some(), "last_rtt_us field present");
        }
        if all_alive {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "detector never marked all nodes alive");
        std::thread::sleep(Duration::from_millis(25));
    }
    handle.shutdown();
}

#[test]
fn cluster_routes_survive_node_kill_with_failover() {
    let net = start_net_cluster();
    let handle = rest_over(Arc::clone(&net) as ClusterBackend);
    let client = VeloxClient::new(handle.addr(), "unused");

    let uid = 4u64;
    let home = net.home_of_user(uid);
    client.cluster_observe(uid, 1, 1.0).expect("observe");
    net.kill_node(home);

    let health = client.cluster_health().expect("health");
    assert_eq!(health[home], "down");

    let p = client.cluster_predict(uid, 1).expect("failover predict over REST");
    assert!(p.routed, "predict must fail over off the dead home");
    assert_ne!(p.node, home);
    handle.shutdown();
}

#[test]
fn same_routes_serve_the_in_process_simulator() {
    let sim_cluster = Arc::new(Cluster::new(ClusterConfig {
        n_nodes: 3,
        user_replication: 2,
        item_replication: 3,
        ..Default::default()
    }));
    for (item, x) in seeded_items() {
        sim_cluster.put_item_features(item, x);
    }
    let sim = Arc::new(SimTransport::new(sim_cluster, LR));
    let handle = rest_over(sim as ClusterBackend);
    let client = VeloxClient::new(handle.addr(), "unused");

    client.cluster_observe(3, 2, 1.0).expect("sim observe over REST");
    let p = client.cluster_predict(3, 2).expect("sim predict over REST");
    assert!(!p.cold_start);
    assert!(p.score.is_finite());
    assert_eq!(client.cluster_health().expect("health"), vec!["up", "up", "up"]);
    handle.shutdown();
}

#[test]
fn membership_routes_reject_rebalance_and_commit_over_http() {
    // A dedicated cluster with join headroom: the happy-path rebalance
    // needs a joinable slot (`max_nodes` > `n_nodes`).
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: 3,
        max_nodes: 4,
        user_replication: 2,
        lr: LR,
        wal_root: None,
        workers: 8,
        request_timeout: Duration::from_secs(2),
        ..Default::default()
    })
    .expect("start loopback cluster");
    net.publish_item_features(seeded_items());
    let net = Arc::new(net);
    let handle = rest_over(Arc::clone(&net) as ClusterBackend);
    let client = VeloxClient::new(handle.addr(), "unused");

    for uid in 0..12u64 {
        client.cluster_observe(uid, uid % 16, 1.0).expect("seed observe");
    }

    // Typed membership rejections surface as 4xx, not 5xx.
    match client.cluster_rebalance(99) {
        Err(ClientError::Server { status: 400, .. }) => {}
        other => panic!("rebalance to unknown node must 400, got {other:?}"),
    }
    match client.cluster_failover(99) {
        Err(ClientError::Server { status: 400, .. }) => {}
        other => panic!("failover of unknown node must 400, got {other:?}"),
    }
    match client.cluster_failover(0) {
        Err(ClientError::Server { status: 400, .. }) => {}
        other => panic!("failover of a live member must 400, got {other:?}"),
    }

    // The kill switch round-trips through the health view's membership
    // plane.
    let membership = |h: &Json| h.get("membership").cloned().expect("membership plane");
    assert!(!client.cluster_set_auto_rebalance(false).expect("disable auto-rebalance"));
    let m = membership(&client.cluster_health_full().expect("health"));
    assert_eq!(m.get("auto_rebalance").and_then(Json::as_bool), Some(false));
    assert!(client.cluster_set_auto_rebalance(true).expect("re-enable auto-rebalance"));
    let m = membership(&client.cluster_health_full().expect("health"));
    assert_eq!(m.get("auto_rebalance").and_then(Json::as_bool), Some(true));

    // Happy path: join a node directly, then hand partitions to it over
    // HTTP and read the committed outcome back out of the ledger.
    let dst = net.join_node().expect("join");
    let moved = client.cluster_rebalance(dst).expect("rebalance over REST");
    assert!(!moved.is_empty(), "join plan must hand over at least one partition");
    let m = membership(&client.cluster_health_full().expect("health"));
    let migrations = m.get("migrations").and_then(Json::as_array).expect("migrations ledger");
    let committed = migrations
        .iter()
        .filter(|e| e.get("outcome").and_then(Json::as_str) == Some("committed"))
        .count();
    assert_eq!(committed, moved.len(), "one committed ledger entry per moved partition");
    for e in migrations {
        assert!(e.get("chunks_streamed").and_then(Json::as_u64).unwrap_or(0) > 0);
    }
    assert!(m.get("migrations_total").and_then(Json::as_u64).unwrap_or(0) >= moved.len() as u64);

    // Idle cancel reports nothing in flight. Last on purpose: the cancel
    // flag stays armed for the next migration.
    assert!(!client.cluster_cancel_migration().expect("cancel"));
    handle.shutdown();
}

#[test]
fn cluster_routes_404_without_a_backend() {
    let handle = RestServer::new(Arc::new(VeloxServer::new())).serve("127.0.0.1:0").expect("bind");
    let client = VeloxClient::new(handle.addr(), "unused");
    match client.cluster_predict(1, 1) {
        Err(ClientError::Server { status: 404, .. }) => {}
        other => panic!("expected 404 without a cluster backend, got {other:?}"),
    }
    handle.shutdown();
}
