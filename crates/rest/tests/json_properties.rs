//! Property-based tests for the JSON codec: serialize → parse is the
//! identity on arbitrary finite JSON values.

use proptest::prelude::*;
use velox_rest::json::Json;

fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1e12f64..1e12).prop_map(Json::Number),
        "[a-zA-Z0-9 _\\-\"\\\\/\n\t\u{00e9}\u{4e16}]{0,20}".prop_map(Json::String),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(|pairs| {
                // JSON objects with duplicate keys round-trip structurally
                // but `get` only sees the first; dedup for a clean identity.
                let mut seen = std::collections::HashSet::new();
                Json::Object(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serialize_parse_round_trip(value in json_strategy()) {
        let text = value.to_string();
        let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("failed to parse {text:?}: {e}"));
        // Numbers may differ in representation but must be equal as f64;
        // Json's PartialEq compares f64 directly, which is what we want.
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,200}") {
        let _ = Json::parse(&input); // must return, never panic
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes_as_str(input in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(s) = std::str::from_utf8(&input) {
            let _ = Json::parse(s);
        }
    }
}
