//! Randomized-property tests for the JSON codec, driven by the in-tree
//! seeded generator (`VeloxRng`): serialize → parse is the identity on
//! arbitrary finite JSON values, and the parser never panics on garbage.

use velox_data::VeloxRng;
use velox_rest::json::Json;

const CASES: usize = 256;

/// Characters exercised in generated strings: ASCII plus the escapes and a
/// couple of multibyte code points.
const STRING_ALPHABET: &[char] =
    &['a', 'Z', '0', '9', ' ', '_', '-', '"', '\\', '/', '\n', '\t', 'é', '世'];

fn random_string(rng: &mut VeloxRng, max_len: usize) -> String {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len).map(|_| STRING_ALPHABET[rng.below(STRING_ALPHABET.len() as u64) as usize]).collect()
}

/// A random JSON value with bounded depth.
fn random_json(rng: &mut VeloxRng, depth: usize) -> Json {
    let leaf = depth == 0 || rng.below(3) == 0;
    if leaf {
        match rng.below(4) {
            0 => Json::Null,
            1 => Json::Bool(rng.below(2) == 1),
            2 => Json::Number(rng.range(-1e12, 1e12)),
            _ => Json::String(random_string(rng, 20)),
        }
    } else if rng.below(2) == 0 {
        let n = rng.below(6) as usize;
        Json::Array((0..n).map(|_| random_json(rng, depth - 1)).collect())
    } else {
        let n = rng.below(6) as usize;
        // Unique keys: objects with duplicate keys round-trip structurally
        // but `get` only sees the first; dedup for a clean identity.
        let mut seen = std::collections::HashSet::new();
        Json::Object(
            (0..n)
                .map(|i| (format!("{}{}", random_string(rng, 6), i), random_json(rng, depth - 1)))
                .filter(|(k, _)| seen.insert(k.clone()))
                .collect(),
        )
    }
}

#[test]
fn serialize_parse_round_trip() {
    let mut rng = VeloxRng::seed_from(0x15_01);
    for _ in 0..CASES {
        let value = random_json(&mut rng, 4);
        let text = value.to_string();
        let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("failed to parse {text:?}: {e}"));
        // Numbers may differ in representation but must be equal as f64;
        // Json's PartialEq compares f64 directly, which is what we want.
        assert_eq!(parsed, value);
    }
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    let mut rng = VeloxRng::seed_from(0x15_02);
    for _ in 0..CASES {
        let len = rng.below(200) as usize;
        // Arbitrary (often invalid) UTF-8; parse only the valid ones.
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = Json::parse(s); // must return, never panic
        }
        // And arbitrary *valid* unicode drawn from whole code-point range.
        let chars: String = (0..rng.below(100))
            .filter_map(|_| char::from_u32(rng.below(0x11_0000) as u32))
            .collect();
        let _ = Json::parse(&chars);
    }
}

/// Structured near-misses: truncations and single-byte corruptions of
/// valid documents — the inputs most likely to trip a hand-rolled parser.
#[test]
fn parser_never_panics_on_corrupted_documents() {
    let mut rng = VeloxRng::seed_from(0x15_03);
    for _ in 0..CASES {
        let text = random_json(&mut rng, 3).to_string();
        let cut = rng.below(text.len() as u64 + 1) as usize;
        if text.is_char_boundary(cut) {
            let _ = Json::parse(&text[..cut]);
        }
        let mut corrupted: Vec<u8> = text.clone().into_bytes();
        if !corrupted.is_empty() {
            let pos = rng.below(corrupted.len() as u64) as usize;
            corrupted[pos] = rng.below(128) as u8;
            if let Ok(s) = std::str::from_utf8(&corrupted) {
                let _ = Json::parse(s);
            }
        }
    }
}
