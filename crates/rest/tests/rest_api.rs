//! End-to-end tests of the REST front end: a real listener on an ephemeral
//! port, raw HTTP over `TcpStream`, JSON in and out.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use velox_core::{Velox, VeloxConfig, VeloxServer};
use velox_models::IdentityModel;
use velox_rest::json::Json;
use velox_rest::RestServer;

fn start() -> (velox_rest::RestHandle, std::net::SocketAddr) {
    let deployments = Arc::new(VeloxServer::new());
    let model = IdentityModel::new("songs", 2, 0.5);
    let velox =
        Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node()));
    for item in 0..10u64 {
        velox.register_item(item, vec![(item as f64 * 0.4).sin(), (item as f64 * 0.4).cos()]);
    }
    deployments.install("songs", velox);
    let handle = RestServer::new(deployments).serve("127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    (handle, addr)
}

/// Sends one HTTP request and returns `(status, parsed JSON body)`.
fn call(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request =
        format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len());
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 =
        response.split_whitespace().nth(1).expect("status line").parse().expect("numeric status");
    let json_body = response.split("\r\n\r\n").nth(1).expect("body");
    (status, Json::parse(json_body).expect("JSON body"))
}

#[test]
fn list_models() {
    let (handle, addr) = start();
    let (status, body) = call(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    let models = body.get("models").unwrap().as_array().unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].as_str(), Some("songs"));
    handle.shutdown();
}

#[test]
fn observe_then_predict() {
    let (handle, addr) = start();
    // Feedback for user 7 on item 3.
    let (status, outcome) =
        call(addr, "POST", "/models/songs/observe", r#"{"uid": 7, "item_id": 3, "y": 2.0}"#);
    assert_eq!(status, 200);
    assert_eq!(outcome.get("trained").unwrap().as_bool(), Some(true));
    assert!(outcome.get("loss").unwrap().as_f64().unwrap() >= 0.0);

    // Prediction reflects the update.
    let (status, pred) = call(addr, "POST", "/models/songs/predict", r#"{"uid": 7, "item_id": 3}"#);
    assert_eq!(status, 200);
    let score = pred.get("score").unwrap().as_f64().unwrap();
    assert!(score > 0.3, "learned positive preference: {score}");
    assert_eq!(pred.get("cached").unwrap().as_bool(), Some(false));

    // Second identical request is cache-served.
    let (_, pred2) = call(addr, "POST", "/models/songs/predict", r#"{"uid": 7, "item_id": 3}"#);
    assert_eq!(pred2.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(pred2.get("score").unwrap().as_f64(), Some(score));
    handle.shutdown();
}

#[test]
fn topk_over_http() {
    let (handle, addr) = start();
    call(addr, "POST", "/models/songs/observe", r#"{"uid": 1, "item_id": 0, "y": 3.0}"#);
    let (status, body) =
        call(addr, "POST", "/models/songs/topk", r#"{"uid": 1, "item_ids": [0, 1, 2, 3, 4]}"#);
    assert_eq!(status, 200);
    let ranked = body.get("ranked").unwrap().as_array().unwrap();
    assert_eq!(ranked.len(), 5);
    // Descending scores.
    let scores: Vec<f64> =
        ranked.iter().map(|pair| pair.as_array().unwrap()[1].as_f64().unwrap()).collect();
    for w in scores.windows(2) {
        assert!(w[0] >= w[1]);
    }
    assert!(body.get("served_item").unwrap().as_u64().unwrap() < 10);
    handle.shutdown();
}

#[test]
fn raw_features_flow() {
    let (handle, addr) = start();
    let (status, _) = call(
        addr,
        "POST",
        "/models/songs/observe",
        r#"{"uid": 2, "features": [1.0, 0.0], "y": 5.0}"#,
    );
    assert_eq!(status, 200);
    let (status, pred) =
        call(addr, "POST", "/models/songs/predict", r#"{"uid": 2, "features": [1.0, 0.0]}"#);
    assert_eq!(status, 200);
    assert!(pred.get("score").unwrap().as_f64().unwrap() > 1.0);
    handle.shutdown();
}

#[test]
fn stats_endpoint() {
    let (handle, addr) = start();
    call(addr, "POST", "/models/songs/observe", r#"{"uid": 1, "item_id": 1, "y": 1.0}"#);
    let (status, stats) = call(addr, "GET", "/models/songs/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stats.get("model_version").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("observations").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("stale").unwrap().as_bool(), Some(false));
    handle.shutdown();
}

#[test]
fn retrain_endpoint() {
    let (handle, addr) = start();
    for item in 0..10u64 {
        call(
            addr,
            "POST",
            "/models/songs/observe",
            &format!(r#"{{"uid": 1, "item_id": {item}, "y": 1.0}}"#),
        );
    }
    let (status, body) = call(addr, "POST", "/models/songs/retrain", "");
    assert_eq!(status, 200);
    assert_eq!(body.get("version").unwrap().as_u64(), Some(2));
    handle.shutdown();
}

#[test]
fn error_paths() {
    let (handle, addr) = start();
    // Unknown model → 404.
    let (status, body) = call(addr, "POST", "/models/nope/predict", r#"{"uid":1,"item_id":1}"#);
    assert_eq!(status, 404);
    assert!(body.get("error").unwrap().as_str().unwrap().contains("nope"));
    // Unknown route → 404.
    let (status, _) = call(addr, "GET", "/frobnicate", "");
    assert_eq!(status, 404);
    // Missing uid → 400.
    let (status, _) = call(addr, "POST", "/models/songs/predict", r#"{"item_id": 1}"#);
    assert_eq!(status, 400);
    // Malformed JSON → 400.
    let (status, _) = call(addr, "POST", "/models/songs/predict", "{not json");
    assert_eq!(status, 400);
    // Unknown item → 400 (model error).
    let (status, _) = call(addr, "POST", "/models/songs/predict", r#"{"uid": 1, "item_id": 999}"#);
    assert_eq!(status, 400);
    // Wrong method → 405.
    let (status, _) = call(addr, "DELETE", "/models/songs/predict", "");
    assert_eq!(status, 405);
    handle.shutdown();
}

#[test]
fn concurrent_clients() {
    let (handle, addr) = start();
    let mut threads = Vec::new();
    for t in 0..8u64 {
        threads.push(std::thread::spawn(move || {
            for i in 0..20u64 {
                let (status, _) = call(
                    addr,
                    "POST",
                    "/models/songs/observe",
                    &format!(r#"{{"uid": {t}, "item_id": {}, "y": 1.0}}"#, i % 10),
                );
                assert_eq!(status, 200);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let (_, stats) = call(addr, "GET", "/models/songs/stats", "");
    assert_eq!(stats.get("observations").unwrap().as_u64(), Some(160));
    handle.shutdown();
}

mod client_tests {
    use super::*;
    use velox_rest::VeloxClient;

    #[test]
    fn typed_client_round_trip() {
        let (handle, addr) = start();
        let client = VeloxClient::new(addr, "songs");

        assert_eq!(client.list_models().unwrap(), vec!["songs"]);

        let obs = client.observe(9, 2, 3.0).unwrap();
        assert!(obs.trained);
        assert!(obs.loss >= 0.0);

        let pred = client.predict(9, 2).unwrap();
        assert!(pred.score > 0.5, "learned the signal: {}", pred.score);
        assert!(!pred.bootstrapped);

        let top = client.top_k(9, &[0, 1, 2, 3]).unwrap();
        assert_eq!(top.ranked.len(), 4);
        assert_eq!(top.ranked[0].0, 2, "trained item ranks first");
        assert!(top.served_item < 10);

        let v = client.retrain().unwrap();
        assert_eq!(v, 2);
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("model_version").unwrap().as_u64(), Some(2));
        handle.shutdown();
    }

    #[test]
    fn typed_client_surfaces_server_errors() {
        let (handle, addr) = start();
        let client = VeloxClient::new(addr, "no-such-model");
        match client.predict(1, 1) {
            Err(velox_rest::ClientError::Server { status: 404, message, .. }) => {
                assert!(message.contains("no-such-model"));
            }
            other => panic!("expected 404 server error, got {other:?}"),
        }
        // Unknown item on a real model → 400.
        let client = VeloxClient::new(addr, "songs");
        assert!(matches!(
            client.predict(1, 999),
            Err(velox_rest::ClientError::Server { status: 400, .. })
        ));
        handle.shutdown();
    }
}
