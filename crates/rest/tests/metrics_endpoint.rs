//! Tests for the observability endpoints: `GET /metrics` serves parseable
//! Prometheus text exposition covering the serving metrics, and
//! `GET /events` serves the lifecycle log as JSON.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use velox_core::{Velox, VeloxConfig, VeloxServer};
use velox_models::IdentityModel;
use velox_rest::json::Json;
use velox_rest::RestServer;

fn start() -> (velox_rest::RestHandle, std::net::SocketAddr) {
    let deployments = Arc::new(VeloxServer::new());
    let model = IdentityModel::new("songs", 2, 0.5);
    let velox =
        Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node()));
    for item in 0..10u64 {
        velox.register_item(item, vec![(item as f64 * 0.4).sin(), (item as f64 * 0.4).cos()]);
    }
    deployments.install("songs", velox);
    let handle = RestServer::new(deployments).serve("127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    (handle, addr)
}

/// Sends one HTTP request, returns `(status, content-type, raw body)`.
fn call_raw(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request =
        format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len());
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 =
        response.split_whitespace().nth(1).expect("status line").parse().expect("numeric status");
    let (head, payload) = response.split_once("\r\n\r\n").expect("header/body split");
    let content_type = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-type: ").map(str::to_string))
        .unwrap_or_default();
    (status, content_type, payload.to_string())
}

/// Minimal structural check of Prometheus text exposition 0.0.4: every
/// non-comment line is `name{labels} value`, every sample's family was
/// declared by a preceding `# TYPE`, and no family is declared twice.
fn check_prometheus(body: &str) -> Vec<String> {
    let mut declared: Vec<String> = Vec::new();
    for line in body.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("family name").to_string();
            let kind = parts.next().expect("metric kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unexpected kind {kind} in {line:?}"
            );
            assert!(!declared.contains(&family), "family {family} declared twice");
            declared.push(family);
        } else if !line.starts_with('#') {
            let name_end = line.find(['{', ' ']).expect("sample name end");
            let name = &line[..name_end];
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|base| declared.iter().any(|d| d == base))
                .unwrap_or(name);
            assert!(
                declared.iter().any(|d| d == family),
                "sample {name} has no preceding # TYPE for {family}"
            );
            let value = line.rsplit(' ').next().expect("value");
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        }
    }
    declared
}

#[test]
fn metrics_exposition_covers_serving_metrics() {
    let (handle, addr) = start();
    // Generate traffic so the serving metrics are non-trivial.
    call_raw(addr, "POST", "/models/songs/observe", r#"{"uid": 1, "item_id": 2, "y": 1.5}"#);
    call_raw(addr, "POST", "/models/songs/predict", r#"{"uid": 1, "item_id": 2}"#);
    call_raw(addr, "POST", "/models/songs/predict", r#"{"uid": 1, "item_id": 2}"#);

    let (status, content_type, body) = call_raw(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(content_type.starts_with("text/plain"), "got content-type {content_type:?}");

    let families = check_prometheus(&body);
    for expected in [
        "velox_predict_latency_ns",
        "velox_observe_latency_ns",
        "velox_online_update_latency_ns",
        "velox_prediction_cache_hits_total",
        "velox_prediction_cache_misses_total",
        "velox_observations_total",
        "velox_rest_request_latency_ns",
    ] {
        assert!(families.iter().any(|f| f == expected), "missing family {expected}: {families:?}");
    }

    // Deployment metrics are labeled with the model name, and the
    // histogram carries the full bucket/sum/count triple.
    assert!(body.contains(r#"model="songs""#), "deployment samples carry the model label");
    assert!(body.contains("velox_predict_latency_ns_bucket"));
    assert!(body.contains(r#"le="+Inf""#));
    assert!(body.contains("velox_predict_latency_ns_count"));

    // The cache counters on this traffic: 2 predicts = 1 miss + 1 hit.
    let counter_value = |name: &str| -> f64 {
        body.lines()
            .filter(|l| l.starts_with(name) && !l.starts_with('#'))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
            .sum()
    };
    assert_eq!(counter_value("velox_prediction_cache_hits_total"), 1.0);
    assert_eq!(counter_value("velox_prediction_cache_misses_total"), 1.0);
    assert_eq!(counter_value("velox_observations_total"), 1.0);
    handle.shutdown();
}

#[test]
fn events_endpoint_serves_lifecycle_log_as_json() {
    let (handle, addr) = start();
    for item in 0..10u64 {
        call_raw(
            addr,
            "POST",
            "/models/songs/observe",
            &format!(r#"{{"uid": 1, "item_id": {item}, "y": 1.0}}"#),
        );
    }
    let (status, _, _) = call_raw(addr, "POST", "/models/songs/retrain", "");
    assert_eq!(status, 200);

    let (status, content_type, body) = call_raw(addr, "GET", "/events", "");
    assert_eq!(status, 200);
    assert!(content_type.starts_with("application/json"));
    let parsed = Json::parse(&body).expect("valid JSON");
    let events = parsed.get("events").expect("events key").as_array().expect("array");
    assert!(!events.is_empty(), "retrain must have produced events");

    let kinds: Vec<&str> =
        events.iter().map(|e| e.get("kind").unwrap().as_str().unwrap()).collect();
    assert!(kinds.contains(&"retrain_start"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"retrain_finish"));
    assert!(kinds.contains(&"version_swap"));
    for event in events {
        assert_eq!(event.get("model").unwrap().as_str(), Some("songs"));
        assert!(event.get("seq").unwrap().as_u64().is_some());
        assert!(event.get("at_unix_ms").unwrap().as_u64().is_some());
        assert!(matches!(event.get("fields"), Some(Json::Object(_))));
    }
    handle.shutdown();
}

/// The exposition cache: within the TTL a scrape is served verbatim from
/// cache (traffic between scrapes is invisible), but installing a new
/// deployment invalidates immediately — the name-set check, not the clock.
#[test]
fn metrics_exposition_is_cached_until_the_deployment_set_changes() {
    let deployments = Arc::new(VeloxServer::new());
    let model = IdentityModel::new("songs", 2, 0.5);
    let velox =
        Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node()));
    for item in 0..10u64 {
        velox.register_item(item, vec![(item as f64 * 0.4).sin(), (item as f64 * 0.4).cos()]);
    }
    deployments.install("songs", velox);
    let config = velox_rest::ServerConfig {
        // Far beyond the test's runtime, so the only invalidation that can
        // fire is the deployment-set change.
        metrics_cache_ttl: std::time::Duration::from_secs(600),
        ..Default::default()
    };
    let handle = RestServer::with_config(Arc::clone(&deployments), config)
        .serve("127.0.0.1:0")
        .expect("bind");
    let addr = handle.addr();

    call_raw(addr, "POST", "/models/songs/observe", r#"{"uid": 1, "item_id": 2, "y": 1.5}"#);
    let (_, _, first) = call_raw(addr, "GET", "/metrics", "");

    // New traffic bumps the live counters, but the cached body is served.
    call_raw(addr, "POST", "/models/songs/observe", r#"{"uid": 1, "item_id": 3, "y": 0.5}"#);
    let (_, _, second) = call_raw(addr, "GET", "/metrics", "");
    assert_eq!(first, second, "within the TTL the cached exposition is served verbatim");

    // Installing a model changes the deployment set: immediate refresh.
    let other = IdentityModel::new("films", 2, 0.5);
    deployments.install(
        "films",
        Arc::new(Velox::deploy(Arc::new(other), HashMap::new(), VeloxConfig::single_node())),
    );
    let (_, _, third) = call_raw(addr, "GET", "/metrics", "");
    assert!(third.contains(r#"model="films""#), "new deployment visible without waiting out TTL");
    assert_ne!(second, third);
    handle.shutdown();
}

#[test]
fn request_latency_is_tracked_per_endpoint() {
    let (handle, addr) = start();
    call_raw(addr, "GET", "/models", "");
    call_raw(addr, "POST", "/models/songs/predict", r#"{"uid": 1, "item_id": 2}"#);
    let (_, _, body) = call_raw(addr, "GET", "/metrics", "");
    assert!(
        body.contains(r#"velox_rest_request_latency_ns_count{endpoint="models"}"#),
        "per-endpoint labels present"
    );
    assert!(body.contains(r#"velox_rest_request_latency_ns_count{endpoint="predict"}"#));
    handle.shutdown();
}
