//! HTTP tests for the serving-tier routes: `GET /models` backend
//! listings, `POST /models/<name>/alias` flips, batched predict routing,
//! typed-registry-error surfacing as 400s, and the batched
//! `/cluster/predict` path.

use std::collections::HashMap;
use std::sync::Arc;

use velox_cluster::{Cluster, ClusterConfig, SimTransport};
use velox_core::{Velox, VeloxConfig, VeloxServer};
use velox_models::IdentityModel;
use velox_rest::{ClientError, RestServer, VeloxClient};
use velox_serve::{CustomScorer, ServeTier, TransportBackend, VeloxBackend, CLUSTER_BACKEND};

fn serving_fixture() -> (Arc<ServeTier>, Arc<VeloxServer>) {
    let tier = ServeTier::new();
    let deployments = Arc::new(VeloxServer::new());

    // A Velox deployment registered both as a REST deployment and as a
    // tier backend under the same name: predicts route through the tier.
    let model = IdentityModel::new("songs", 2, 0.5);
    let velox =
        Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node()));
    for item in 0..10u64 {
        velox.register_item(item, vec![(item as f64 * 0.4).sin(), (item as f64 * 0.4).cos()]);
    }
    deployments.install("songs", Arc::clone(&velox));
    tier.register("songs", Arc::new(VeloxBackend::new(velox))).unwrap();

    // A two-version custom scorer for alias flipping.
    tier.register("ads", Arc::new(CustomScorer::from_fn(|_, _| Ok(1.0)))).unwrap();
    tier.register("ads", Arc::new(CustomScorer::from_fn(|_, _| Ok(2.0)))).unwrap();

    (tier, deployments)
}

#[test]
fn models_listing_includes_backends_with_batch_stats() {
    let (tier, deployments) = serving_fixture();
    let handle = RestServer::new(deployments).with_serving(tier).serve("127.0.0.1:0").unwrap();
    let client = VeloxClient::new(handle.addr(), "songs");

    // Serve a few predictions so the lane stats are non-trivial.
    for i in 0..5u64 {
        let p = client.predict(1, i).expect("tier predict");
        assert!(p.score.is_finite());
    }

    let names = client.list_models().expect("list models");
    assert_eq!(names, vec!["songs"], "legacy models array intact");

    let mut backends = client.list_backends().expect("list backends");
    backends.sort_by(|a, b| a.name.cmp(&b.name));
    assert_eq!(backends.len(), 2);
    assert_eq!(backends[0].name, "ads");
    assert_eq!(backends[0].kind, "custom");
    assert_eq!(backends[0].serving_version, 1, "second version retained but not serving");
    assert_eq!(backends[0].versions, vec![1, 2]);
    assert_eq!(backends[1].name, "songs");
    assert_eq!(backends[1].kind, "velox");
    assert_eq!(backends[1].requests, 5, "lane counted the batched predicts");
    assert!(backends[1].batches >= 1);
}

#[test]
fn alias_flip_changes_the_served_score_and_registry_errors_are_400() {
    let (tier, deployments) = serving_fixture();
    let handle = RestServer::new(deployments).with_serving(tier).serve("127.0.0.1:0").unwrap();
    let client = VeloxClient::new(handle.addr(), "ads");

    assert_eq!(client.predict(1, 1).unwrap().score, 1.0, "v1 serves before the flip");
    let previous = client.flip_alias(2).expect("flip alias");
    assert_eq!(previous, 1);
    assert_eq!(client.predict(1, 1).unwrap().score, 2.0, "v2 serves after the flip");

    // Unretained version and unknown name: typed registry errors, 400.
    match client.flip_alias(99).unwrap_err() {
        ClientError::Server { status, message, .. } => {
            assert_eq!(status, 400);
            assert!(message.contains("no retained version"), "got: {message}");
        }
        other => panic!("expected server error, got {other:?}"),
    }
    let ghost = VeloxClient::new(handle.addr(), "ghost");
    match ghost.flip_alias(1).unwrap_err() {
        ClientError::Server { status, message, .. } => {
            assert_eq!(status, 400);
            assert!(message.contains("not registered"), "got: {message}");
        }
        other => panic!("expected server error, got {other:?}"),
    }
}

#[test]
fn tier_predict_response_carries_batching_provenance() {
    let (tier, deployments) = serving_fixture();
    let handle =
        RestServer::new(deployments).with_serving(Arc::clone(&tier)).serve("127.0.0.1:0").unwrap();

    // Raw request so the provenance fields are visible.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let body = r#"{"uid": 1, "item_id": 3}"#;
    let request = format!(
        "POST /models/songs/predict HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let json_body = response.split("\r\n\r\n").nth(1).expect("body");
    let json = velox_rest::json::Json::parse(json_body).expect("json");
    assert_eq!(json.get("batched").and_then(velox_rest::json::Json::as_bool), Some(true));
    assert_eq!(
        json.get("backend").and_then(|j| j.as_str().map(String::from)),
        Some("songs".to_string())
    );
    assert_eq!(json.get("backend_version").and_then(velox_rest::json::Json::as_u64), Some(1));
    assert_eq!(
        json.get("degradation").and_then(|j| j.as_str().map(String::from)),
        Some("full".to_string()),
        "Velox fidelity fields survive the batched path"
    );
}

#[test]
fn cluster_predict_routes_through_the_tier_when_cluster_backend_registered() {
    let cluster = Arc::new(Cluster::new(ClusterConfig { n_nodes: 3, ..Default::default() }));
    cluster.publish_item_features((0..8u64).map(|i| (i, vec![0.1 * i as f64, 0.2])).collect());
    let transport: Arc<dyn velox_cluster::Transport + Send + Sync> =
        Arc::new(SimTransport::new(cluster, 0.1));
    for i in 0..8u64 {
        transport.observe(7, i, 1.0).unwrap();
    }

    let tier = ServeTier::new();
    tier.register(CLUSTER_BACKEND, Arc::new(TransportBackend::new(Arc::clone(&transport))))
        .unwrap();
    let handle = RestServer::new(Arc::new(VeloxServer::new()))
        .with_cluster(transport)
        .with_serving(Arc::clone(&tier))
        .serve("127.0.0.1:0")
        .unwrap();
    let client = VeloxClient::new(handle.addr(), "unused");

    let p = client.cluster_predict(7, 3).expect("batched cluster predict");
    assert!(p.score.is_finite());
    assert!(!p.cold_start, "user 7 has weights");
    let stats = client.list_backends().unwrap();
    let lane = stats.iter().find(|b| b.name == CLUSTER_BACKEND).expect("cluster backend listed");
    assert_eq!(lane.kind, "cluster");
    assert_eq!(lane.requests, 1, "the predict went through the batching lane");

    // Observes still take the direct transport path.
    let ack = client.cluster_observe(7, 3, 1.0).expect("observe");
    assert!(ack.ts >= 1, "the owner assigned a logical timestamp");
    drop(handle);
    tier.shutdown();
}

#[test]
fn unregistered_names_keep_the_direct_deployment_path() {
    let (tier, deployments) = serving_fixture();
    // "films" is a REST deployment but NOT a tier backend.
    let model = IdentityModel::new("films", 2, 0.5);
    let velox =
        Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node()));
    velox.register_item(0, vec![0.5, 0.5]);
    deployments.install("films", velox);
    let handle = RestServer::new(deployments).with_serving(tier).serve("127.0.0.1:0").unwrap();
    let client = VeloxClient::new(handle.addr(), "films");
    let p = client.predict(1, 0).expect("direct predict");
    assert!(p.score.is_finite());
    let backends = client.list_backends().unwrap();
    assert!(backends.iter().all(|b| b.name != "films"));
}

#[test]
fn duplicate_registration_surfaces_the_typed_error() {
    let tier = ServeTier::new();
    tier.register_new("m", Arc::new(CustomScorer::from_fn(|_, _| Ok(1.0)))).unwrap();
    let err = tier.register_new("m", Arc::new(CustomScorer::from_fn(|_, _| Ok(2.0)))).unwrap_err();
    assert!(err.to_string().contains("already registered"));
}
