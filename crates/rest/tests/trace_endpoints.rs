//! REST tracing surface: `/cluster/*` responses carry a `trace_id`,
//! `GET /trace/<id>` reassembles the span tree rooted at the REST
//! ingress, and `GET /traces/slow` indexes kept traces.

use std::sync::Arc;
use std::time::Duration;

use velox_core::server::VeloxServer;
use velox_net::{NetCluster, NetClusterConfig};
use velox_obs::TraceConfig;
use velox_rest::client::VeloxClient;
use velox_rest::json::Json;
use velox_rest::server::{RestHandle, RestServer};

const DIM: usize = 3;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 5) as f64 / 4.0).collect()
}

fn start_traced_rest() -> (RestHandle, VeloxClient) {
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: 3,
        user_replication: 2,
        lr: 0.1,
        wal_root: None,
        workers: 8,
        request_timeout: Duration::from_secs(2),
        trace: TraceConfig::sample_all(),
        ..Default::default()
    })
    .expect("start traced cluster");
    net.publish_item_features((0..16u64).map(|i| (i, item_features(i))).collect());
    let handle = RestServer::new(Arc::new(VeloxServer::new()))
        .with_cluster(Arc::new(net))
        .serve("127.0.0.1:0")
        .expect("serve");
    let client = VeloxClient::new(handle.addr(), "unused");
    (handle, client)
}

fn kind_of(node: &Json) -> &str {
    node.get("kind").and_then(Json::as_str).unwrap_or("?")
}

#[test]
fn predict_returns_trace_id_and_trace_endpoint_reassembles_the_tree() {
    let (_handle, client) = start_traced_rest();
    client.cluster_observe(7, 3, 1.0).expect("observe");
    let p = client.cluster_predict(7, 3).expect("predict");
    let trace_id = p.trace_id.expect("sample_all: every request carries a trace id");
    assert_eq!(trace_id.len(), 16, "trace ids are zero-padded 16-hex strings");

    let trace = client.trace(&trace_id).expect("GET /trace/<id>");
    assert_eq!(trace.get("trace_id").and_then(Json::as_str), Some(trace_id.as_str()));
    let span_count = trace.get("span_count").and_then(Json::as_u64).unwrap() as usize;
    assert!(span_count >= 4, "expected rest→cluster→rpc→server→node chain, got {span_count}");

    // The reassembled tree is rooted at the REST ingress span, with the
    // cluster predict span directly beneath it.
    let tree = trace.get("tree").and_then(Json::as_array).expect("tree array");
    assert_eq!(tree.len(), 1, "one root");
    let root = &tree[0];
    assert_eq!(kind_of(root), "rest_request");
    assert_eq!(root.get("node").and_then(Json::as_str), Some("front"));
    let children = root.get("children").and_then(Json::as_array).expect("children");
    assert!(children.iter().any(|c| kind_of(c) == "cluster_predict"), "missing cluster_predict");
}

#[test]
fn observe_trace_reaches_the_replica_through_rest() {
    let (_handle, client) = start_traced_rest();
    let o = client.cluster_observe(4, 2, 1.0).expect("observe");
    let trace_id = o.trace_id.expect("trace id");
    let trace = client.trace(&trace_id).expect("GET /trace/<id>");
    let spans = trace.get("spans").and_then(Json::as_array).expect("spans");
    let kinds: Vec<&str> = spans.iter().map(kind_of).collect();
    for want in ["rest_request", "cluster_observe", "rpc_call", "server_recv", "node_observe"] {
        assert!(kinds.contains(&want), "missing {want} in {kinds:?}");
    }
    assert!(kinds.contains(&"ship_replica"), "replication on: expected a ship hop in {kinds:?}");
}

#[test]
fn slow_traces_lists_kept_traces_and_unknown_ids_are_404() {
    let (_handle, client) = start_traced_rest();
    let p = client.cluster_predict(11, 1).expect("predict");
    let slow = client.slow_traces().expect("GET /traces/slow");
    let traces = slow.get("traces").and_then(Json::as_array).expect("traces array");
    assert!(!traces.is_empty(), "sample_all keeps every trace");
    let ids: Vec<&str> =
        traces.iter().filter_map(|t| t.get("trace_id").and_then(Json::as_str)).collect();
    assert!(ids.contains(&p.trace_id.as_deref().unwrap()), "kept index must list the request");
    for t in traces {
        let reason = t.get("reason").and_then(Json::as_str).unwrap();
        assert!(reason == "head_sampled" || reason == "slow", "unexpected reason {reason}");
    }

    // A well-formed but never-issued id is a 404, not a 500 or empty 200.
    let err = client.trace("00000000000000ff").unwrap_err();
    assert!(
        matches!(err, velox_rest::client::ClientError::Server { status: 404, .. }),
        "expected 404, got {err:?}"
    );
}
