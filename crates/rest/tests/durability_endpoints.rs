//! REST surface of the durability subsystem: `POST
//! /models/{name}/checkpoint` persists the deployment,
//! `POST /models/{name}/recover` rebuilds it strictly from disk (the same
//! path a crashed process takes on restart), and both fail cleanly on
//! memory-only deployments.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use velox_core::{DurabilityConfig, Velox, VeloxConfig, VeloxModel, VeloxServer};
use velox_models::IdentityModel;
use velox_rest::json::Json;
use velox_rest::RestServer;
use velox_storage::ScratchDir;

/// Sends one HTTP request, returns `(status, parsed JSON body)`.
fn call(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request =
        format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len());
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 =
        response.split_whitespace().nth(1).expect("status line").parse().expect("numeric status");
    let (_, payload) = response.split_once("\r\n\r\n").expect("header/body split");
    (status, Json::parse(payload).expect("JSON body"))
}

fn durable_config(scratch: &ScratchDir) -> VeloxConfig {
    VeloxConfig {
        durability: Some(DurabilityConfig::new(scratch.join("state"))),
        ..VeloxConfig::single_node()
    }
}

fn start_durable(
    scratch: &ScratchDir,
) -> (velox_rest::RestHandle, std::net::SocketAddr, Arc<VeloxServer>) {
    let deployments = Arc::new(VeloxServer::new());
    let (velox, _report) = Velox::deploy_durable(
        |_| Ok(Arc::new(IdentityModel::new("songs", 2, 0.5)) as Arc<dyn VeloxModel>),
        HashMap::new(),
        durable_config(scratch),
    )
    .expect("durable deploy");
    for item in 0..10u64 {
        velox.register_item(item, vec![(item as f64 * 0.4).sin(), (item as f64 * 0.4).cos()]);
    }
    deployments.install("songs", Arc::new(velox));
    let handle = RestServer::new(Arc::clone(&deployments)).serve("127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    (handle, addr, deployments)
}

fn observe(addr: std::net::SocketAddr, uid: u64, item: u64, y: f64) {
    let (status, _) = call(
        addr,
        "POST",
        "/models/songs/observe",
        &format!(r#"{{"uid": {uid}, "item_id": {item}, "y": {y}}}"#),
    );
    assert_eq!(status, 200);
}

#[test]
fn checkpoint_and_recover_round_trip_over_rest() {
    let scratch = ScratchDir::new("rest-durable");
    let (handle, addr, _deployments) = start_durable(&scratch);

    for i in 0..6u64 {
        observe(addr, i % 3, i % 10, 1.0 + i as f64 * 0.1);
    }

    // Checkpoint covers the six observations.
    let (status, body) = call(addr, "POST", "/models/songs/checkpoint", "");
    assert_eq!(status, 200, "checkpoint failed: {body:?}");
    assert_eq!(body.get("seq").and_then(Json::as_u64), Some(1));
    assert_eq!(body.get("wal_offset").and_then(Json::as_u64), Some(6));

    // More observations land only in the WAL tail.
    for i in 0..4u64 {
        observe(addr, i % 2, i % 10, -0.5);
    }

    // Recovery drill: checkpoint restore + WAL-tail replay of exactly the
    // four post-checkpoint records.
    let (status, body) = call(addr, "POST", "/models/songs/recover", "");
    assert_eq!(status, 200, "recover failed: {body:?}");
    assert_eq!(body.get("checkpoint_seq").and_then(Json::as_u64), Some(1));
    assert_eq!(body.get("checkpoint_wal_offset").and_then(Json::as_u64), Some(6));
    assert_eq!(body.get("replayed").and_then(Json::as_u64), Some(4));
    assert_eq!(body.get("torn").and_then(Json::as_bool), Some(false));
    assert_eq!(body.get("apply_failures").and_then(Json::as_u64), Some(0));

    // The recovered deployment serves: full observation count, durability
    // attached, and the API still works end to end.
    let (status, stats) = call(addr, "GET", "/models/songs/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stats.get("observations").and_then(Json::as_u64), Some(10));
    let durability = stats.get("durability").expect("durability stats");
    assert_eq!(durability.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(durability.get("recovery_replayed").and_then(Json::as_u64), Some(4));

    let (status, _) = call(addr, "POST", "/models/songs/predict", r#"{"uid": 1, "item_id": 2}"#);
    assert_eq!(status, 200);
    observe(addr, 1, 2, 0.25);
    let (_, stats) = call(addr, "GET", "/models/songs/stats", "");
    assert_eq!(stats.get("observations").and_then(Json::as_u64), Some(11));

    handle.shutdown();
}

#[test]
fn durability_endpoints_reject_memory_only_deployments() {
    let deployments = Arc::new(VeloxServer::new());
    let model = IdentityModel::new("songs", 2, 0.5);
    let velox =
        Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node()));
    deployments.install("songs", velox);
    let handle = RestServer::new(deployments).serve("127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    for path in ["/models/songs/checkpoint", "/models/songs/recover"] {
        let (status, body) = call(addr, "POST", path, "");
        assert_eq!(status, 400, "{path} must reject a memory-only deployment");
        assert!(
            body.get("error").and_then(Json::as_str).unwrap_or("").contains("durability"),
            "error mentions durability: {body:?}"
        );
    }
    // An unknown model is still a 404, not a durability error.
    let (status, _) = call(addr, "POST", "/models/ghost/checkpoint", "");
    assert_eq!(status, 404);
    handle.shutdown();
}
