//! A typed Rust client for the Velox REST API.
//!
//! The application tier in the paper consumes Velox over its RESTful
//! interface; this client gives Rust applications a typed façade over that
//! wire protocol — same `std::net` + in-crate JSON stack as the server, no
//! HTTP dependency. One TCP connection per request (the server speaks
//! `Connection: close`).
//!
//! The client is resilient by default: transient failures (socket errors,
//! 5xx, 429 shed responses) are retried with exponential backoff and
//! jitter, and a per-endpoint circuit breaker stops hammering an endpoint
//! that keeps failing, re-probing it after a cooldown.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The response was not valid HTTP + JSON.
    Protocol(String),
    /// The server answered with an error status; the JSON `error` message
    /// is included.
    Server {
        /// HTTP status code.
        status: u16,
        /// The server's error message.
        message: String,
        /// Parsed `Retry-After` header (delta-seconds form), when the
        /// server sent one — load-shedding 503s do. The retry loop honors
        /// it in place of its own exponential backoff.
        retry_after: Option<Duration>,
    },
    /// The circuit breaker for this endpoint is open; the request was not
    /// sent. Retry after the breaker cooldown.
    CircuitOpen {
        /// The endpoint path whose breaker is open.
        endpoint: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { status, message, .. } => {
                write!(f, "server error {status}: {message}")
            }
            ClientError::CircuitOpen { endpoint } => {
                write!(f, "circuit breaker open for {endpoint}; request not sent")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Retry tuning for transient failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a uniform
    /// factor in `[1 - jitter, 1 + jitter]` so synchronized clients don't
    /// retry in lockstep.
    pub jitter: f64,
    /// Seed for the jitter RNG (deterministic backoff schedules in tests).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            jitter: 0.2,
            seed: 0xC1_1E_47,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive transient failures on one endpoint that trip the
    /// breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects calls before allowing a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 5, cooldown: Duration::from_secs(5) }
    }
}

/// Circuit-breaker state for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are rejected without touching the network.
    Open,
    /// Cooldown elapsed: the next request is a probe; its outcome closes
    /// or re-opens the breaker.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerEntry {
    consecutive_failures: u32,
    open: bool,
    opened_at: Instant,
}

/// Mutable resilience state behind one lock: the jitter RNG plus the
/// per-endpoint breakers.
#[derive(Debug)]
struct Resilience {
    rng_state: u64,
    breakers: HashMap<String, BreakerEntry>,
}

/// splitmix64: small, seedable, and good enough for jitter. Kept local so
/// the REST crate stays free of intra-workspace dependencies beyond
/// velox-core.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Extracts a delta-seconds `Retry-After` header from a raw response head
/// (status line + headers). The HTTP-date form is not supported — this
/// workspace's servers only emit the seconds form.
fn retry_after(head: &str) -> Option<Duration> {
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if !name.trim().eq_ignore_ascii_case("retry-after") {
            return None;
        }
        value.trim().parse::<u64>().ok().map(Duration::from_secs)
    })
}

/// A point-prediction result.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientPrediction {
    /// Predicted score.
    pub score: f64,
    /// Served from the prediction cache.
    pub cached: bool,
    /// Served from the new-user bootstrap.
    pub bootstrapped: bool,
    /// The server's degradation level for this request (`"full"`,
    /// `"replica"`, `"stale_cache"`, or `"bootstrap"`).
    pub degradation: String,
}

/// A topK result.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientTopK {
    /// `(item id, score)` ranked descending.
    pub ranked: Vec<(u64, f64)>,
    /// The item the system chose to serve.
    pub served_item: u64,
    /// Whether the serve was validation-randomized.
    pub randomized: bool,
}

/// An observe acknowledgement.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientObserve {
    /// Prediction before the update.
    pub predicted_before: f64,
    /// Loss of that prediction.
    pub loss: f64,
    /// Whether the observation was trained on.
    pub trained: bool,
    /// Whether the observation was buffered for redo because its user
    /// partition had no live replica (trained is `false` until a recovered
    /// node drains the queue).
    pub deferred: bool,
}

/// A cluster-route prediction (`POST /cluster/predict`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientClusterPredict {
    /// Predicted score `wᵤ·x`.
    pub score: f64,
    /// Node that computed the score.
    pub node: usize,
    /// Served by a node other than the user's home partition.
    pub routed: bool,
    /// No weights existed for the user; the score is the zero prior.
    pub cold_start: bool,
    /// Hex trace id when the request was sampled (`GET /trace/<id>`).
    pub trace_id: Option<String>,
}

/// A cluster-route observe acknowledgement (`POST /cluster/observe`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientClusterObserve {
    /// Node that applied the update.
    pub node: usize,
    /// Logical timestamp the owner assigned.
    pub ts: u64,
    /// Replicas the record was shipped to before the ack.
    pub shipped_to: usize,
    /// Hex trace id when the request was sampled (`GET /trace/<id>`).
    pub trace_id: Option<String>,
}

/// A typed client bound to one Velox REST endpoint and one model name.
pub struct VeloxClient {
    addr: SocketAddr,
    model: String,
    timeout: Duration,
    retry: RetryPolicy,
    breaker: BreakerConfig,
    resilience: Mutex<Resilience>,
}

impl VeloxClient {
    /// Creates a client for `model` at `addr`.
    ///
    /// # Panics
    /// Panics if `model` contains characters that cannot appear in a URL
    /// path segment (the client does not implement percent-encoding).
    pub fn new(addr: SocketAddr, model: impl Into<String>) -> Self {
        let model = model.into();
        assert!(
            !model.is_empty()
                && model
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.'),
            "model name must be URL-path-safe ([A-Za-z0-9._-])"
        );
        let retry = RetryPolicy::default();
        let rng_state = retry.seed;
        VeloxClient {
            addr,
            model,
            timeout: Duration::from_secs(10),
            retry,
            breaker: BreakerConfig::default(),
            resilience: Mutex::new(Resilience { rng_state, breakers: HashMap::new() }),
        }
    }

    /// Overrides the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.resilience.get_mut().unwrap().rng_state = retry.seed;
        self.retry = retry;
        self
    }

    /// Overrides the circuit-breaker tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// The effective breaker state for an endpoint path (for example
    /// `/models/songs/predict`). Endpoints never seen are `Closed`; an
    /// open breaker whose cooldown has elapsed reports `HalfOpen`.
    pub fn breaker_state(&self, path: &str) -> BreakerState {
        let resilience = self.resilience.lock().unwrap();
        match resilience.breakers.get(path) {
            None => BreakerState::Closed,
            Some(entry) if !entry.open => BreakerState::Closed,
            Some(entry) if entry.opened_at.elapsed() >= self.breaker.cooldown => {
                BreakerState::HalfOpen
            }
            Some(_) => BreakerState::Open,
        }
    }

    /// Breaker admission gate: rejects while open, lets a probe through
    /// once the cooldown has elapsed.
    fn admit(&self, path: &str) -> Result<(), ClientError> {
        let resilience = self.resilience.lock().unwrap();
        if let Some(entry) = resilience.breakers.get(path) {
            if entry.open && entry.opened_at.elapsed() < self.breaker.cooldown {
                return Err(ClientError::CircuitOpen { endpoint: path.to_string() });
            }
        }
        Ok(())
    }

    fn record_success(&self, path: &str) {
        let mut resilience = self.resilience.lock().unwrap();
        if let Some(entry) = resilience.breakers.get_mut(path) {
            entry.consecutive_failures = 0;
            entry.open = false;
        }
    }

    fn record_failure(&self, path: &str) {
        let mut resilience = self.resilience.lock().unwrap();
        let entry = resilience.breakers.entry(path.to_string()).or_insert(BreakerEntry {
            consecutive_failures: 0,
            open: false,
            opened_at: Instant::now(),
        });
        if entry.open {
            // A failed half-open probe: re-open and restart the cooldown.
            entry.opened_at = Instant::now();
            return;
        }
        entry.consecutive_failures += 1;
        if entry.consecutive_failures >= self.breaker.failure_threshold {
            entry.open = true;
            entry.opened_at = Instant::now();
        }
    }

    /// Whether an error is worth retrying: socket failures, garbled
    /// responses, server-side 5xx, and 429/503-style shedding. Other 4xx
    /// are the caller's bug and retrying cannot help.
    fn retryable(e: &ClientError) -> bool {
        match e {
            ClientError::Io(_) | ClientError::Protocol(_) => true,
            ClientError::Server { status, .. } => *status >= 500 || *status == 429,
            ClientError::CircuitOpen { .. } => false,
        }
    }

    /// Exponential backoff with jitter for retry `attempt` (1-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.retry.base_backoff.as_secs_f64() * 2f64.powi(attempt as i32 - 1);
        let capped = exp.min(self.retry.max_backoff.as_secs_f64());
        let unit = {
            let mut resilience = self.resilience.lock().unwrap();
            (splitmix64(&mut resilience.rng_state) >> 11) as f64 / (1u64 << 53) as f64
        };
        let factor = 1.0 + self.retry.jitter * (2.0 * unit - 1.0);
        Duration::from_secs_f64((capped * factor).max(0.0))
    }

    /// One call with retries and breaker accounting. The breaker is
    /// checked once on entry — a call already admitted keeps its full
    /// retry budget even if its own failures trip the breaker; later
    /// calls are the ones short-circuited.
    fn call(&self, method: &str, path: &str, body: &str) -> Result<Json, ClientError> {
        self.admit(path)?;
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.call_once(method, path, body) {
                Ok(json) => {
                    self.record_success(path);
                    return Ok(json);
                }
                Err(e) if Self::retryable(&e) => {
                    self.record_failure(path);
                    if attempt >= self.retry.max_attempts.max(1) {
                        return Err(e);
                    }
                    // A server that said how long to back off (Retry-After
                    // on a shed 503) knows better than our guess; fall back
                    // to jittered exponential backoff otherwise.
                    let wait = match &e {
                        ClientError::Server { retry_after: Some(wait), .. } => *wait,
                        _ => self.backoff(attempt),
                    };
                    std::thread::sleep(wait);
                }
                Err(e) => {
                    // The server processed the request and rejected it at
                    // the application level: the endpoint is healthy.
                    self.record_success(path);
                    return Err(e);
                }
            }
        }
    }

    fn call_once(&self, method: &str, path: &str, body: &str) -> Result<Json, ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut stream = stream;
        let request = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol("missing status line".into()))?;
        let (head, json_text) = response
            .split_once("\r\n\r\n")
            .ok_or_else(|| ClientError::Protocol("missing body".into()))?;
        let json = Json::parse(json_text)
            .map_err(|e| ClientError::Protocol(format!("bad JSON body: {e}")))?;
        if status != 200 {
            let message =
                json.get("error").and_then(Json::as_str).unwrap_or("unknown error").to_string();
            return Err(ClientError::Server { status, message, retry_after: retry_after(head) });
        }
        Ok(json)
    }

    /// `predict(uid, item)` over the wire.
    pub fn predict(&self, uid: u64, item_id: u64) -> Result<ClientPrediction, ClientError> {
        let body = Json::object(vec![
            ("uid", Json::Number(uid as f64)),
            ("item_id", Json::Number(item_id as f64)),
        ]);
        let resp =
            self.call("POST", &format!("/models/{}/predict", self.model), &body.to_string())?;
        Ok(ClientPrediction {
            score: resp.get("score").and_then(Json::as_f64).unwrap_or(f64::NAN),
            cached: resp.get("cached").and_then(Json::as_bool).unwrap_or(false),
            bootstrapped: resp.get("bootstrapped").and_then(Json::as_bool).unwrap_or(false),
            degradation: resp
                .get("degradation")
                .and_then(Json::as_str)
                .unwrap_or("full")
                .to_string(),
        })
    }

    /// `topK(uid, items)` over the wire.
    pub fn top_k(&self, uid: u64, item_ids: &[u64]) -> Result<ClientTopK, ClientError> {
        let body = Json::object(vec![
            ("uid", Json::Number(uid as f64)),
            ("item_ids", Json::Array(item_ids.iter().map(|&i| Json::Number(i as f64)).collect())),
        ]);
        let resp = self.call("POST", &format!("/models/{}/topk", self.model), &body.to_string())?;
        let ranked = resp
            .get("ranked")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing ranked".into()))?
            .iter()
            .filter_map(|pair| {
                let pair = pair.as_array()?;
                Some((pair.first()?.as_u64()?, pair.get(1)?.as_f64()?))
            })
            .collect();
        Ok(ClientTopK {
            ranked,
            served_item: resp
                .get("served_item")
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol("missing served_item".into()))?,
            randomized: resp.get("randomized").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// `observe(uid, item, y)` over the wire.
    pub fn observe(&self, uid: u64, item_id: u64, y: f64) -> Result<ClientObserve, ClientError> {
        let body = Json::object(vec![
            ("uid", Json::Number(uid as f64)),
            ("item_id", Json::Number(item_id as f64)),
            ("y", Json::Number(y)),
        ]);
        let resp =
            self.call("POST", &format!("/models/{}/observe", self.model), &body.to_string())?;
        Ok(ClientObserve {
            predicted_before: resp
                .get("predicted_before")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
            loss: resp.get("loss").and_then(Json::as_f64).unwrap_or(f64::NAN),
            trained: resp.get("trained").and_then(Json::as_bool).unwrap_or(false),
            deferred: resp.get("deferred").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// Triggers an offline retrain; returns the new model version.
    pub fn retrain(&self) -> Result<u64, ClientError> {
        let resp = self.call("POST", &format!("/models/{}/retrain", self.model), "")?;
        resp.get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing version".into()))
    }

    /// Fetches the model's stats as raw JSON.
    pub fn stats(&self) -> Result<Json, ClientError> {
        self.call("GET", &format!("/models/{}/stats", self.model), "")
    }

    /// Takes a durable checkpoint; returns its sequence number.
    pub fn checkpoint(&self) -> Result<u64, ClientError> {
        let resp = self.call("POST", &format!("/models/{}/checkpoint", self.model), "")?;
        resp.get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing seq".into()))
    }

    /// Runs a recovery drill (rebuild from durable state); returns the
    /// recovery report as raw JSON.
    pub fn recover(&self) -> Result<Json, ClientError> {
        self.call("POST", &format!("/models/{}/recover", self.model), "")
    }

    /// `POST /cluster/predict` — scores over the attached cluster backend
    /// (404 unless the server was built with `RestServer::with_cluster`).
    pub fn cluster_predict(
        &self,
        uid: u64,
        item_id: u64,
    ) -> Result<ClientClusterPredict, ClientError> {
        let body = Json::object(vec![
            ("uid", Json::Number(uid as f64)),
            ("item_id", Json::Number(item_id as f64)),
        ]);
        let resp = self.call("POST", "/cluster/predict", &body.to_string())?;
        Ok(ClientClusterPredict {
            score: resp.get("score").and_then(Json::as_f64).unwrap_or(f64::NAN),
            node: resp.get("node").and_then(Json::as_u64).unwrap_or(0) as usize,
            routed: resp.get("routed").and_then(Json::as_bool).unwrap_or(false),
            cold_start: resp.get("cold_start").and_then(Json::as_bool).unwrap_or(false),
            trace_id: resp.get("trace_id").and_then(Json::as_str).map(String::from),
        })
    }

    /// `POST /cluster/observe` — applies one online observation at the
    /// owning node of the attached cluster backend.
    pub fn cluster_observe(
        &self,
        uid: u64,
        item_id: u64,
        y: f64,
    ) -> Result<ClientClusterObserve, ClientError> {
        let body = Json::object(vec![
            ("uid", Json::Number(uid as f64)),
            ("item_id", Json::Number(item_id as f64)),
            ("y", Json::Number(y)),
        ]);
        let resp = self.call("POST", "/cluster/observe", &body.to_string())?;
        Ok(ClientClusterObserve {
            node: resp.get("node").and_then(Json::as_u64).unwrap_or(0) as usize,
            ts: resp.get("ts").and_then(Json::as_u64).unwrap_or(0),
            shipped_to: resp.get("shipped_to").and_then(Json::as_u64).unwrap_or(0) as usize,
            trace_id: resp.get("trace_id").and_then(Json::as_str).map(String::from),
        })
    }

    /// `GET /trace/<id>` — the reassembled span tree of one sampled
    /// request, as raw JSON (`spans` flat, `tree` nested).
    pub fn trace(&self, trace_id: &str) -> Result<Json, ClientError> {
        self.call("GET", &format!("/trace/{trace_id}"), "")
    }

    /// `GET /traces/slow` — the kept-trace index (tail-latency offenders
    /// and head samples, newest first), as raw JSON.
    pub fn slow_traces(&self) -> Result<Json, ClientError> {
        self.call("GET", "/traces/slow", "")
    }

    /// `GET /cluster/health` — per-node health labels, indexed by node id.
    pub fn cluster_health(&self) -> Result<Vec<String>, ClientError> {
        let resp = self.call("GET", "/cluster/health", "")?;
        Ok(resp
            .get("nodes")
            .and_then(Json::as_array)
            .map(|nodes| {
                nodes
                    .iter()
                    .filter_map(|n| n.get("health").and_then(Json::as_str).map(String::from))
                    .collect()
            })
            .unwrap_or_default())
    }

    /// `GET /cluster/health` — the full per-node records, including the
    /// failure detector's `liveness`/`misses`/`last_rtt_us` fields, as
    /// raw JSON.
    pub fn cluster_health_full(&self) -> Result<Json, ClientError> {
        self.call("GET", "/cluster/health", "")
    }

    /// `POST /cluster/rebalance` — planned partition handoff toward an
    /// already-joined member. Returns the moved partition ids; bad node
    /// ids are a typed 4xx ([`ClientError::Server`]).
    pub fn cluster_rebalance(&self, node: usize) -> Result<Vec<u64>, ClientError> {
        let body = Json::object(vec![("node", Json::Number(node as f64))]).to_string();
        let resp = self.call("POST", "/cluster/rebalance", &body)?;
        Ok(resp
            .get("moved")
            .and_then(Json::as_array)
            .map(|ps| ps.iter().filter_map(Json::as_u64).collect())
            .unwrap_or_default())
    }

    /// `POST /cluster/rebalance/auto` — flips the auto-rebalance kill
    /// switch (re-enabling also resets the retry-cap budget).
    pub fn cluster_set_auto_rebalance(&self, enabled: bool) -> Result<bool, ClientError> {
        let body = Json::object(vec![("enabled", Json::Bool(enabled))]).to_string();
        let resp = self.call("POST", "/cluster/rebalance/auto", &body)?;
        Ok(resp.get("auto_rebalance").and_then(Json::as_bool).unwrap_or(enabled))
    }

    /// `POST /cluster/failover` — operator-triggered fail-over of a down
    /// member. Unknown, non-member, or still-live nodes are a 4xx.
    pub fn cluster_failover(&self, node: usize) -> Result<u64, ClientError> {
        let body = Json::object(vec![("node", Json::Number(node as f64))]).to_string();
        let resp = self.call("POST", "/cluster/failover", &body)?;
        Ok(resp.get("backfilled").and_then(Json::as_u64).unwrap_or(0))
    }

    /// `POST /cluster/migrations/cancel` — aborts the in-flight (or next)
    /// migration with `operator cancel` at its next chunk boundary.
    /// Returns whether a migration was running when the cancel landed.
    pub fn cluster_cancel_migration(&self) -> Result<bool, ClientError> {
        let resp = self.call("POST", "/cluster/migrations/cancel", "")?;
        Ok(resp.get("was_in_flight").and_then(Json::as_bool).unwrap_or(false))
    }

    /// Lists all deployed model names on the server.
    pub fn list_models(&self) -> Result<Vec<String>, ClientError> {
        let resp = self.call("GET", "/models", "")?;
        Ok(resp
            .get("models")
            .and_then(Json::as_array)
            .map(|models| models.iter().filter_map(|m| m.as_str().map(String::from)).collect())
            .unwrap_or_default())
    }

    /// Lists the serving tier's registered backends (the `backends` array
    /// of `GET /models`). Empty when no tier is attached.
    pub fn list_backends(&self) -> Result<Vec<ClientBackend>, ClientError> {
        let resp = self.call("GET", "/models", "")?;
        Ok(resp
            .get("backends")
            .and_then(Json::as_array)
            .map(|backends| {
                backends
                    .iter()
                    .filter_map(|b| {
                        let batch = b.get("batch")?;
                        Some(ClientBackend {
                            name: b.get("name")?.as_str()?.to_string(),
                            kind: b.get("kind")?.as_str()?.to_string(),
                            serving_version: b.get("serving_version")?.as_u64()?,
                            versions: b
                                .get("versions")?
                                .as_array()?
                                .iter()
                                .filter_map(Json::as_u64)
                                .collect(),
                            requests: batch.get("requests").and_then(Json::as_u64).unwrap_or(0),
                            batches: batch.get("batches").and_then(Json::as_u64).unwrap_or(0),
                            mean_batch: batch
                                .get("mean_batch")
                                .and_then(Json::as_f64)
                                .unwrap_or(0.0),
                            slo_violations: batch
                                .get("slo_violations")
                                .and_then(Json::as_u64)
                                .unwrap_or(0),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default())
    }

    /// `POST /models/<model>/alias` — atomically flips the configured
    /// model's serving alias to `version`. Returns the previously serving
    /// version.
    pub fn flip_alias(&self, version: u64) -> Result<u64, ClientError> {
        let body = Json::object(vec![("version", Json::Number(version as f64))]);
        let resp =
            self.call("POST", &format!("/models/{}/alias", self.model), &body.to_string())?;
        resp.get("previous_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing previous_version".into()))
    }
}

/// One serving-tier backend as listed by `GET /models`.
#[derive(Debug, Clone)]
pub struct ClientBackend {
    /// Registered backend name.
    pub name: String,
    /// Backend flavor (`"velox"`, `"cluster"`, `"custom"`).
    pub kind: String,
    /// Version the serving alias points at.
    pub serving_version: u64,
    /// All retained versions, ascending.
    pub versions: Vec<u64>,
    /// Requests served through the batching lane.
    pub requests: u64,
    /// Batched passes executed.
    pub batches: u64,
    /// Mean served batch size.
    pub mean_batch: f64,
    /// Requests that exceeded the lane's latency SLO.
    pub slo_violations: u64,
}
