//! A typed Rust client for the Velox REST API.
//!
//! The application tier in the paper consumes Velox over its RESTful
//! interface; this client gives Rust applications a typed façade over that
//! wire protocol — same `std::net` + in-crate JSON stack as the server, no
//! HTTP dependency. One TCP connection per request (the server speaks
//! `Connection: close`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::Json;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The response was not valid HTTP + JSON.
    Protocol(String),
    /// The server answered with an error status; the JSON `error` message
    /// is included.
    Server {
        /// HTTP status code.
        status: u16,
        /// The server's error message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { status, message } => {
                write!(f, "server error {status}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A point-prediction result.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientPrediction {
    /// Predicted score.
    pub score: f64,
    /// Served from the prediction cache.
    pub cached: bool,
    /// Served from the new-user bootstrap.
    pub bootstrapped: bool,
}

/// A topK result.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientTopK {
    /// `(item id, score)` ranked descending.
    pub ranked: Vec<(u64, f64)>,
    /// The item the system chose to serve.
    pub served_item: u64,
    /// Whether the serve was validation-randomized.
    pub randomized: bool,
}

/// An observe acknowledgement.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientObserve {
    /// Prediction before the update.
    pub predicted_before: f64,
    /// Loss of that prediction.
    pub loss: f64,
    /// Whether the observation was trained on.
    pub trained: bool,
}

/// A typed client bound to one Velox REST endpoint and one model name.
pub struct VeloxClient {
    addr: SocketAddr,
    model: String,
    timeout: Duration,
}

impl VeloxClient {
    /// Creates a client for `model` at `addr`.
    ///
    /// # Panics
    /// Panics if `model` contains characters that cannot appear in a URL
    /// path segment (the client does not implement percent-encoding).
    pub fn new(addr: SocketAddr, model: impl Into<String>) -> Self {
        let model = model.into();
        assert!(
            !model.is_empty()
                && model
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.'),
            "model name must be URL-path-safe ([A-Za-z0-9._-])"
        );
        VeloxClient { addr, model, timeout: Duration::from_secs(10) }
    }

    /// Overrides the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn call(&self, method: &str, path: &str, body: &str) -> Result<Json, ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut stream = stream;
        let request = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol("missing status line".into()))?;
        let json_text = response
            .split("\r\n\r\n")
            .nth(1)
            .ok_or_else(|| ClientError::Protocol("missing body".into()))?;
        let json = Json::parse(json_text)
            .map_err(|e| ClientError::Protocol(format!("bad JSON body: {e}")))?;
        if status != 200 {
            let message =
                json.get("error").and_then(Json::as_str).unwrap_or("unknown error").to_string();
            return Err(ClientError::Server { status, message });
        }
        Ok(json)
    }

    /// `predict(uid, item)` over the wire.
    pub fn predict(&self, uid: u64, item_id: u64) -> Result<ClientPrediction, ClientError> {
        let body = Json::object(vec![
            ("uid", Json::Number(uid as f64)),
            ("item_id", Json::Number(item_id as f64)),
        ]);
        let resp =
            self.call("POST", &format!("/models/{}/predict", self.model), &body.to_string())?;
        Ok(ClientPrediction {
            score: resp.get("score").and_then(Json::as_f64).unwrap_or(f64::NAN),
            cached: resp.get("cached").and_then(Json::as_bool).unwrap_or(false),
            bootstrapped: resp.get("bootstrapped").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// `topK(uid, items)` over the wire.
    pub fn top_k(&self, uid: u64, item_ids: &[u64]) -> Result<ClientTopK, ClientError> {
        let body = Json::object(vec![
            ("uid", Json::Number(uid as f64)),
            ("item_ids", Json::Array(item_ids.iter().map(|&i| Json::Number(i as f64)).collect())),
        ]);
        let resp = self.call("POST", &format!("/models/{}/topk", self.model), &body.to_string())?;
        let ranked = resp
            .get("ranked")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing ranked".into()))?
            .iter()
            .filter_map(|pair| {
                let pair = pair.as_array()?;
                Some((pair.first()?.as_u64()?, pair.get(1)?.as_f64()?))
            })
            .collect();
        Ok(ClientTopK {
            ranked,
            served_item: resp
                .get("served_item")
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol("missing served_item".into()))?,
            randomized: resp.get("randomized").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// `observe(uid, item, y)` over the wire.
    pub fn observe(&self, uid: u64, item_id: u64, y: f64) -> Result<ClientObserve, ClientError> {
        let body = Json::object(vec![
            ("uid", Json::Number(uid as f64)),
            ("item_id", Json::Number(item_id as f64)),
            ("y", Json::Number(y)),
        ]);
        let resp =
            self.call("POST", &format!("/models/{}/observe", self.model), &body.to_string())?;
        Ok(ClientObserve {
            predicted_before: resp
                .get("predicted_before")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
            loss: resp.get("loss").and_then(Json::as_f64).unwrap_or(f64::NAN),
            trained: resp.get("trained").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// Triggers an offline retrain; returns the new model version.
    pub fn retrain(&self) -> Result<u64, ClientError> {
        let resp = self.call("POST", &format!("/models/{}/retrain", self.model), "")?;
        resp.get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing version".into()))
    }

    /// Fetches the model's stats as raw JSON.
    pub fn stats(&self) -> Result<Json, ClientError> {
        self.call("GET", &format!("/models/{}/stats", self.model), "")
    }

    /// Lists all deployed model names on the server.
    pub fn list_models(&self) -> Result<Vec<String>, ClientError> {
        let resp = self.call("GET", "/models", "")?;
        Ok(resp
            .get("models")
            .and_then(Json::as_array)
            .map(|models| models.iter().filter_map(|m| m.as_str().map(String::from)).collect())
            .unwrap_or_default())
    }
}
