//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! Just enough protocol for a JSON API: request-line + headers +
//! `Content-Length`-framed bodies in, status + headers + body out, one
//! request per connection (`Connection: close`). Limits on line length,
//! header count, and body size keep a misbehaving client from exhausting
//! memory.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum accepted request-body size (1 MiB).
const MAX_BODY: usize = 1 << 20;
/// Maximum accepted header line length.
const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers.
const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (no query-string splitting; Velox routes don't use them).
    pub path: String,
    /// Lowercased header name → value.
    pub headers: Vec<(String, String)>,
    /// Request body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Body decoded as UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::Malformed("non-UTF-8 body".into()))
    }
}

/// Protocol-level errors.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The request violated the protocol or a limit.
    Malformed(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn read_line(reader: &mut BufReader<&TcpStream>) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = reader.read(&mut byte)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-line".into()));
        }
        if byte[0] == b'\n' {
            // Strip only the CRLF terminator's \r; a \r elsewhere in the
            // line is part of the value (or malformed input the route layer
            // rejects), not framing.
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            break;
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE {
            return Err(HttpError::Malformed("header line too long".into()));
        }
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 header".into()))
}

/// Reads one request from the stream.
pub fn read_request(stream: &TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts.next().ok_or_else(|| HttpError::Malformed("missing path".into()))?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version {version}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line: {line}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>().map_err(|_| HttpError::Malformed("bad content-length".into()))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::Malformed("body too large".into()));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, headers, body })
}

/// Writes a response with the given status, content type, and body, then
/// closes.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> Result<(), HttpError> {
    write_response_with_headers(stream, status, content_type, &[], body)
}

/// Like [`write_response`], with extra response headers (name, value)
/// inserted before the body — e.g. `Retry-After` on a shed `503`.
pub fn write_response_with_headers(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> Result<(), HttpError> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// Writes a response with the given status and JSON body, then closes.
pub fn write_json_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
) -> Result<(), HttpError> {
    write_response(stream, status, "application/json", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `client` against a one-shot server that parses a request and
    /// returns it through the channel.
    fn round_trip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let result = read_request(&stream);
        client.join().unwrap();
        result
    }

    #[test]
    fn parses_get() {
        let req = round_trip(b"GET /models HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/models");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"), "case-insensitive lookup");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            round_trip(b"POST /models/m/predict HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"uid\":1}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_str().unwrap(), "{\"uid\":1}");
    }

    #[test]
    fn lowercases_method_and_headers() {
        let req = round_trip(b"post /x HTTP/1.1\r\nX-Custom-Header: Value \r\n\r\n").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.header("x-custom-header"), Some("Value"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(round_trip(b"\r\n\r\n").is_err());
        assert!(round_trip(b"GET\r\n\r\n").is_err());
        assert!(round_trip(b"GET / SPDY/3\r\n\r\n").is_err());
        assert!(round_trip(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
        assert!(round_trip(b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_body_claim() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(round_trip(raw.as_bytes()).is_err());
    }

    #[test]
    fn response_is_well_formed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_request(&stream).unwrap();
            write_json_response(&mut stream, 200, "{\"ok\":true}").unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        server.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("content-type: application/json"));
        assert!(response.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_land_before_the_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_request(&stream).unwrap();
            write_response_with_headers(
                &mut stream,
                503,
                "application/json",
                &[("retry-after", "2")],
                "{\"error\":\"shed\"}",
            )
            .unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        server.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("retry-after: 2"));
        assert_eq!(body, "{\"error\":\"shed\"}");
    }
}
