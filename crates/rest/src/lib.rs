//! # velox-rest
//!
//! The RESTful client interface of the Velox prototype (§8: "We have
//! completed an initial Velox prototype that exposes a RESTful client
//! interface").
//!
//! A dependency-free HTTP/1.1 + JSON front end over [`VeloxServer`]: one
//! listener thread accepts connections, a thread per connection parses the
//! request, dispatches to the deployment, and writes a JSON response.
//! JSON ([`json`]) and HTTP framing ([`http`]) are implemented in-crate on
//! `std` only, per the workspace dependency policy.
//!
//! ## Routes
//!
//! | method & path | body | response |
//! |---|---|---|
//! | `GET /models` | — | `{"models": [..]}` |
//! | `POST /models/{name}/predict` | `{"uid": u, "item_id": i}` | `{"score", "cached", "bootstrapped"}` |
//! | `POST /models/{name}/topk` | `{"uid": u, "item_ids": [..]}` | `{"ranked": [[id, score]..], "served_item", "randomized"}` |
//! | `POST /models/{name}/observe` | `{"uid": u, "item_id": i, "y": y}` | `{"loss", "trained", "stale"}` |
//! | `POST /models/{name}/retrain` | — | `{"version"}` |
//! | `GET /models/{name}/stats` | — | system stats |
//! | `POST /cluster/predict` | `{"uid": u, "item_id": i}` | `{"score", "node", "routed", "cold_start"}` |
//! | `POST /cluster/observe` | `{"uid": u, "item_id": i, "y": y}` | `{"node", "ts", "shipped_to"}` |
//! | `GET /cluster/health` | — | `{"nodes": [{"node", "health"}..]}` |
//!
//! Raw (non-catalog) items can be passed to predict/observe as
//! `{"uid": u, "features": [..]}` instead of `item_id`.
//!
//! The `/cluster/*` routes appear when a cluster backend is attached with
//! [`RestServer::with_cluster`]: any `velox_cluster::Transport` — the
//! in-process simulator or `velox-net`'s loopback TCP runtime.
//!
//! [`VeloxServer`]: velox_core::VeloxServer

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod server;

pub use client::{
    BreakerConfig, BreakerState, ClientBackend, ClientClusterObserve, ClientClusterPredict,
    ClientError, RetryPolicy, VeloxClient,
};
pub use server::{ClusterBackend, RestHandle, RestServer, ServerConfig};
