//! A minimal JSON value type, parser, and serializer.
//!
//! Implements the full JSON grammar (RFC 8259) minus some pathological
//! corners: numbers parse through Rust's `f64` parser (so integer/decimal/
//! exponent forms all work, precision is f64), strings support all escape
//! sequences including `\uXXXX` with surrogate pairs, and depth is bounded
//! to keep malicious payloads from overflowing the stack. Object key order
//! is preserved (stored as a vec of pairs), which makes output
//! deterministic — handy for tests and diffable logs.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Json)>),
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Parse errors with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience: builds an object from pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string (same as `Display`).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => {
                if n.is_finite() {
                    // Integral values print without a trailing ".0" so ids
                    // round-trip as integers.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no NaN/inf; emit null, the conventional
                    // lossy mapping.
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Canonicalizes an object into a sorted map (testing helper).
    pub fn object_map(&self) -> Option<BTreeMap<String, Json>> {
        match self {
            Json::Object(pairs) => {
                Some(pairs.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            }
            _ => None,
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), position: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected '{kw}')")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        // Reject forms Rust's parser accepts but JSON forbids.
        if text == "-"
            || text.starts_with("-.")
            || text.starts_with('.')
            || text.ends_with('.')
            || text.contains(".e")
            || text.contains(".E")
            || (text.len() > 1 && text.starts_with('0') && text.as_bytes()[1].is_ascii_digit())
            || (text.len() > 2 && text.starts_with("-0") && text.as_bytes()[2].is_ascii_digit())
            || text.ends_with(['e', 'E', '+', '-'])
        {
            return Err(self.err(&format!("malformed number '{text}'")));
        }
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err(&format!("unparseable number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: need \uXXXX low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // parse_hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses exactly four hex digits, advancing past them.
    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        // from_str_radix accepts a leading '+', which JSON forbids; require
        // four plain hex digits.
        if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.err("invalid \\u escape"));
        }
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Number(-350.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn containers_and_whitespace() {
        let doc = " { \"a\" : [ 1 , 2.5 , null ] , \"b\" : { } } ";
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap(), &Json::Object(vec![]));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let original =
            Json::String("line1\nline2\t\"quoted\" \\ slash / unicode: ünïcødé 🦀".into());
        let text = original.to_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::String("A".into()));
        // 🦀 = U+1F980 = 🦀
        assert_eq!(Json::parse(r#""🦀""#).unwrap(), Json::String("🦀".into()));
        assert!(Json::parse(r#""\uD83E""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\uDD80""#).is_err(), "lone low surrogate");
        assert!(Json::parse(r#""\u00""#).is_err(), "truncated escape");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "nul",
            "tru",
            "01",
            "-",
            "1.",
            ".5",
            "1e",
            "+1",
            "\"unterminated",
            "{\"a\":1}x",
            "[1],",
            "\u{0}",
            "[\"\t\"]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "must reject 100-deep nesting");
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v =
            Json::parse(r#"{"uid": 7, "score": -1.5, "name": "x", "flag": true, "ids": [1,2]}"#)
                .unwrap();
        assert_eq!(v.get("uid").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("score").unwrap().as_f64(), Some(-1.5));
        assert_eq!(v.get("score").unwrap().as_u64(), None, "negative is not u64");
        assert_eq!(v.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("ids").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(Json::Number(1.5).as_u64(), None, "fractional is not u64");
    }

    #[test]
    fn serialization_is_compact_and_ordered() {
        let v = Json::object(vec![
            ("b", Json::Number(1.0)),
            ("a", Json::Array(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":[null,false]}"#);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integral_numbers_have_no_decimal_point() {
        assert_eq!(Json::Number(12345.0).to_string(), "12345");
        assert_eq!(Json::Number(-2.0).to_string(), "-2");
        assert_eq!(Json::Number(0.25).to_string(), "0.25");
    }

    #[test]
    fn object_map_canonicalizes() {
        let v = Json::parse(r#"{"b":1,"a":2}"#).unwrap();
        let map = v.object_map().unwrap();
        assert_eq!(map.keys().collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(Json::Null.object_map().is_none());
    }
}
