//! The REST server: route dispatch over a [`VeloxServer`].

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use velox_core::server::ModelSchema;
use velox_core::{VeloxError, VeloxServer};
use velox_linalg::Vector;
use velox_models::Item;
use velox_obs::{Registry, RegistrySnapshot, Timer};

use crate::http::{read_request, write_response, Request};
use crate::json::Json;

const JSON_TYPE: &str = "application/json";
/// Prometheus text exposition content type.
const METRICS_TYPE: &str = "text/plain; version=0.0.4";

/// The REST front end over a set of Velox deployments.
pub struct RestServer {
    deployments: Arc<VeloxServer>,
    /// REST-layer registry: per-endpoint request-latency histograms.
    registry: Arc<Registry>,
}

/// Handle to a running listener: address for clients, shutdown for tests
/// and orderly exit.
pub struct RestHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl RestHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RestHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl RestServer {
    /// Wraps a deployment set.
    pub fn new(deployments: Arc<VeloxServer>) -> Self {
        RestServer { deployments, registry: Arc::new(Registry::new()) }
    }

    /// The REST layer's own metric registry (per-endpoint latency). The
    /// per-deployment registries are reached through the deployments
    /// themselves; `GET /metrics` merges all of them.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and serves
    /// until the returned handle is shut down. One thread per connection.
    pub fn serve(self, addr: &str) -> std::io::Result<RestHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let deployments = self.deployments;
        let registry = self.registry;
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                // A slow or idle client must not pin its thread forever
                // (slowloris); the protocol is one short request-response.
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
                let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(30)));
                let deployments = Arc::clone(&deployments);
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    let (status, content_type, body) = match read_request(&stream) {
                        Ok(request) => handle(&deployments, &registry, &request),
                        Err(e) => (400, JSON_TYPE, error_json(&format!("{e}"))),
                    };
                    let _ = write_response(&mut stream, status, content_type, &body);
                });
            }
        });
        Ok(RestHandle { addr: local, stop, accept_thread: Some(accept_thread) })
    }
}

fn error_json(message: &str) -> String {
    Json::object(vec![("error", Json::String(message.to_string()))]).to_string()
}

fn velox_error(e: &VeloxError) -> (u16, String) {
    let status = match e {
        VeloxError::ModelNotFound(_) => 404,
        VeloxError::Model(_) | VeloxError::EmptyCandidateSet | VeloxError::VersionNotFound(_) => {
            400
        }
        _ => 500,
    };
    (status, error_json(&e.to_string()))
}

/// Extracts the item reference from a request body: either `item_id` or a
/// raw `features` array.
fn parse_item(body: &Json) -> Result<Item, String> {
    if let Some(id) = body.get("item_id").and_then(Json::as_u64) {
        return Ok(Item::Id(id));
    }
    if let Some(features) = body.get("features").and_then(Json::as_array) {
        let values: Option<Vec<f64>> = features.iter().map(Json::as_f64).collect();
        let values = values.ok_or("features must be an array of numbers")?;
        return Ok(Item::Raw(Vector::from_vec(values)));
    }
    Err("body must contain item_id or features".into())
}

fn parse_body(request: &Request) -> Result<Json, String> {
    let text = request.body_str().map_err(|e| e.to_string())?;
    if text.trim().is_empty() {
        return Ok(Json::Object(vec![]));
    }
    Json::parse(text).map_err(|e| e.to_string())
}

/// Stable endpoint label for the per-request latency histogram (bounded
/// cardinality: one bucket per route shape, not per model).
fn endpoint_of(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        ("GET", ["metrics"]) => "metrics",
        ("GET", ["events"]) => "events",
        ("GET", ["models"]) => "models",
        ("GET", ["models", _, "stats"]) => "stats",
        ("POST", ["models", _, "predict"]) => "predict",
        ("POST", ["models", _, "topk"]) => "topk",
        ("POST", ["models", _, "observe"]) => "observe",
        ("POST", ["models", _, "retrain"]) => "retrain",
        _ => "other",
    }
}

/// Times the request, routes the observability endpoints, and falls
/// through to the JSON API dispatch.
fn handle(
    server: &VeloxServer,
    registry: &Registry,
    request: &Request,
) -> (u16, &'static str, String) {
    let timer = Timer::start();
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let endpoint = endpoint_of(request.method.as_str(), &segments);
    let result = match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["metrics"]) => (200, METRICS_TYPE, metrics_text(server, registry)),
        ("GET", ["events"]) => (200, JSON_TYPE, events_json(server)),
        _ => {
            let (status, body) = dispatch(server, request);
            (status, JSON_TYPE, body)
        }
    };
    timer.observe(
        &registry.histogram_with("velox_rest_request_latency_ns", &[("endpoint", endpoint)]),
    );
    result
}

/// Merged Prometheus exposition: the REST layer's own metrics plus every
/// deployment's registry tagged `model="<name>"`. Samples are re-sorted so
/// each family appears once with a single `# TYPE` line.
fn metrics_text(server: &VeloxServer, registry: &Registry) -> String {
    let mut metrics = registry.snapshot().metrics;
    let mut names = server.deployment_names();
    names.sort();
    for name in &names {
        if let Ok(velox) = server.deployment(&ModelSchema::named(name.as_str())) {
            for mut m in velox.registry().snapshot().metrics {
                m.labels.insert(0, ("model".to_string(), name.clone()));
                metrics.push(m);
            }
        }
    }
    metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    RegistrySnapshot { metrics }.render_prometheus(&[])
}

/// All deployments' lifecycle events as JSON, oldest first per model.
fn events_json(server: &VeloxServer) -> String {
    let mut names = server.deployment_names();
    names.sort();
    let mut events = Vec::new();
    for name in &names {
        if let Ok(velox) = server.deployment(&ModelSchema::named(name.as_str())) {
            for ev in velox.registry().recent_events() {
                let fields: Vec<(String, Json)> = ev
                    .kind
                    .fields()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Json::Number(v as f64)))
                    .collect();
                events.push(Json::object(vec![
                    ("model", Json::String(name.clone())),
                    ("seq", Json::Number(ev.seq as f64)),
                    ("at_unix_ms", Json::Number(ev.at_unix_ms as f64)),
                    ("kind", Json::String(ev.kind.name().to_string())),
                    ("fields", Json::Object(fields)),
                ]));
            }
        }
    }
    Json::object(vec![("events", Json::Array(events))]).to_string()
}

fn dispatch(server: &VeloxServer, request: &Request) -> (u16, String) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["models"]) => {
            let mut names = server.deployment_names();
            names.sort();
            let body = Json::object(vec![(
                "models",
                Json::Array(names.into_iter().map(Json::String).collect()),
            )]);
            (200, body.to_string())
        }
        ("GET", ["models", name, "stats"]) => match server.deployment(&ModelSchema::named(*name)) {
            Err(e) => velox_error(&e),
            Ok(velox) => {
                let s = velox.stats();
                let body = Json::object(vec![
                    ("model_version", Json::Number(s.model_version as f64)),
                    ("retrains", Json::Number(s.retrains as f64)),
                    ("observations", Json::Number(s.observations as f64)),
                    ("online_users", Json::Number(s.online_users as f64)),
                    ("mean_loss", Json::Number(s.mean_loss)),
                    ("prediction_cache_hits", Json::Number(s.prediction_cache.0 as f64)),
                    ("prediction_cache_misses", Json::Number(s.prediction_cache.1 as f64)),
                    ("stale", Json::Bool(s.stale)),
                ]);
                (200, body.to_string())
            }
        },
        ("POST", ["models", name, "predict"]) => {
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let Some(uid) = body.get("uid").and_then(Json::as_u64) else {
                return (400, error_json("missing uid"));
            };
            let item = match parse_item(&body) {
                Ok(i) => i,
                Err(e) => return (400, error_json(&e)),
            };
            match server.predict(&ModelSchema::named(*name), uid, &item) {
                Err(e) => velox_error(&e),
                Ok(resp) => {
                    let body = Json::object(vec![
                        ("score", Json::Number(resp.score)),
                        ("cached", Json::Bool(resp.cached)),
                        ("bootstrapped", Json::Bool(resp.bootstrapped)),
                    ]);
                    (200, body.to_string())
                }
            }
        }
        ("POST", ["models", name, "topk"]) => {
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let Some(uid) = body.get("uid").and_then(Json::as_u64) else {
                return (400, error_json("missing uid"));
            };
            let Some(ids) = body.get("item_ids").and_then(Json::as_array) else {
                return (400, error_json("missing item_ids"));
            };
            let items: Option<Vec<Item>> = ids.iter().map(|j| j.as_u64().map(Item::Id)).collect();
            let Some(items) = items else {
                return (400, error_json("item_ids must be non-negative integers"));
            };
            match server.top_k(&ModelSchema::named(*name), uid, &items) {
                Err(e) => velox_error(&e),
                Ok(resp) => {
                    let ranked: Vec<Json> = resp
                        .ranked
                        .iter()
                        .map(|&(idx, score)| {
                            Json::Array(vec![
                                Json::Number(items[idx].id().expect("id items") as f64),
                                Json::Number(score),
                            ])
                        })
                        .collect();
                    let served_item = items[resp.served].id().expect("id items");
                    let body = Json::object(vec![
                        ("ranked", Json::Array(ranked)),
                        ("served_item", Json::Number(served_item as f64)),
                        ("randomized", Json::Bool(resp.randomized)),
                    ]);
                    (200, body.to_string())
                }
            }
        }
        ("POST", ["models", name, "observe"]) => {
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let Some(uid) = body.get("uid").and_then(Json::as_u64) else {
                return (400, error_json("missing uid"));
            };
            let Some(y) = body.get("y").and_then(Json::as_f64) else {
                return (400, error_json("missing y"));
            };
            let item = match parse_item(&body) {
                Ok(i) => i,
                Err(e) => return (400, error_json(&e)),
            };
            match server.observe(&ModelSchema::named(*name), uid, &item, y) {
                Err(e) => velox_error(&e),
                Ok(outcome) => {
                    let body = Json::object(vec![
                        ("predicted_before", Json::Number(outcome.predicted_before)),
                        ("loss", Json::Number(outcome.loss)),
                        ("trained", Json::Bool(outcome.trained)),
                        ("stale", Json::Bool(outcome.stale)),
                        ("retrained", Json::Bool(outcome.retrained)),
                    ]);
                    (200, body.to_string())
                }
            }
        }
        ("POST", ["models", name, "retrain"]) => {
            match server.deployment(&ModelSchema::named(*name)) {
                Err(e) => velox_error(&e),
                Ok(velox) => match velox.retrain_offline() {
                    Err(e) => velox_error(&e),
                    Ok(version) => (
                        200,
                        Json::object(vec![("version", Json::Number(version as f64))]).to_string(),
                    ),
                },
            }
        }
        (method, ["models", ..]) if method != "GET" && method != "POST" => {
            (405, error_json("method not allowed"))
        }
        _ => (404, error_json(&format!("no route for {} {}", request.method, request.path))),
    }
}
