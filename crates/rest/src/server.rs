//! The REST server: route dispatch over a [`VeloxServer`].

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use velox_cluster::{Transport, TransportError};
use velox_core::server::ModelSchema;
use velox_core::{Velox, VeloxError, VeloxServer};
use velox_linalg::Vector;
use velox_models::Item;
use velox_obs::{
    build_tree, Gauge, KeepReason, Registry, RegistrySnapshot, SpanKind, SpanRecord, Timer,
    TraceNode, FRONT_NODE,
};
use velox_serve::{ServeDetail, ServeError, ServeTier, CLUSTER_BACKEND};

use crate::http::{read_request, write_response, write_response_with_headers, Request};
use crate::json::Json;

/// The cluster backend a [`RestServer`] can front: any [`Transport`]
/// implementation (the in-process simulator or `velox-net`'s loopback TCP
/// runtime), shared across request threads.
pub type ClusterBackend = Arc<dyn Transport + Send + Sync>;

const JSON_TYPE: &str = "application/json";
/// Prometheus text exposition content type.
const METRICS_TYPE: &str = "text/plain; version=0.0.4";
/// How many migration-ledger entries `/cluster/health` reports (newest
/// last); the full count still appears as `migrations_total`.
const MIGRATION_LEDGER_TAIL: usize = 32;

/// Tuning knobs for the REST listener.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum requests being processed at once. Connections accepted past
    /// this limit are immediately answered `503` and closed (load
    /// shedding): under overload the server stays responsive and tells
    /// clients to back off, instead of queueing unboundedly until
    /// everything times out.
    pub max_in_flight: usize,
    /// Per-connection read timeout (slowloris guard).
    pub read_timeout: std::time::Duration,
    /// Per-connection write timeout.
    pub write_timeout: std::time::Duration,
    /// How long a rendered `GET /metrics` exposition may be served from
    /// cache. Rendering merges and re-sorts every deployment's registry —
    /// linear in metric count — so an aggressive scraper (or many) could
    /// make observability itself a serving-path cost. Zero disables
    /// caching. The cache also invalidates immediately when the deployment
    /// set changes, so a scrape never misses a new model for a full TTL.
    pub metrics_cache_ttl: std::time::Duration,
    /// `Retry-After` value (in whole seconds, rounded up) attached to shed
    /// `503` responses, telling well-behaved clients how long to hold off
    /// before retrying instead of guessing with exponential backoff.
    pub shed_retry_after: std::time::Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_in_flight: 256,
            read_timeout: std::time::Duration::from_secs(30),
            write_timeout: std::time::Duration::from_secs(30),
            metrics_cache_ttl: std::time::Duration::from_millis(250),
            shed_retry_after: std::time::Duration::from_secs(1),
        }
    }
}

/// TTL + deployment-set cache for the rendered Prometheus exposition.
struct MetricsCache {
    ttl: std::time::Duration,
    entry: Mutex<Option<MetricsEntry>>,
}

struct MetricsEntry {
    rendered_at: Instant,
    /// Sorted deployment names at render time; a mismatch (model installed
    /// or removed) invalidates regardless of age.
    names: Vec<String>,
    body: String,
}

impl MetricsCache {
    fn new(ttl: std::time::Duration) -> Self {
        MetricsCache { ttl, entry: Mutex::new(None) }
    }

    fn get(
        &self,
        server: &VeloxServer,
        registry: &Registry,
        serving: Option<&Arc<ServeTier>>,
    ) -> String {
        if self.ttl.is_zero() {
            return metrics_text(server, registry, serving);
        }
        let mut names = server.deployment_names();
        names.sort();
        let mut entry = self.entry.lock().unwrap();
        if let Some(cached) = entry.as_ref() {
            if cached.rendered_at.elapsed() < self.ttl && cached.names == names {
                return cached.body.clone();
            }
        }
        let body = metrics_text(server, registry, serving);
        *entry = Some(MetricsEntry { rendered_at: Instant::now(), names, body: body.clone() });
        body
    }
}

/// The REST front end over a set of Velox deployments.
pub struct RestServer {
    deployments: Arc<VeloxServer>,
    /// REST-layer registry: per-endpoint request-latency histograms.
    registry: Arc<Registry>,
    config: ServerConfig,
    /// Optional cluster backend served under `/cluster/*`.
    cluster: Option<ClusterBackend>,
    /// Optional serving tier: adaptive batching + backend registry. When
    /// attached, predict routes go through its batching lanes.
    serving: Option<Arc<ServeTier>>,
}

/// Decrements the in-flight gauge when a request thread exits, however it
/// exits.
struct InFlightGuard(Arc<Gauge>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

/// Handle to a running listener: address for clients, shutdown for tests
/// and orderly exit.
pub struct RestHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl RestHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RestHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl RestServer {
    /// Wraps a deployment set with default listener tuning.
    pub fn new(deployments: Arc<VeloxServer>) -> Self {
        Self::with_config(deployments, ServerConfig::default())
    }

    /// Wraps a deployment set with explicit listener tuning.
    pub fn with_config(deployments: Arc<VeloxServer>, config: ServerConfig) -> Self {
        RestServer {
            deployments,
            registry: Arc::new(Registry::new()),
            config,
            cluster: None,
            serving: None,
        }
    }

    /// Attaches a cluster backend, enabling the `/cluster/*` routes. Any
    /// [`Transport`] works: the in-process simulator or the loopback TCP
    /// runtime — the REST layer can't tell them apart.
    pub fn with_cluster(mut self, cluster: ClusterBackend) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Attaches a serving tier. `POST /models/<name>/predict` routes
    /// through the tier's adaptive batching lane for any `name` registered
    /// there (other names keep the direct path), `GET /models` lists the
    /// registered backends with batch statistics, and
    /// `POST /models/<name>/alias` flips serving aliases. When a backend
    /// named [`CLUSTER_BACKEND`] is registered, `/cluster/predict` is
    /// batched through it too.
    pub fn with_serving(mut self, serving: Arc<ServeTier>) -> Self {
        self.serving = Some(serving);
        self
    }

    /// The REST layer's own metric registry (per-endpoint latency). The
    /// per-deployment registries are reached through the deployments
    /// themselves; `GET /metrics` merges all of them.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and serves
    /// until the returned handle is shut down. One thread per connection.
    pub fn serve(self, addr: &str) -> std::io::Result<RestHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let deployments = self.deployments;
        let registry = self.registry;
        let config = self.config;
        let cluster = self.cluster;
        let serving = self.serving;
        let in_flight = registry.gauge("velox_rest_in_flight_requests");
        let shed = registry.counter("velox_rest_shed_total");
        let metrics_cache = Arc::new(MetricsCache::new(config.metrics_cache_ttl));
        // Whole seconds, rounded up: Retry-After has one-second resolution
        // and "0" would tell clients to hammer a saturated server.
        let retry_after_secs = config.shed_retry_after.as_secs_f64().ceil().max(1.0).to_string();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                // A slow or idle client must not pin its thread forever
                // (slowloris); the protocol is one short request-response.
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let _ = stream.set_write_timeout(Some(config.write_timeout));
                if in_flight.get() >= config.max_in_flight as i64 {
                    // Saturated: shed instead of queueing. The 503 is written
                    // off-thread so a slow client can't stall the accept loop.
                    // The request is drained first so closing doesn't RST the
                    // connection before the client reads the answer.
                    shed.inc();
                    let retry_after = retry_after_secs.clone();
                    std::thread::spawn(move || {
                        let _ = read_request(&stream);
                        let _ = write_response_with_headers(
                            &mut stream,
                            503,
                            JSON_TYPE,
                            &[("retry-after", retry_after.as_str())],
                            &error_json("server saturated; request shed"),
                        );
                    });
                    continue;
                }
                in_flight.add(1);
                let guard = InFlightGuard(Arc::clone(&in_flight));
                let deployments = Arc::clone(&deployments);
                let registry = Arc::clone(&registry);
                let metrics_cache = Arc::clone(&metrics_cache);
                let cluster = cluster.clone();
                let serving = serving.clone();
                std::thread::spawn(move || {
                    let _guard = guard;
                    let (status, content_type, body) = match read_request(&stream) {
                        Ok(request) => handle(
                            &deployments,
                            &registry,
                            &metrics_cache,
                            cluster.as_deref(),
                            serving.as_ref(),
                            &request,
                        ),
                        Err(e) => (400, JSON_TYPE, error_json(&format!("{e}"))),
                    };
                    let _ = write_response(&mut stream, status, content_type, &body);
                });
            }
        });
        Ok(RestHandle { addr: local, stop, accept_thread: Some(accept_thread) })
    }
}

fn error_json(message: &str) -> String {
    Json::object(vec![("error", Json::String(message.to_string()))]).to_string()
}

fn velox_error(e: &VeloxError) -> (u16, String) {
    let status = match e {
        VeloxError::ModelNotFound(_) => 404,
        VeloxError::Model(_)
        | VeloxError::EmptyCandidateSet
        | VeloxError::VersionNotFound(_)
        | VeloxError::DurabilityDisabled => 400,
        VeloxError::Unavailable(_) => 503,
        _ => 500,
    };
    (status, error_json(&e.to_string()))
}

/// Extracts the item reference from a request body: either `item_id` or a
/// raw `features` array.
fn parse_item(body: &Json) -> Result<Item, String> {
    if let Some(id) = body.get("item_id").and_then(Json::as_u64) {
        return Ok(Item::Id(id));
    }
    if let Some(features) = body.get("features").and_then(Json::as_array) {
        let values: Option<Vec<f64>> = features.iter().map(Json::as_f64).collect();
        let values = values.ok_or("features must be an array of numbers")?;
        return Ok(Item::Raw(Vector::from_vec(values)));
    }
    Err("body must contain item_id or features".into())
}

fn parse_body(request: &Request) -> Result<Json, String> {
    let text = request.body_str().map_err(|e| e.to_string())?;
    if text.trim().is_empty() {
        return Ok(Json::Object(vec![]));
    }
    Json::parse(text).map_err(|e| e.to_string())
}

/// Stable endpoint label for the per-request latency histogram (bounded
/// cardinality: one bucket per route shape, not per model).
fn endpoint_of(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        ("GET", ["metrics"]) => "metrics",
        ("GET", ["events"]) => "events",
        ("GET", ["models"]) => "models",
        ("GET", ["models", _, "stats"]) => "stats",
        ("POST", ["models", _, "alias"]) => "alias",
        ("POST", ["models", _, "predict"]) => "predict",
        ("POST", ["models", _, "topk"]) => "topk",
        ("POST", ["models", _, "observe"]) => "observe",
        ("POST", ["models", _, "retrain"]) => "retrain",
        ("POST", ["models", _, "checkpoint"]) => "checkpoint",
        ("POST", ["models", _, "recover"]) => "recover",
        ("GET", ["cluster", "health"]) => "cluster_health",
        ("POST", ["cluster", "predict"]) => "cluster_predict",
        ("POST", ["cluster", "observe"]) => "cluster_observe",
        ("POST", ["cluster", "rebalance"]) => "cluster_rebalance",
        ("POST", ["cluster", "rebalance", "auto"]) => "cluster_rebalance_auto",
        ("POST", ["cluster", "failover"]) => "cluster_failover",
        ("POST", ["cluster", "migrations", "cancel"]) => "cluster_migration_cancel",
        ("GET", ["trace", _]) => "trace",
        ("GET", ["traces", "slow"]) => "traces_slow",
        _ => "other",
    }
}

/// Times the request, routes the observability endpoints, and falls
/// through to the JSON API dispatch.
fn handle(
    server: &VeloxServer,
    registry: &Registry,
    metrics_cache: &MetricsCache,
    cluster: Option<&(dyn Transport + Send + Sync)>,
    serving: Option<&Arc<ServeTier>>,
    request: &Request,
) -> (u16, &'static str, String) {
    let timer = Timer::start();
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let endpoint = endpoint_of(request.method.as_str(), &segments);
    let result = match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["metrics"]) => (200, METRICS_TYPE, metrics_cache.get(server, registry, serving)),
        ("GET", ["events"]) => (200, JSON_TYPE, events_json(server)),
        (_, ["cluster", ..]) => {
            let (status, body) = dispatch_cluster(cluster, serving, request, &segments);
            (status, JSON_TYPE, body)
        }
        ("GET", ["trace", id]) => {
            let (status, body) = trace_json(cluster, id);
            (status, JSON_TYPE, body)
        }
        ("GET", ["traces", "slow"]) => {
            let (status, body) = slow_traces_json(cluster);
            (status, JSON_TYPE, body)
        }
        _ => {
            let (status, body) = dispatch(server, serving, request);
            (status, JSON_TYPE, body)
        }
    };
    timer.observe(
        &registry.histogram_with("velox_rest_request_latency_ns", &[("endpoint", endpoint)]),
    );
    result
}

/// Merged Prometheus exposition: the REST layer's own metrics plus every
/// deployment's registry tagged `model="<name>"`. Samples are re-sorted so
/// each family appears once with a single `# TYPE` line.
fn metrics_text(
    server: &VeloxServer,
    registry: &Registry,
    serving: Option<&Arc<ServeTier>>,
) -> String {
    let mut metrics = registry.snapshot().metrics;
    let mut names = server.deployment_names();
    names.sort();
    for name in &names {
        if let Ok(velox) = server.deployment(&ModelSchema::named(name.as_str())) {
            for mut m in velox.registry().snapshot().metrics {
                m.labels.insert(0, ("model".to_string(), name.clone()));
                metrics.push(m);
            }
        }
    }
    // The serving tier's registry already labels its series by backend.
    if let Some(tier) = serving {
        metrics.extend(tier.registry().snapshot().metrics);
    }
    metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    RegistrySnapshot { metrics }.render_prometheus(&[])
}

/// All deployments' lifecycle events as JSON, oldest first per model.
fn events_json(server: &VeloxServer) -> String {
    let mut names = server.deployment_names();
    names.sort();
    let mut events = Vec::new();
    for name in &names {
        if let Ok(velox) = server.deployment(&ModelSchema::named(name.as_str())) {
            for ev in velox.registry().recent_events() {
                let fields: Vec<(String, Json)> = ev
                    .kind
                    .fields()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Json::Number(v as f64)))
                    .collect();
                events.push(Json::object(vec![
                    ("model", Json::String(name.clone())),
                    ("seq", Json::Number(ev.seq as f64)),
                    ("at_unix_ms", Json::Number(ev.at_unix_ms as f64)),
                    ("kind", Json::String(ev.kind.name().to_string())),
                    ("fields", Json::Object(fields)),
                ]));
            }
        }
    }
    Json::object(vec![("events", Json::Array(events))]).to_string()
}

/// Maps a [`ServeError`] onto HTTP. Registry-shaped mistakes (duplicate
/// or unknown names, unretained versions) and refused retires are caller
/// errors — `400`, mirroring the `MembershipError` discipline; backend
/// failures keep their own mappings.
fn serve_error(e: &ServeError) -> (u16, String) {
    match e {
        ServeError::Velox(inner) => velox_error(inner),
        ServeError::Transport(inner) => transport_error(inner),
        ServeError::ShuttingDown => (503, error_json(&e.to_string())),
        ServeError::Registry(_)
        | ServeError::RetireServing { .. }
        | ServeError::WrongItemKind { .. }
        | ServeError::Custom(_) => (400, error_json(&e.to_string())),
    }
}

/// Renders a tier-served prediction with the same fidelity fields the
/// unbatched routes answer with, plus the batching provenance.
fn served_predict_json(name: &str, version: u64, served: &velox_serve::ServedPredict) -> Json {
    let mut fields = vec![
        ("score", Json::Number(served.score)),
        ("backend", Json::String(name.to_string())),
        ("backend_version", Json::Number(version as f64)),
        ("batched", Json::Bool(true)),
    ];
    match &served.detail {
        ServeDetail::Plain => {}
        ServeDetail::Velox { cached, bootstrapped, degradation } => {
            fields.push(("cached", Json::Bool(*cached)));
            fields.push(("bootstrapped", Json::Bool(*bootstrapped)));
            fields.push(("degradation", Json::String(degradation.label().to_string())));
        }
        ServeDetail::Cluster { node, routed, cold_start } => {
            fields.push(("node", Json::Number(*node as f64)));
            fields.push(("routed", Json::Bool(*routed)));
            fields.push(("cold_start", Json::Bool(*cold_start)));
        }
    }
    Json::object(fields)
}

/// The `backends` array of `GET /models`: every tier-registered backend
/// with its version lineage and batching-lane statistics.
fn backends_json(tier: &ServeTier) -> Json {
    Json::Array(
        tier.backends()
            .into_iter()
            .map(|b| {
                Json::object(vec![
                    ("name", Json::String(b.name)),
                    ("kind", Json::String(b.kind.to_string())),
                    ("dim", Json::Number(b.dim as f64)),
                    ("serving_version", Json::Number(b.serving_version as f64)),
                    (
                        "versions",
                        Json::Array(b.versions.iter().map(|&v| Json::Number(v as f64)).collect()),
                    ),
                    ("model_version", Json::Number(b.model_version as f64)),
                    (
                        "batch",
                        Json::object(vec![
                            ("requests", Json::Number(b.lane.requests as f64)),
                            ("batches", Json::Number(b.lane.batches as f64)),
                            ("mean_batch", Json::Number(b.lane.mean_batch)),
                            ("batch_target", Json::Number(b.lane.batch_target as f64)),
                            ("queue_depth", Json::Number(b.lane.queue_depth as f64)),
                            ("slo_violations", Json::Number(b.lane.slo_violations as f64)),
                            ("request_p99_ns", Json::Number(b.lane.request_p99_ns as f64)),
                        ]),
                    ),
                ])
            })
            .collect(),
    )
}

fn dispatch(
    server: &VeloxServer,
    serving: Option<&Arc<ServeTier>>,
    request: &Request,
) -> (u16, String) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["models"]) => {
            let mut names = server.deployment_names();
            names.sort();
            let mut fields =
                vec![("models", Json::Array(names.into_iter().map(Json::String).collect()))];
            if let Some(tier) = serving {
                fields.push(("backends", backends_json(tier)));
            }
            (200, Json::object(fields).to_string())
        }
        ("POST", ["models", name, "alias"]) => {
            let Some(tier) = serving else {
                return (404, error_json("no serving tier attached"));
            };
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let Some(version) = body.get("version").and_then(Json::as_u64) else {
                return (400, error_json("body must contain version"));
            };
            match tier.flip_alias(name, version) {
                Err(e) => serve_error(&e),
                Ok(previous) => (
                    200,
                    Json::object(vec![
                        ("serving_version", Json::Number(version as f64)),
                        ("previous_version", Json::Number(previous as f64)),
                    ])
                    .to_string(),
                ),
            }
        }
        ("GET", ["models", name, "stats"]) => match server.deployment(&ModelSchema::named(*name)) {
            Err(e) => velox_error(&e),
            Ok(velox) => {
                let s = velox.stats();
                let body = Json::object(vec![
                    ("model_version", Json::Number(s.model_version as f64)),
                    ("retrains", Json::Number(s.retrains as f64)),
                    ("observations", Json::Number(s.observations as f64)),
                    ("online_users", Json::Number(s.online_users as f64)),
                    ("mean_loss", Json::Number(s.mean_loss)),
                    ("prediction_cache_hits", Json::Number(s.prediction_cache.0 as f64)),
                    ("prediction_cache_misses", Json::Number(s.prediction_cache.1 as f64)),
                    ("stale", Json::Bool(s.stale)),
                    (
                        "durability",
                        Json::object(vec![
                            ("enabled", Json::Bool(s.durability.enabled)),
                            ("checkpoints", Json::Number(s.durability.checkpoints as f64)),
                            (
                                "last_checkpoint_seq",
                                Json::Number(s.durability.last_checkpoint_seq as f64),
                            ),
                            ("wal_appends", Json::Number(s.durability.wal_appends as f64)),
                            ("wal_segments", Json::Number(s.durability.wal_segments as f64)),
                            (
                                "recovery_replayed",
                                Json::Number(s.durability.recovery_replayed as f64),
                            ),
                        ]),
                    ),
                ]);
                (200, body.to_string())
            }
        },
        ("POST", ["models", name, "predict"]) => {
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let Some(uid) = body.get("uid").and_then(Json::as_u64) else {
                return (400, error_json("missing uid"));
            };
            let item = match parse_item(&body) {
                Ok(i) => i,
                Err(e) => return (400, error_json(&e)),
            };
            // A tier-registered name serves through the adaptive batching
            // lane; everything else keeps the direct deployment path.
            if let Some(tier) = serving.filter(|t| t.has(name)) {
                let version = tier.snapshot().serving_version(name).unwrap_or(0);
                return match tier.predict(name, uid, &item) {
                    Err(e) => serve_error(&e),
                    Ok(served) => (200, served_predict_json(name, version, &served).to_string()),
                };
            }
            match server.predict(&ModelSchema::named(*name), uid, &item) {
                Err(e) => velox_error(&e),
                Ok(resp) => {
                    let body = Json::object(vec![
                        ("score", Json::Number(resp.score)),
                        ("cached", Json::Bool(resp.cached)),
                        ("bootstrapped", Json::Bool(resp.bootstrapped)),
                        ("degradation", Json::String(resp.degradation.label().to_string())),
                    ]);
                    (200, body.to_string())
                }
            }
        }
        ("POST", ["models", name, "topk"]) => {
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let Some(uid) = body.get("uid").and_then(Json::as_u64) else {
                return (400, error_json("missing uid"));
            };
            let Some(ids) = body.get("item_ids").and_then(Json::as_array) else {
                return (400, error_json("missing item_ids"));
            };
            let items: Option<Vec<Item>> = ids.iter().map(|j| j.as_u64().map(Item::Id)).collect();
            let Some(items) = items else {
                return (400, error_json("item_ids must be non-negative integers"));
            };
            match server.top_k(&ModelSchema::named(*name), uid, &items) {
                Err(e) => velox_error(&e),
                Ok(resp) => {
                    let ranked: Vec<Json> = resp
                        .ranked
                        .iter()
                        .map(|&(idx, score)| {
                            Json::Array(vec![
                                Json::Number(items[idx].id().expect("id items") as f64),
                                Json::Number(score),
                            ])
                        })
                        .collect();
                    let served_item = items[resp.served].id().expect("id items");
                    let body = Json::object(vec![
                        ("ranked", Json::Array(ranked)),
                        ("served_item", Json::Number(served_item as f64)),
                        ("randomized", Json::Bool(resp.randomized)),
                        ("degradation", Json::String(resp.degradation.label().to_string())),
                    ]);
                    (200, body.to_string())
                }
            }
        }
        ("POST", ["models", name, "observe"]) => {
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let Some(uid) = body.get("uid").and_then(Json::as_u64) else {
                return (400, error_json("missing uid"));
            };
            let Some(y) = body.get("y").and_then(Json::as_f64) else {
                return (400, error_json("missing y"));
            };
            let item = match parse_item(&body) {
                Ok(i) => i,
                Err(e) => return (400, error_json(&e)),
            };
            match server.observe(&ModelSchema::named(*name), uid, &item, y) {
                Err(e) => velox_error(&e),
                Ok(outcome) => {
                    let body = Json::object(vec![
                        ("predicted_before", Json::Number(outcome.predicted_before)),
                        ("loss", Json::Number(outcome.loss)),
                        ("trained", Json::Bool(outcome.trained)),
                        ("stale", Json::Bool(outcome.stale)),
                        ("retrained", Json::Bool(outcome.retrained)),
                        ("deferred", Json::Bool(outcome.deferred)),
                    ]);
                    (200, body.to_string())
                }
            }
        }
        ("POST", ["models", name, "retrain"]) => {
            match server.deployment(&ModelSchema::named(*name)) {
                Err(e) => velox_error(&e),
                Ok(velox) => match velox.retrain_offline() {
                    Err(e) => velox_error(&e),
                    Ok(version) => (
                        200,
                        Json::object(vec![("version", Json::Number(version as f64))]).to_string(),
                    ),
                },
            }
        }
        ("POST", ["models", name, "checkpoint"]) => {
            match server.deployment(&ModelSchema::named(*name)) {
                Err(e) => velox_error(&e),
                Ok(velox) => match velox.checkpoint() {
                    Err(e) => velox_error(&e),
                    Ok(report) => (
                        200,
                        Json::object(vec![
                            ("seq", Json::Number(report.seq as f64)),
                            ("wal_offset", Json::Number(report.wal_offset as f64)),
                            (
                                "wal_segments_removed",
                                Json::Number(report.wal_segments_removed as f64),
                            ),
                            ("bytes", Json::Number(report.bytes as f64)),
                        ])
                        .to_string(),
                    ),
                },
            }
        }
        ("POST", ["models", name, "recover"]) => {
            match server.deployment(&ModelSchema::named(*name)) {
                Err(e) => velox_error(&e),
                Ok(velox) => recover_deployment(server, name, &velox),
            }
        }
        (method, ["models", ..]) if method != "GET" && method != "POST" => {
            (405, error_json("method not allowed"))
        }
        _ => (404, error_json(&format!("no route for {} {}", request.method, request.path))),
    }
}

/// Maps a [`TransportError`] onto HTTP: `Unavailable` (no live replica)
/// is the server's `503` vocabulary, `Rejected` is a caller mistake or
/// refused precondition (`400`), everything else is a `500`.
fn transport_error(e: &TransportError) -> (u16, String) {
    let status = match e {
        TransportError::Unavailable => 503,
        TransportError::Rejected(_) => 400,
        TransportError::Failed(_) => 500,
    };
    (status, error_json(&e.to_string()))
}

/// The `/cluster/*` routes: the multi-node serving path (§3) exposed over
/// REST. `predict`/`observe` hit the node owning the user's weights via
/// whatever [`Transport`] backend is attached; `health` reports per-node
/// liveness.
fn dispatch_cluster(
    cluster: Option<&(dyn Transport + Send + Sync)>,
    serving: Option<&Arc<ServeTier>>,
    request: &Request,
    segments: &[&str],
) -> (u16, String) {
    let Some(cluster) = cluster else {
        return (404, error_json("no cluster backend attached"));
    };
    match (request.method.as_str(), segments) {
        ("GET", ["cluster", "health"]) => {
            // Pair the control-plane health (Up/Recovering/Down — what the
            // operator did) with the failure detector's liveness verdict
            // (Alive/Suspect/Dead — what the heartbeats observed).
            let liveness = cluster.liveness();
            let nodes: Vec<Json> = (0..cluster.n_nodes())
                .map(|node| {
                    let mut fields = vec![
                        ("node", Json::Number(node as f64)),
                        ("health", Json::String(cluster.node_health(node).label().to_string())),
                    ];
                    if let Some(l) = liveness.iter().find(|l| l.node == node as u32) {
                        fields.push(("liveness", Json::String(l.state.label().to_string())));
                        fields.push(("misses", Json::Number(l.misses as f64)));
                        fields.push(("last_rtt_us", Json::Number(l.last_rtt_us as f64)));
                        fields.push(("probes", Json::Number(l.probes as f64)));
                        fields.push(("failures", Json::Number(l.failures as f64)));
                    }
                    Json::object(fields)
                })
                .collect();
            let mut top = vec![("nodes", Json::Array(nodes))];
            // Membership plane (epoch-stamped partition map + migration
            // ledger), when the transport exposes one.
            if let Some(view) = cluster.membership() {
                // The ledger keeps everything; the endpoint reports the
                // most recent `MIGRATION_LEDGER_TAIL` entries so health
                // stays O(1) however long the cluster has been churning.
                let skipped = view.migrations.len().saturating_sub(MIGRATION_LEDGER_TAIL);
                let migrations: Vec<Json> = view
                    .migrations
                    .iter()
                    .skip(skipped)
                    .map(|m| {
                        Json::object(vec![
                            ("partition", Json::Number(m.partition as f64)),
                            ("from", Json::Number(m.from as f64)),
                            ("to", Json::Number(m.to as f64)),
                            ("phase", Json::String(m.phase.to_string())),
                            ("outcome", Json::String(m.outcome.to_string())),
                            ("epoch_start", Json::Number(m.epoch_start as f64)),
                            ("epoch_end", Json::Number(m.epoch_end as f64)),
                            ("users_streamed", Json::Number(m.users_streamed as f64)),
                            ("chunks_streamed", Json::Number(m.chunks_streamed as f64)),
                            ("records_replayed", Json::Number(m.records_replayed as f64)),
                        ])
                    })
                    .collect();
                top.push((
                    "membership",
                    Json::object(vec![
                        ("epoch", Json::Number(view.epoch as f64)),
                        (
                            "members",
                            Json::Array(
                                view.members.iter().map(|&m| Json::Number(m as f64)).collect(),
                            ),
                        ),
                        ("n_partitions", Json::Number(view.n_partitions as f64)),
                        ("replication", Json::Number(view.replication as f64)),
                        ("wrong_epoch", Json::Number(view.wrong_epoch as f64)),
                        ("map_refreshes", Json::Number(view.map_refreshes as f64)),
                        ("auto_rebalance", Json::Bool(view.auto_rebalance)),
                        ("migrations_total", Json::Number(view.migrations.len() as f64)),
                        ("migrations", Json::Array(migrations)),
                    ]),
                ));
            }
            (200, Json::object(top).to_string())
        }
        ("POST", ["cluster", "predict"]) => {
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let (Some(uid), Some(item_id)) = (
                body.get("uid").and_then(Json::as_u64),
                body.get("item_id").and_then(Json::as_u64),
            ) else {
                return (400, error_json("body must contain uid and item_id"));
            };
            // When the serving tier fronts the cluster (a backend under
            // the conventional "cluster" name), predicts coalesce through
            // its batching lane; the lane worker emits the batch/backend
            // spans instead of a per-request REST root.
            if let Some(tier) = serving.filter(|t| t.has(CLUSTER_BACKEND)) {
                return match tier.predict(CLUSTER_BACKEND, uid, &Item::Id(item_id)) {
                    Err(e) => serve_error(&e),
                    Ok(served) => {
                        let version = tier.snapshot().serving_version(CLUSTER_BACKEND).unwrap_or(0);
                        (200, served_predict_json(CLUSTER_BACKEND, version, &served).to_string())
                    }
                };
            }
            // REST ingress mints the trace root; the transport's spans
            // (route, RPC, node work) hang off it.
            let tracer = cluster.tracer();
            let root = tracer.ingress(SpanKind::RestRequest, FRONT_NODE);
            let ctx = root.as_ref().map(|r| r.ctx());
            let result = cluster.predict_traced(uid, item_id, ctx.as_ref());
            if let Some(r) = root {
                tracer.end_root(r);
            }
            match result {
                Err(e) => transport_error(&e),
                Ok(p) => (
                    200,
                    Json::object(vec![
                        ("score", Json::Number(p.score)),
                        ("node", Json::Number(p.node as f64)),
                        ("routed", Json::Bool(p.routed)),
                        ("cold_start", Json::Bool(p.cold_start)),
                        ("trace_id", trace_id_json(p.trace_id)),
                    ])
                    .to_string(),
                ),
            }
        }
        ("POST", ["cluster", "observe"]) => {
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let (Some(uid), Some(item_id), Some(y)) = (
                body.get("uid").and_then(Json::as_u64),
                body.get("item_id").and_then(Json::as_u64),
                body.get("y").and_then(Json::as_f64),
            ) else {
                return (400, error_json("body must contain uid, item_id, and y"));
            };
            let tracer = cluster.tracer();
            let root = tracer.ingress(SpanKind::RestRequest, FRONT_NODE);
            let ctx = root.as_ref().map(|r| r.ctx());
            let result = cluster.observe_traced(uid, item_id, y, ctx.as_ref());
            if let Some(r) = root {
                tracer.end_root(r);
            }
            match result {
                Err(e) => transport_error(&e),
                Ok(ack) => (
                    200,
                    Json::object(vec![
                        ("node", Json::Number(ack.node as f64)),
                        ("ts", Json::Number(ack.ts as f64)),
                        ("shipped_to", Json::Number(ack.shipped_to as f64)),
                        ("trace_id", trace_id_json(ack.trace_id)),
                    ])
                    .to_string(),
                ),
            }
        }
        ("POST", ["cluster", "rebalance"]) => {
            // Planned handoff toward an already-joined member: migrates
            // the partitions the join plan picks, one at a time.
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let Some(node) = body.get("node").and_then(Json::as_u64) else {
                return (400, error_json("body must contain node"));
            };
            match cluster.rebalance_join_node(node as usize) {
                Err(e) => transport_error(&e),
                Ok(moved) => (
                    200,
                    Json::object(vec![(
                        "moved",
                        Json::Array(moved.into_iter().map(|p| Json::Number(p as f64)).collect()),
                    )])
                    .to_string(),
                ),
            }
        }
        ("POST", ["cluster", "rebalance", "auto"]) => {
            // The kill switch: {"enabled": bool}. Re-enabling resets the
            // retry-cap ledger so the automatic path gets a fresh budget.
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let Some(enabled) = body.get("enabled").and_then(Json::as_bool) else {
                return (400, error_json("body must contain enabled (boolean)"));
            };
            cluster.set_auto_rebalance(enabled);
            (200, Json::object(vec![("auto_rebalance", Json::Bool(enabled))]).to_string())
        }
        ("POST", ["cluster", "failover"]) => {
            // Operator-triggered fail-over of a down member; refuses live
            // nodes and unknown ids with a 4xx.
            let body = match parse_body(request) {
                Ok(b) => b,
                Err(e) => return (400, error_json(&e)),
            };
            let Some(node) = body.get("node").and_then(Json::as_u64) else {
                return (400, error_json("body must contain node"));
            };
            match cluster.fail_over_node(node as usize) {
                Err(e) => transport_error(&e),
                Ok(backfilled) => (
                    200,
                    Json::object(vec![("backfilled", Json::Number(backfilled as f64))]).to_string(),
                ),
            }
        }
        ("POST", ["cluster", "migrations", "cancel"]) => {
            // Operator abort: the in-flight (or next) migration rolls back
            // with `operator cancel` at its next chunk boundary.
            let was_running = cluster.cancel_migration();
            (200, Json::object(vec![("was_in_flight", Json::Bool(was_running))]).to_string())
        }
        _ => (404, error_json(&format!("no route for {} {}", request.method, request.path))),
    }
}

/// Trace ids travel through JSON as zero-padded hex strings: an f64 JSON
/// number can't hold all 64 bits.
fn trace_id_json(t: Option<u64>) -> Json {
    t.map(|t| Json::String(format!("{t:016x}"))).unwrap_or(Json::Null)
}

fn node_json(node: u32) -> Json {
    if node == FRONT_NODE {
        Json::String("front".to_string())
    } else {
        Json::Number(node as f64)
    }
}

fn span_json(s: &SpanRecord) -> Vec<(&'static str, Json)> {
    vec![
        ("span_id", Json::String(format!("{:016x}", s.span_id))),
        (
            "parent_span_id",
            if s.parent_span_id == 0 {
                Json::Null
            } else {
                Json::String(format!("{:016x}", s.parent_span_id))
            },
        ),
        ("kind", Json::String(s.kind.as_str().to_string())),
        ("node", node_json(s.node)),
        (
            "status",
            Json::String(
                if s.status == velox_obs::SpanStatus::Ok { "ok" } else { "error" }.to_string(),
            ),
        ),
        ("start_ns", Json::Number(s.start_ns as f64)),
        ("duration_ns", Json::Number(s.duration_ns() as f64)),
    ]
}

fn tree_json(node: &TraceNode) -> Json {
    let mut fields = span_json(&node.span);
    fields.push(("children", Json::Array(node.children.iter().map(tree_json).collect())));
    Json::object(fields)
}

/// `GET /trace/<id>`: the reassembled span tree of one sampled request.
/// `<id>` is the hex trace id returned by `/cluster/*` responses and
/// `/traces/slow` (and attached to `/metrics` histogram exemplars).
fn trace_json(cluster: Option<&(dyn Transport + Send + Sync)>, id: &str) -> (u16, String) {
    let Some(cluster) = cluster else {
        return (404, error_json("no cluster backend attached"));
    };
    let Ok(trace_id) = u64::from_str_radix(id, 16) else {
        return (400, error_json("trace id must be hex"));
    };
    let tracer = cluster.tracer();
    if !tracer.enabled() {
        return (404, error_json("tracing is disabled on this backend"));
    }
    let spans = tracer.collect(trace_id);
    if spans.is_empty() {
        return (404, error_json("trace not found (unsampled, or aged out of the span rings)"));
    }
    let tree = build_tree(&spans);
    let body = Json::object(vec![
        ("trace_id", Json::String(format!("{trace_id:016x}"))),
        ("span_count", Json::Number(spans.len() as f64)),
        ("spans", Json::Array(spans.iter().map(|s| Json::object(span_json(s))).collect())),
        ("tree", Json::Array(tree.iter().map(tree_json).collect())),
    ]);
    (200, body.to_string())
}

/// `GET /traces/slow`: the kept-trace index, newest first — tail-latency
/// offenders (and head samples), each linking to `GET /trace/<id>`.
fn slow_traces_json(cluster: Option<&(dyn Transport + Send + Sync)>) -> (u16, String) {
    let Some(cluster) = cluster else {
        return (404, error_json("no cluster backend attached"));
    };
    let tracer = cluster.tracer();
    if !tracer.enabled() {
        return (404, error_json("tracing is disabled on this backend"));
    }
    let traces: Vec<Json> = tracer
        .kept()
        .into_iter()
        .map(|k| {
            Json::object(vec![
                ("trace_id", Json::String(format!("{:016x}", k.trace_id))),
                ("root", Json::String(k.root_kind.as_str().to_string())),
                ("duration_ns", Json::Number(k.duration_ns as f64)),
                ("end_ns", Json::Number(k.end_ns as f64)),
                (
                    "reason",
                    Json::String(
                        if k.reason == KeepReason::Slow { "slow" } else { "head_sampled" }
                            .to_string(),
                    ),
                ),
            ])
        })
        .collect();
    (200, Json::object(vec![("traces", Json::Array(traces))]).to_string())
}

/// Recovery drill: rebuilds `name`'s deployment strictly from its durable
/// state. The live instance releases the WAL and checkpoint directory, a
/// fresh instance recovers from them (checkpoint restore + WAL replay, the
/// exact path a crashed process takes on restart), and the recovered
/// instance replaces the old one atomically in the deployment table.
fn recover_deployment(server: &VeloxServer, name: &str, velox: &Arc<Velox>) -> (u16, String) {
    if velox.config().durability.is_none() {
        return velox_error(&VeloxError::DurabilityDisabled);
    }
    let model = velox.current_model();
    let config = velox.config().clone();
    // Release the file handles so the recovering instance can take over.
    velox.close_durability();
    match Velox::deploy_durable(move |_snapshot| Ok(model), HashMap::new(), config) {
        Err(e) => velox_error(&e),
        Ok((recovered, report)) => {
            server.install(name, Arc::new(recovered));
            let body = Json::object(vec![
                (
                    "checkpoint_seq",
                    report.checkpoint_seq.map(|s| Json::Number(s as f64)).unwrap_or(Json::Null),
                ),
                ("checkpoint_wal_offset", Json::Number(report.checkpoint_wal_offset as f64)),
                ("replayed", Json::Number(report.replayed as f64)),
                ("apply_failures", Json::Number(report.apply_failures as f64)),
                ("torn", Json::Bool(report.torn)),
                ("wal_quarantined", Json::Number(report.wal_quarantined as f64)),
                ("duration_ns", Json::Number(report.duration_ns as f64)),
            ]);
            (200, body.to_string())
        }
    }
}
