//! End-to-end request tracing with per-hop tail-latency attribution.
//!
//! A request mints a [`TraceContext`] at ingress (REST handler or bench
//! client), carries it across process-internal call boundaries and the
//! velox-net frame header, and every instrumented hop records a completed
//! [`SpanRecord`] into a lock-free per-node [`SpanRing`]. Nothing is
//! buffered per-request and nothing allocates on the hot path: recording a
//! span is one ticket `fetch_add` plus a seqlock-guarded burst of relaxed
//! stores into a preallocated ring slot.
//!
//! # Sampling policy
//!
//! The [`Tracer`] combines *head* and *tail* sampling:
//!
//! - **Head**: every `sample_one_in`-th ingress request is sampled
//!   unconditionally (deterministic counter cadence, not RNG, so tests and
//!   benches are reproducible). Head-sampled traces are always indexed in
//!   the kept ring.
//! - **Tail**: when `slow_threshold_ns` is set, *all* requests record
//!   spans (recording is ~100 ns per hop), but only requests whose total
//!   latency exceeds the threshold are indexed as "slow" — this is what
//!   lets `GET /traces/slow` show the actual p99 outliers instead of a
//!   random head sample that was probably fast.
//!
//! Traces that record spans but are not kept simply age out of the rings
//! as slots are reused; `GET /trace/<id>` can still reassemble them while
//! the slots survive.
//!
//! # Ring sizing
//!
//! Each node (plus the cluster front) owns one [`SpanRing`] of
//! `ring_capacity` slots (rounded up to a power of two, default 4096). A
//! slot is 56 bytes, so the default is ~230 KiB per node. A traced observe
//! produces ~8 spans across three rings; 4096 slots per ring therefore
//! retain on the order of the last few thousand requests — enough for a
//! scrape-and-fetch monitoring loop at serving rates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Sentinel node id for spans recorded by the cluster front (router /
/// client side) rather than a serving node.
pub const FRONT_NODE: u32 = u32::MAX;

static TRACE_ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first trace-clock read in this process, via the
/// OS monotonic clock.
#[inline]
fn monotonic_ns() -> u64 {
    let anchor = TRACE_ANCHOR.get_or_init(Instant::now);
    // u64 arithmetic on (secs, subsec) instead of `as_nanos()`'s u128 —
    // this sits on every span boundary of the hot path. Saturates after
    // ~584 years of uptime, which is fine for an anchor-relative clock.
    let d = anchor.elapsed();
    d.as_secs().saturating_mul(1_000_000_000).saturating_add(d.subsec_nanos() as u64)
}

/// Calibration for reading the trace clock straight from the TSC:
/// `ns = anchor_ns + (rdtsc() − anchor_cycles) · mult ≫ 24`, with `mult`
/// a 40.24 fixed-point nanoseconds-per-cycle.
#[cfg(target_arch = "x86_64")]
struct TscParams {
    anchor_cycles: u64,
    anchor_ns: u64,
    mult: u64,
}

#[cfg(target_arch = "x86_64")]
static TSC: OnceLock<Option<TscParams>> = OnceLock::new();

#[cfg(target_arch = "x86_64")]
fn calibrate_tsc() -> Option<TscParams> {
    // Only trust the TSC where the kernel itself selected it as the
    // clocksource — that check subsumes invariant-TSC and cross-core
    // synchronization. Anywhere else (VMs with emulated counters, old
    // hardware) the monotonic-clock path stays in effect.
    let src =
        std::fs::read_to_string("/sys/devices/system/clocksource/clocksource0/current_clocksource")
            .ok()?;
    if src.trim() != "tsc" {
        return None;
    }
    let c0 = rdtsc();
    let t0 = monotonic_ns();
    std::thread::sleep(std::time::Duration::from_millis(2));
    let c1 = rdtsc();
    let t1 = monotonic_ns();
    if c1 <= c0 || t1 <= t0 {
        return None;
    }
    // ~2 ms window with ≲1 µs read jitter bounds the rate error around
    // 0.05% — sub-nanosecond per microsecond of span duration.
    let mult = (((t1 - t0) as u128) << 24) / ((c1 - c0) as u128);
    Some(TscParams { anchor_cycles: c1, anchor_ns: t1, mult: mult as u64 })
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn rdtsc() -> u64 {
    // SAFETY: `rdtsc` has no memory effects; it only reads the counter.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Nanoseconds since the first trace-clock read in this process.
///
/// All tracers in a process share this anchor, so span timestamps from a
/// `SimTransport` and a loopback TCP cluster running side by side are
/// directly comparable. On x86-64 with the kernel's clocksource set to
/// `tsc`, reads come straight from the calibrated TSC (~3× cheaper than
/// a vDSO `clock_gettime`, and this call sits on every span boundary);
/// everywhere else it is the OS monotonic clock.
#[inline]
pub fn now_ns() -> u64 {
    #[cfg(target_arch = "x86_64")]
    if let Some(p) = TSC.get_or_init(calibrate_tsc) {
        let cycles = rdtsc().wrapping_sub(p.anchor_cycles);
        return p.anchor_ns.saturating_add(((cycles as u128 * p.mult as u128) >> 24) as u64);
    }
    monotonic_ns()
}

/// The per-request context propagated across hops.
///
/// `span_id` is the id of the *calling* span: the receiving hop records
/// its own span with `parent_span_id = ctx.span_id`. On the wire this is
/// 17 bytes inside the frame-header extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies the whole request tree. Never zero for a live trace.
    pub trace_id: u64,
    /// The span the next hop should parent itself under.
    pub span_id: u64,
    /// Whether downstream hops should record spans for this request.
    pub sampled: bool,
}

/// What a span measured. The numeric value is stable (it is packed into
/// ring slots and could appear on the wire), so variants are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// REST ingress: the whole HTTP request.
    RestRequest = 0,
    /// Cluster-front predict: route + RPC + retries.
    ClusterPredict = 1,
    /// Cluster-front observe: route + RPC + retries.
    ClusterObserve = 2,
    /// Owner choice for a user (hash route + health filter).
    Route = 3,
    /// Marker: the home node was down and a replica was chosen instead.
    Failover = 4,
    /// One RPC attempt as seen by the caller (serialize + network + server).
    RpcCall = 5,
    /// Server side: from frame arrival to handler dispatch (queue + decode).
    ServerRecv = 6,
    /// NodeServer predict handler (model compute).
    NodePredict = 7,
    /// NodeServer observe handler (WAL + weight update + shipping).
    NodeObserve = 8,
    /// WAL record serialization + buffered write.
    WalAppend = 9,
    /// WAL fsync (per the node's fsync policy).
    WalFsync = 10,
    /// Owner-side ShipLog round trip to one replica.
    ShipReplica = 11,
    /// Replica-side application of a shipped observation.
    ShipApply = 12,
    /// Marker: an RPC attempt failed on a link fault and was retried
    /// (budgeted backoff).
    Retry = 13,
    /// Marker: the primary read ran past the hedge delay and a hedged
    /// attempt was sent to a replica.
    Hedge = 14,
    /// One phase of a live partition migration (dual-write install,
    /// checkpoint stream, catch-up, cutover, tail replay).
    Migrate = 15,
    /// One checkpoint chunk pulled and applied during a migration.
    MigrateChunk = 16,
    /// Marker: a migration rolled back (source stays authoritative).
    MigrateAbort = 17,
    /// One coalesced predict batch served by the adaptive batcher: drain,
    /// backend pass, and result distribution.
    Batch = 18,
    /// One backend `predict_batch` pass inside a serving-tier batch.
    Backend = 19,
}

impl SpanKind {
    /// All kinds, in numeric order.
    pub const ALL: [SpanKind; 20] = [
        SpanKind::RestRequest,
        SpanKind::ClusterPredict,
        SpanKind::ClusterObserve,
        SpanKind::Route,
        SpanKind::Failover,
        SpanKind::RpcCall,
        SpanKind::ServerRecv,
        SpanKind::NodePredict,
        SpanKind::NodeObserve,
        SpanKind::WalAppend,
        SpanKind::WalFsync,
        SpanKind::ShipReplica,
        SpanKind::ShipApply,
        SpanKind::Retry,
        SpanKind::Hedge,
        SpanKind::Migrate,
        SpanKind::MigrateChunk,
        SpanKind::MigrateAbort,
        SpanKind::Batch,
        SpanKind::Backend,
    ];

    /// Stable snake_case name (used in JSON and tables).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::RestRequest => "rest_request",
            SpanKind::ClusterPredict => "cluster_predict",
            SpanKind::ClusterObserve => "cluster_observe",
            SpanKind::Route => "route",
            SpanKind::Failover => "failover",
            SpanKind::RpcCall => "rpc_call",
            SpanKind::ServerRecv => "server_recv",
            SpanKind::NodePredict => "node_predict",
            SpanKind::NodeObserve => "node_observe",
            SpanKind::WalAppend => "wal_append",
            SpanKind::WalFsync => "wal_fsync",
            SpanKind::ShipReplica => "ship_replica",
            SpanKind::ShipApply => "ship_apply",
            SpanKind::Retry => "retry",
            SpanKind::Hedge => "hedge",
            SpanKind::Migrate => "migrate",
            SpanKind::MigrateChunk => "migrate_chunk",
            SpanKind::MigrateAbort => "migrate_abort",
            SpanKind::Batch => "batch",
            SpanKind::Backend => "backend",
        }
    }

    fn from_u8(v: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(v as usize).copied()
    }
}

/// Span outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum SpanStatus {
    /// The hop succeeded.
    #[default]
    Ok = 0,
    /// The hop failed (e.g. an RPC attempt that timed out before retry).
    Error = 1,
}

/// One completed span, as stored in (and read back out of) a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id; 0 for a root span.
    pub parent_span_id: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// Node that recorded it ([`FRONT_NODE`] for the cluster front).
    pub node: u32,
    /// Outcome.
    pub status: SpanStatus,
    /// Start, trace-clock nanoseconds ([`now_ns`]).
    pub start_ns: u64,
    /// End, trace-clock nanoseconds.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

const SLOT_WORDS: usize = 6;

struct SpanSlot {
    /// Seqlock: even = stable, odd = write in progress, 0 = never written.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

/// A fixed-capacity, lock-free ring of completed spans.
///
/// Writers claim a slot by ticket (`fetch_add` on the head) and flip the
/// slot's seqlock odd while storing the six record words; a claim that
/// loses the CAS (another writer lapped the ring into the same slot)
/// drops the span and bumps a counter rather than blocking. Readers
/// double-read the sequence word to discard torn slots. All fields are
/// atomics, so concurrent access is safe; the only cost of a race is a
/// dropped or skipped span.
pub struct SpanRing {
    slots: Box<[SpanSlot]>,
    mask: u64,
    shift: u32,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl SpanRing {
    /// Creates a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 64).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(64).next_power_of_two();
        SpanRing {
            slots: (0..cap)
                .map(|_| SpanSlot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            mask: (cap - 1) as u64,
            shift: cap.trailing_zeros(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans dropped because a concurrent writer held the same slot.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one span. Never blocks; may drop under a same-slot race.
    ///
    /// The ticket pins both the slot and the sequence values that slot
    /// must go through this lap, so claiming it needs only a load + store
    /// instead of a CAS — the ticket `fetch_add` is the one locked
    /// instruction on this path (it runs on every span of every traced
    /// request). A slot whose sequence isn't at this lap's expected value
    /// still has a slower same-slot writer in it from `capacity` tickets
    /// ago; that lapped write drops, as before.
    pub fn push(&self, rec: &SpanRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        let expected = (ticket >> self.shift).wrapping_mul(2);
        if slot.seq.load(Ordering::Relaxed) != expected {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Only this ticket's owner can see `expected` here (tickets are
        // unique, and the next lap's value appears only after this write
        // completes), so the store cannot race another claim.
        slot.seq.store(expected + 1, Ordering::Relaxed);
        // Order the odd marker before the data so readers never validate
        // a torn record (free on x86, compiler fence elsewhere-ish).
        std::sync::atomic::fence(Ordering::Release);
        let meta = (rec.kind as u64) | ((rec.status as u64) << 8) | ((rec.node as u64) << 32);
        slot.words[0].store(rec.trace_id, Ordering::Relaxed);
        slot.words[1].store(rec.span_id, Ordering::Relaxed);
        slot.words[2].store(rec.parent_span_id, Ordering::Relaxed);
        slot.words[3].store(meta, Ordering::Relaxed);
        slot.words[4].store(rec.start_ns, Ordering::Relaxed);
        slot.words[5].store(rec.end_ns, Ordering::Relaxed);
        slot.seq.store(expected + 2, Ordering::Release);
    }

    /// Push attempts so far (successful or dropped).
    fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    fn read_slot(&self, i: usize) -> Option<SpanRecord> {
        let slot = &self.slots[i];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None;
        }
        let words: [u64; SLOT_WORDS] =
            std::array::from_fn(|w| slot.words[w].load(Ordering::Relaxed));
        if slot.seq.load(Ordering::Acquire) != s1 {
            return None; // torn read: writer lapped us mid-copy
        }
        let kind = SpanKind::from_u8((words[3] & 0xff) as u8)?;
        let status = if (words[3] >> 8) & 0xff == 0 { SpanStatus::Ok } else { SpanStatus::Error };
        Some(SpanRecord {
            trace_id: words[0],
            span_id: words[1],
            parent_span_id: words[2],
            kind,
            node: (words[3] >> 32) as u32,
            status,
            start_ns: words[4],
            end_ns: words[5],
        })
    }

    /// All readable spans matching `trace_id`.
    pub fn collect(&self, trace_id: u64, out: &mut Vec<SpanRecord>) {
        for i in 0..self.slots.len() {
            if let Some(rec) = self.read_slot(i) {
                if rec.trace_id == trace_id {
                    out.push(rec);
                }
            }
        }
    }

    /// All readable spans in the ring (diagnostics / benches).
    pub fn scan(&self, out: &mut Vec<SpanRecord>) {
        for i in 0..self.slots.len() {
            if let Some(rec) = self.read_slot(i) {
                out.push(rec);
            }
        }
    }
}

/// Why a trace landed in the kept index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Head-sampled at ingress.
    Head,
    /// Exceeded the slow threshold at completion.
    Slow,
}

/// An entry in the kept-trace index (what `GET /traces/slow` serves).
#[derive(Debug, Clone, Copy)]
pub struct KeptTrace {
    /// The trace's id.
    pub trace_id: u64,
    /// Kind of the root span.
    pub root_kind: SpanKind,
    /// Total root duration.
    pub duration_ns: u64,
    /// Trace-clock time the root finished.
    pub end_ns: u64,
    /// Why it was kept.
    pub reason: KeepReason,
}

/// An in-flight span held by the instrumented code between begin and end.
#[derive(Debug, Clone, Copy)]
pub struct ActiveSpan {
    trace_id: u64,
    span_id: u64,
    parent_span_id: u64,
    kind: SpanKind,
    node: u32,
    start_ns: u64,
}

impl ActiveSpan {
    /// Context for propagating to children of this span.
    pub fn ctx(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id: self.span_id, sampled: true }
    }

    /// Trace this span belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Start time on the trace clock ([`now_ns`]). Lets an adjacent span
    /// share this boundary instead of reading the clock again.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }
}

/// A root span plus the head-sampling decision made at ingress.
#[derive(Debug, Clone, Copy)]
pub struct RootSpan {
    span: ActiveSpan,
    head: bool,
}

impl RootSpan {
    /// Context for children of the root.
    pub fn ctx(&self) -> TraceContext {
        self.span.ctx()
    }

    /// Trace id minted at ingress.
    pub fn trace_id(&self) -> u64 {
        self.span.trace_id
    }

    /// Start time on the trace clock ([`now_ns`]).
    pub fn start_ns(&self) -> u64 {
        self.span.start_ns
    }
}

/// The keep decision returned when a root span finishes.
#[derive(Debug, Clone, Copy)]
pub struct KeepDecision {
    /// The finished trace's id.
    pub trace_id: u64,
    /// Root duration.
    pub duration_ns: u64,
    /// Whether it was indexed into the kept ring.
    pub kept: bool,
}

/// Tracer configuration. See the module docs for the sampling semantics.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Master switch; a disabled tracer records nothing and costs one
    /// predictable branch per hop.
    pub enabled: bool,
    /// Head-sample every Nth ingress request: `1` samples all, `0`
    /// disables head sampling entirely (tail capture may still record).
    pub sample_one_in: u64,
    /// When set, record spans for every request and keep any whose root
    /// exceeds this many nanoseconds. When `None`, only head-sampled
    /// requests record at all.
    pub slow_threshold_ns: Option<u64>,
    /// Slots per node ring (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Entries in the kept-trace index.
    pub kept_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            sample_one_in: 64,
            slow_threshold_ns: Some(10_000_000), // 10 ms
            ring_capacity: 4096,
            kept_capacity: 256,
        }
    }
}

impl TraceConfig {
    /// A config that records every request (used by tests and benches).
    pub fn sample_all() -> Self {
        TraceConfig { sample_one_in: 1, ..TraceConfig::default() }
    }

    /// A disabled config.
    pub fn off() -> Self {
        TraceConfig { enabled: false, ..TraceConfig::default() }
    }
}

/// 0 is the "no id" sentinel on the wire, so minted ids avoid it.
fn nonzero_id(id: u64) -> u64 {
    if id == 0 {
        1
    } else {
        id
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mints contexts, applies the sampling policy, and owns the per-node
/// span rings plus the kept-trace index.
///
/// One tracer serves a whole cluster (all nodes are in-process); ring
/// index `n` belongs to node `n` and the last ring to the front.
pub struct Tracer {
    config: TraceConfig,
    rings: Vec<SpanRing>,
    next_id: AtomicU64,
    ingress_seq: AtomicU64,
    kept: Mutex<Vec<KeptTrace>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("config", &self.config)
            .field("rings", &self.rings.len())
            .finish()
    }
}

impl Tracer {
    /// Creates a tracer for `n_nodes` serving nodes (plus the front ring).
    pub fn new(n_nodes: usize, config: TraceConfig) -> Arc<Tracer> {
        let rings = if config.enabled {
            (0..=n_nodes).map(|_| SpanRing::new(config.ring_capacity)).collect()
        } else {
            Vec::new()
        };
        Arc::new(Tracer {
            config,
            rings,
            next_id: AtomicU64::new(1),
            ingress_seq: AtomicU64::new(0),
            kept: Mutex::new(Vec::new()),
        })
    }

    /// A tracer that records nothing (the default wiring).
    pub fn disabled() -> Arc<Tracer> {
        Tracer::new(0, TraceConfig::off())
    }

    /// Whether this tracer records anything at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The active configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    fn mint_id(&self) -> u64 {
        nonzero_id(splitmix64(self.next_id.fetch_add(1, Ordering::Relaxed)))
    }

    fn ring_for(&self, node: u32) -> &SpanRing {
        if node == FRONT_NODE || node as usize >= self.rings.len() - 1 {
            &self.rings[self.rings.len() - 1]
        } else {
            &self.rings[node as usize]
        }
    }

    /// Ingress decision for a new request. Returns `None` when this
    /// request should not record spans at all.
    pub fn ingress(&self, kind: SpanKind, node: u32) -> Option<RootSpan> {
        if !self.config.enabled {
            return None;
        }
        let n = self.ingress_seq.fetch_add(1, Ordering::Relaxed);
        let head = match self.config.sample_one_in {
            0 => false,
            1 => true,
            one_in => n.is_multiple_of(one_in),
        };
        if !head && self.config.slow_threshold_ns.is_none() {
            return None;
        }
        // One atomic claim covers both ids minted for a root span.
        let base = self.next_id.fetch_add(2, Ordering::Relaxed);
        Some(RootSpan {
            span: ActiveSpan {
                trace_id: nonzero_id(splitmix64(base)),
                span_id: nonzero_id(splitmix64(base.wrapping_add(1))),
                parent_span_id: 0,
                kind,
                node,
                start_ns: now_ns(),
            },
            head,
        })
    }

    /// Starts a child span under `ctx`. `None` when tracing is disabled,
    /// no context was propagated, or the context is unsampled.
    pub fn child(
        &self,
        ctx: Option<&TraceContext>,
        kind: SpanKind,
        node: u32,
    ) -> Option<ActiveSpan> {
        self.child_at(ctx, kind, node, 0)
    }

    /// Like [`Tracer::child`] but with an explicit start time (trace
    /// clock); zero reads the clock. Used when the span logically began
    /// before the code that opens it ran — e.g. a server receive span
    /// that starts when the request frame finished arriving — or when an
    /// adjacent span boundary already read the clock.
    pub fn child_at(
        &self,
        ctx: Option<&TraceContext>,
        kind: SpanKind,
        node: u32,
        start_ns: u64,
    ) -> Option<ActiveSpan> {
        if !self.config.enabled {
            return None;
        }
        let ctx = ctx?;
        if !ctx.sampled || ctx.trace_id == 0 {
            return None;
        }
        Some(ActiveSpan {
            trace_id: ctx.trace_id,
            span_id: self.mint_id(),
            parent_span_id: ctx.span_id,
            kind,
            node,
            start_ns: if start_ns == 0 { now_ns() } else { start_ns },
        })
    }

    /// Finishes a span successfully. `None` spans are a no-op, so call
    /// sites don't branch.
    #[inline]
    pub fn finish(&self, span: Option<ActiveSpan>) {
        self.finish_status(span, SpanStatus::Ok);
    }

    /// Finishes a span with an explicit status.
    pub fn finish_status(&self, span: Option<ActiveSpan>, status: SpanStatus) {
        if let Some(s) = span {
            self.store(&SpanRecord {
                trace_id: s.trace_id,
                span_id: s.span_id,
                parent_span_id: s.parent_span_id,
                kind: s.kind,
                node: s.node,
                status,
                start_ns: s.start_ns,
                end_ns: now_ns(),
            });
        }
    }

    /// Like [`Tracer::finish_status`] but with an explicit end time on the
    /// trace clock, so two spans meeting at a boundary (route → RPC, node
    /// work → server send) share one clock reading instead of each taking
    /// their own — the dominant cost of tracing a microsecond-scale RPC.
    /// A zero `end_ns` reads the clock, mirroring [`Tracer::child_at`].
    pub fn finish_status_at(&self, span: Option<ActiveSpan>, status: SpanStatus, end_ns: u64) {
        if let Some(s) = span {
            self.store(&SpanRecord {
                trace_id: s.trace_id,
                span_id: s.span_id,
                parent_span_id: s.parent_span_id,
                kind: s.kind,
                node: s.node,
                status,
                start_ns: s.start_ns,
                end_ns: if end_ns == 0 { now_ns() } else { end_ns },
            });
        }
    }

    /// Records an externally-timed span (e.g. WAL append/fsync timings
    /// measured by the storage layer) under `ctx`.
    pub fn record(
        &self,
        ctx: Option<&TraceContext>,
        kind: SpanKind,
        node: u32,
        start_ns: u64,
        end_ns: u64,
    ) {
        if !self.config.enabled {
            return;
        }
        let Some(ctx) = ctx else { return };
        if !ctx.sampled || ctx.trace_id == 0 {
            return;
        }
        self.store(&SpanRecord {
            trace_id: ctx.trace_id,
            span_id: self.mint_id(),
            parent_span_id: ctx.span_id,
            kind,
            node,
            status: SpanStatus::Ok,
            start_ns,
            end_ns,
        });
    }

    fn store(&self, rec: &SpanRecord) {
        self.ring_for(rec.node).push(rec);
    }

    /// Finishes a root span, records it, and applies the keep policy.
    pub fn end_root(&self, root: RootSpan) -> KeepDecision {
        self.end_root_at(root, 0)
    }

    /// Like [`Tracer::end_root`] but sharing an already-read clock value
    /// for the end boundary (zero reads the clock).
    pub fn end_root_at(&self, root: RootSpan, end_ns: u64) -> KeepDecision {
        let end_ns = if end_ns == 0 { now_ns() } else { end_ns };
        let duration_ns = end_ns.saturating_sub(root.span.start_ns);
        self.store(&SpanRecord {
            trace_id: root.span.trace_id,
            span_id: root.span.span_id,
            parent_span_id: 0,
            kind: root.span.kind,
            node: root.span.node,
            status: SpanStatus::Ok,
            start_ns: root.span.start_ns,
            end_ns,
        });
        let slow = self.config.slow_threshold_ns.is_some_and(|t| duration_ns >= t);
        let kept = root.head || slow;
        if kept {
            let entry = KeptTrace {
                trace_id: root.span.trace_id,
                root_kind: root.span.kind,
                duration_ns,
                end_ns,
                reason: if slow { KeepReason::Slow } else { KeepReason::Head },
            };
            let mut kept_ring = self.kept.lock().unwrap();
            kept_ring.push(entry);
            let cap = self.config.kept_capacity.max(1);
            if kept_ring.len() > cap {
                let excess = kept_ring.len() - cap;
                kept_ring.drain(..excess);
            }
        }
        KeepDecision { trace_id: root.span.trace_id, duration_ns, kept }
    }

    /// All spans still readable for `trace_id`, across every ring,
    /// sorted by start time.
    pub fn collect(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for ring in &self.rings {
            ring.collect(trace_id, &mut out);
        }
        out.sort_by_key(|r| (r.start_ns, r.span_id));
        out
    }

    /// Every readable span across all rings (benches / diagnostics).
    pub fn scan_all(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for ring in &self.rings {
            ring.scan(&mut out);
        }
        out
    }

    /// Kept traces, newest first.
    pub fn kept(&self) -> Vec<KeptTrace> {
        let ring = self.kept.lock().unwrap();
        ring.iter().rev().copied().collect()
    }

    /// Kept traces that were slow (tail captures), newest first.
    pub fn slow(&self) -> Vec<KeptTrace> {
        self.kept().into_iter().filter(|k| k.reason == KeepReason::Slow).collect()
    }

    /// Trace id of the most recent kept trace, if any (histogram
    /// exemplars use this).
    pub fn last_kept(&self) -> Option<u64> {
        self.kept.lock().unwrap().last().map(|k| k.trace_id)
    }

    /// Total spans recorded since creation.
    pub fn spans_recorded(&self) -> u64 {
        // Derived from ring tickets instead of a dedicated counter, so
        // recording a span costs one locked instruction, not two.
        self.rings.iter().map(|r| r.pushed()).sum()
    }

    /// Total spans dropped across all rings (same-slot write races).
    pub fn spans_dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }
}

/// One node of a reassembled span tree.
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// The span at this node.
    pub span: SpanRecord,
    /// Children, sorted by start time.
    pub children: Vec<TraceNode>,
}

/// Reassembles flat spans into a forest. Spans whose parent is missing
/// (aged out of its ring) surface as additional roots rather than being
/// dropped. Roots and children are sorted by start time.
pub fn build_tree(spans: &[SpanRecord]) -> Vec<TraceNode> {
    use std::collections::BTreeMap;
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut by_parent: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<SpanRecord> = Vec::new();
    for s in spans {
        if s.parent_span_id != 0 && ids.contains(&s.parent_span_id) {
            by_parent.entry(s.parent_span_id).or_default().push(*s);
        } else {
            roots.push(*s);
        }
    }
    fn attach(span: SpanRecord, by_parent: &BTreeMap<u64, Vec<SpanRecord>>) -> TraceNode {
        let mut children: Vec<TraceNode> = by_parent
            .get(&span.span_id)
            .map(|kids| kids.iter().map(|k| attach(*k, by_parent)).collect())
            .unwrap_or_default();
        children.sort_by_key(|c| (c.span.start_ns, c.span.span_id));
        TraceNode { span, children }
    }
    roots.sort_by_key(|r| (r.start_ns, r.span_id));
    roots.iter().map(|r| attach(*r, &by_parent)).collect()
}

/// Canonical structural signature of a span forest: kinds, nodes, and
/// nesting only — no ids or timings — so two backends can be compared
/// for structural identity.
///
/// Example: `cluster_predict@front(route@front,rpc_call@front(server_recv@2(node_predict@2)))`.
pub fn structure(forest: &[TraceNode]) -> String {
    fn node_label(n: u32) -> String {
        if n == FRONT_NODE {
            "front".to_string()
        } else {
            n.to_string()
        }
    }
    fn walk(node: &TraceNode, out: &mut String) {
        out.push_str(node.span.kind.as_str());
        out.push('@');
        out.push_str(&node_label(node.span.node));
        if !node.children.is_empty() {
            out.push('(');
            for (i, c) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                walk(c, out);
            }
            out.push(')');
        }
    }
    let mut out = String::new();
    for (i, r) in forest.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        walk(r, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(trace_id: u64, span_id: u64) -> TraceContext {
        TraceContext { trace_id, span_id, sampled: true }
    }

    #[test]
    fn ring_roundtrips_records() {
        let ring = SpanRing::new(64);
        let rec = SpanRecord {
            trace_id: 42,
            span_id: 7,
            parent_span_id: 3,
            kind: SpanKind::RpcCall,
            node: 2,
            status: SpanStatus::Error,
            start_ns: 100,
            end_ns: 250,
        };
        ring.push(&rec);
        let mut out = Vec::new();
        ring.collect(42, &mut out);
        assert_eq!(out, vec![rec]);
        assert_eq!(out[0].duration_ns(), 150);
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let ring = SpanRing::new(64);
        for i in 0..200u64 {
            ring.push(&SpanRecord {
                trace_id: i,
                span_id: i,
                parent_span_id: 0,
                kind: SpanKind::NodePredict,
                node: 0,
                status: SpanStatus::Ok,
                start_ns: i,
                end_ns: i + 1,
            });
        }
        let mut out = Vec::new();
        ring.scan(&mut out);
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|r| r.trace_id >= 136), "ring must retain the newest spans");
    }

    #[test]
    fn concurrent_ring_writes_never_tear() {
        let ring = std::sync::Arc::new(SpanRing::new(64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let ring = std::sync::Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    // Every field derives from the trace_id, so a torn
                    // slot would produce an inconsistent record.
                    let id = t * 1_000_000 + i;
                    ring.push(&SpanRecord {
                        trace_id: id,
                        span_id: id + 1,
                        parent_span_id: id + 2,
                        kind: SpanKind::RpcCall,
                        node: (id % 7) as u32,
                        status: SpanStatus::Ok,
                        start_ns: id * 10,
                        end_ns: id * 10 + 5,
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        ring.scan(&mut out);
        assert!(!out.is_empty());
        for r in &out {
            assert_eq!(r.span_id, r.trace_id + 1, "torn slot: {r:?}");
            assert_eq!(r.parent_span_id, r.trace_id + 2, "torn slot: {r:?}");
            assert_eq!(r.start_ns, r.trace_id * 10, "torn slot: {r:?}");
        }
    }

    #[test]
    fn head_sampling_cadence_is_deterministic() {
        let tracer = Tracer::new(
            1,
            TraceConfig { sample_one_in: 4, slow_threshold_ns: None, ..TraceConfig::default() },
        );
        let sampled: Vec<bool> = (0..8)
            .map(|_| tracer.ingress(SpanKind::ClusterPredict, FRONT_NODE).is_some())
            .collect();
        assert_eq!(sampled, [true, false, false, false, true, false, false, false]);
    }

    #[test]
    fn tail_mode_records_all_but_keeps_only_slow_or_head() {
        let tracer = Tracer::new(
            1,
            TraceConfig {
                sample_one_in: 0,           // head sampling off
                slow_threshold_ns: Some(0), // everything counts as slow
                ..TraceConfig::default()
            },
        );
        let root = tracer.ingress(SpanKind::ClusterObserve, FRONT_NODE).expect("tail mode records");
        let decision = tracer.end_root(root);
        assert!(decision.kept);
        assert_eq!(tracer.slow().len(), 1);

        let tracer = Tracer::new(
            1,
            TraceConfig {
                sample_one_in: 0,
                slow_threshold_ns: Some(u64::MAX), // nothing is slow
                ..TraceConfig::default()
            },
        );
        let root = tracer.ingress(SpanKind::ClusterObserve, FRONT_NODE).unwrap();
        let decision = tracer.end_root(root);
        assert!(!decision.kept, "fast + not head-sampled must not be kept");
        assert!(tracer.slow().is_empty());
        // ... but its spans are still in the ring and reassemblable.
        assert_eq!(tracer.collect(decision.trace_id).len(), 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(tracer.ingress(SpanKind::RestRequest, FRONT_NODE).is_none());
        assert!(tracer.child(Some(&ctx(9, 1)), SpanKind::RpcCall, 0).is_none());
        tracer.record(Some(&ctx(9, 1)), SpanKind::WalFsync, 0, 0, 10);
        assert_eq!(tracer.spans_recorded(), 0);
    }

    #[test]
    fn tree_assembly_nests_and_orphans_surface() {
        let tracer = Tracer::new(2, TraceConfig::sample_all());
        let root = tracer.ingress(SpanKind::ClusterPredict, FRONT_NODE).unwrap();
        let rpc = tracer.child(Some(&root.ctx()), SpanKind::RpcCall, FRONT_NODE).unwrap();
        let srv = tracer.child(Some(&rpc.ctx()), SpanKind::ServerRecv, 1).unwrap();
        let work = tracer.child(Some(&srv.ctx()), SpanKind::NodePredict, 1).unwrap();
        tracer.finish(Some(work));
        tracer.finish(Some(srv));
        tracer.finish(Some(rpc));
        // An orphan: parent id that is not in the collected set.
        tracer.record(Some(&ctx(root.trace_id(), 0xdead_beef)), SpanKind::WalFsync, 0, 1, 2);
        let decision = tracer.end_root(root);
        let spans = tracer.collect(decision.trace_id);
        assert_eq!(spans.len(), 5);
        let forest = build_tree(&spans);
        assert_eq!(forest.len(), 2, "root + orphan");
        let sig = structure(&forest);
        assert!(
            sig.contains("cluster_predict@front(rpc_call@front(server_recv@1(node_predict@1)))"),
            "unexpected structure: {sig}"
        );
        assert!(sig.contains("wal_fsync@0"), "orphan must surface: {sig}");
    }

    #[test]
    fn kept_index_is_bounded() {
        let tracer = Tracer::new(
            1,
            TraceConfig { sample_one_in: 1, kept_capacity: 4, ..TraceConfig::default() },
        );
        for _ in 0..10 {
            let root = tracer.ingress(SpanKind::RestRequest, FRONT_NODE).unwrap();
            tracer.end_root(root);
        }
        assert_eq!(tracer.kept().len(), 4);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let tracer = Tracer::new(1, TraceConfig::sample_all());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let root = tracer.ingress(SpanKind::RestRequest, FRONT_NODE).unwrap();
            assert_ne!(root.trace_id(), 0);
            assert!(seen.insert(root.trace_id()), "duplicate trace id");
        }
    }
}
