//! The metric registry: named handles, snapshots, and text exposition.

use std::sync::{Arc, Mutex};

use crate::events::{Event, EventKind, EventLog};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A registered metric of any type.
#[derive(Debug, Clone)]
enum MetricHandle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    metric: MetricHandle,
}

/// A named collection of counters, gauges, histograms, and one lifecycle
/// event log.
///
/// Components hold the `Arc<Counter>` / `Arc<Histogram>` handles directly
/// and update them lock-free; the registry only enumerates them for
/// snapshots and exposition, so registration cost is paid once at
/// construction, never on a serving path.
///
/// Metrics are identified by `(name, labels)`. `counter`/`gauge`/
/// `histogram` are get-or-create; `register_*` adopt a handle created
/// elsewhere (e.g. a `Namespace`'s internal read counter) so the registry
/// exposes the *same* atomic the component updates — one source of truth.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
    events: EventLog,
}

impl Registry {
    /// Creates an empty registry with a default-capacity event log.
    pub fn new() -> Self {
        Registry { entries: Mutex::new(Vec::new()), events: EventLog::default() }
    }

    fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricHandle,
    ) -> MetricHandle {
        let labels = Self::owned_labels(labels);
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries.iter().find(|e| e.name == name && e.labels == labels) {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry { name: name.to_string(), labels, metric: metric.clone() });
        metric
    }

    /// Gets or creates an unlabelled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Gets or creates a counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, labels, || MetricHandle::Counter(Arc::new(Counter::new()))) {
            MetricHandle::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Gets or creates an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Gets or creates a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, || MetricHandle::Gauge(Arc::new(Gauge::new()))) {
            MetricHandle::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Gets or creates an unlabelled histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Gets or creates a histogram with labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self
            .get_or_insert(name, labels, || MetricHandle::Histogram(Arc::new(Histogram::new())))
        {
            MetricHandle::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Adopts an existing counter under `(name, labels)`.
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], counter: Arc<Counter>) {
        self.get_or_insert(name, labels, || MetricHandle::Counter(counter));
    }

    /// Adopts an existing gauge under `(name, labels)`.
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], gauge: Arc<Gauge>) {
        self.get_or_insert(name, labels, || MetricHandle::Gauge(gauge));
    }

    /// Adopts an existing histogram under `(name, labels)`.
    pub fn register_histogram(&self, name: &str, labels: &[(&str, &str)], hist: Arc<Histogram>) {
        self.get_or_insert(name, labels, || MetricHandle::Histogram(hist));
    }

    /// The registry's lifecycle event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Records a lifecycle event. Returns its sequence number.
    pub fn event(&self, kind: EventKind) -> u64 {
        self.events.record(kind)
    }

    /// The retained lifecycle events, oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.events.recent()
    }

    /// Copies every registered metric out as plain data, sorted by
    /// `(name, labels)` for deterministic iteration.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut metrics: Vec<MetricSample> = entries
            .iter()
            .map(|e| MetricSample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: match &e.metric {
                    MetricHandle::Counter(c) => MetricValue::Counter(c.get()),
                    MetricHandle::Gauge(g) => MetricValue::Gauge(g.get()),
                    MetricHandle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        // The event ring's overflow counter rides along as a synthetic
        // sample: the `EventLog` is owned by value (not an `Arc` the
        // register_* path could adopt), so it is sampled here instead —
        // every exposition surface still sees it.
        metrics.push(MetricSample {
            name: "velox_lifecycle_events_dropped_total".to_string(),
            labels: Vec::new(),
            value: MetricValue::Counter(self.events.dropped()),
        });
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        RegistrySnapshot { metrics }
    }

    /// Renders Prometheus text exposition (version 0.0.4). `extra_labels`
    /// are appended to every sample — the REST layer uses this to tag each
    /// deployment's registry with `model="..."`.
    pub fn render_prometheus(&self, extra_labels: &[(&str, &str)]) -> String {
        self.snapshot().render_prometheus(extra_labels)
    }
}

/// One metric's value at snapshot time.
///
/// Snapshots hold at most a few dozen samples and live only as long as a
/// render/query, so the histogram variant's size is not worth boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// One `(name, labels, value)` sample.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name, e.g. `velox_predict_latency_ns`.
    pub name: String,
    /// Label pairs, e.g. `[("endpoint", "predict")]`.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// Plain-data copy of a whole [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// All samples, sorted by `(name, labels)`.
    pub metrics: Vec<MetricSample>,
}

impl RegistrySnapshot {
    /// Sum of all counter samples with this name (across labels); 0 when
    /// absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| match &m.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// The gauge sample with this name, if any.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.metrics.iter().find(|m| m.name == name).and_then(|m| match &m.value {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        })
    }

    /// All histogram samples with this name merged into one (labelled
    /// variants of the same family sum), or `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for m in self.metrics.iter().filter(|m| m.name == name) {
            if let MetricValue::Histogram(h) = &m.value {
                match &mut merged {
                    Some(acc) => acc.merge(h),
                    None => merged = Some(h.clone()),
                }
            }
        }
        merged
    }

    fn fmt_labels(pairs: &[(String, String)], extra: &[(&str, &str)]) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(pairs.len() + extra.len());
        for (k, v) in extra {
            parts.push(format!("{k}=\"{}\"", escape_label(v)));
        }
        for (k, v) in pairs {
            parts.push(format!("{k}=\"{}\"", escape_label(v)));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    fn fmt_labels_with_le(pairs: &[(String, String)], extra: &[(&str, &str)], le: &str) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(pairs.len() + extra.len() + 1);
        for (k, v) in extra {
            parts.push(format!("{k}=\"{}\"", escape_label(v)));
        }
        for (k, v) in pairs {
            parts.push(format!("{k}=\"{}\"", escape_label(v)));
        }
        parts.push(format!("le=\"{le}\""));
        format!("{{{}}}", parts.join(","))
    }

    /// Renders Prometheus text exposition (version 0.0.4).
    ///
    /// Counters and gauges become single samples; histograms become
    /// cumulative `_bucket{le=...}` samples (log₂ boundaries up to the
    /// highest non-empty bucket) plus `_sum` and `_count`.
    pub fn render_prometheus(&self, extra_labels: &[(&str, &str)]) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for m in &self.metrics {
            if m.name != last_family {
                let kind = match &m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {kind}\n", m.name));
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        m.name,
                        Self::fmt_labels(&m.labels, extra_labels)
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        m.name,
                        Self::fmt_labels(&m.labels, extra_labels)
                    ));
                }
                MetricValue::Histogram(h) => {
                    let highest =
                        h.buckets.iter().rposition(|&c| c > 0).map(|i| i + 1).unwrap_or(0);
                    let mut cumulative = 0u64;
                    for i in 0..highest {
                        cumulative += h.buckets[i];
                        let le = crate::Histogram::bucket_upper_bound(i);
                        // OpenMetrics-style exemplar suffix: ties the
                        // bucket to the last sampled trace that landed in
                        // it, so a p99 spike on /metrics links straight to
                        // GET /trace/<id>. The exemplar value is the
                        // bucket bound (per-sample values aren't retained).
                        let exemplar = if h.exemplars[i] != 0 {
                            format!(" # {{trace_id=\"{:016x}\"}} {le}", h.exemplars[i])
                        } else {
                            String::new()
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}{exemplar}\n",
                            m.name,
                            Self::fmt_labels_with_le(&m.labels, extra_labels, &le.to_string())
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        Self::fmt_labels_with_le(&m.labels, extra_labels, "+Inf"),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        Self::fmt_labels(&m.labels, extra_labels),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        Self::fmt_labels(&m.labels, extra_labels),
                        h.count
                    ));
                }
            }
            last_family = &m.name;
        }
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("velox_x_total");
        let b = r.counter("velox_x_total");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_distinguish_handles() {
        let r = Registry::new();
        let a = r.counter_with("velox_reads_total", &[("node", "0")]);
        let b = r.counter_with("velox_reads_total", &[("node", "1")]);
        a.add(3);
        b.add(4);
        let snap = r.snapshot();
        assert_eq!(snap.counter("velox_reads_total"), 7, "counter() sums labels");
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("velox_thing");
        r.gauge("velox_thing");
    }

    #[test]
    fn adopting_exposes_external_atomics() {
        let r = Registry::new();
        let external = Arc::new(Counter::new());
        r.register_counter("velox_kv_reads_total", &[("table", "users")], Arc::clone(&external));
        external.add(9);
        assert_eq!(r.snapshot().counter("velox_kv_reads_total"), 9);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.gauge("velox_b_gauge").set(-2);
        r.counter("velox_a_total").add(5);
        let h = r.histogram("velox_c_latency_ns");
        h.record(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "velox_a_total",
                "velox_b_gauge",
                "velox_c_latency_ns",
                "velox_lifecycle_events_dropped_total",
            ]
        );
        assert_eq!(snap.gauge("velox_b_gauge"), Some(-2));
        assert_eq!(snap.histogram("velox_c_latency_ns").unwrap().count, 1);
    }

    #[test]
    fn event_overflow_counter_is_exported() {
        let r = Registry::new();
        assert_eq!(r.snapshot().counter("velox_lifecycle_events_dropped_total"), 0);
        // Overflow a tiny ring through a dedicated registry-like log: the
        // registry's own ring has default capacity, so drive it past that.
        for i in 0..(crate::events::DEFAULT_EVENT_CAPACITY as u64 + 5) {
            r.event(EventKind::CacheRepopulation { entries: i });
        }
        assert_eq!(r.snapshot().counter("velox_lifecycle_events_dropped_total"), 5);
        let text = r.render_prometheus(&[]);
        assert!(text.contains("# TYPE velox_lifecycle_events_dropped_total counter"));
        assert!(text.contains("velox_lifecycle_events_dropped_total 5"));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter_with("velox_hits_total", &[("cache", "prediction")]).add(2);
        let h = r.histogram("velox_predict_latency_ns");
        h.record(100);
        h.record(200_000);
        let text = r.render_prometheus(&[("model", "demo")]);
        assert!(text.contains("# TYPE velox_hits_total counter"));
        assert!(text.contains("velox_hits_total{model=\"demo\",cache=\"prediction\"} 2"));
        assert!(text.contains("# TYPE velox_predict_latency_ns histogram"));
        assert!(text.contains("velox_predict_latency_ns_count{model=\"demo\"} 2"));
        assert!(text.contains("velox_predict_latency_ns_sum{model=\"demo\"} 200100"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        // Cumulative buckets are non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn exemplars_render_on_bucket_lines() {
        let r = Registry::new();
        let h = r.histogram("velox_e_latency_ns");
        h.record(100); // no exemplar on this bucket
        h.record_exemplar(1_000_000, 0xabcdef);
        let text = r.render_prometheus(&[]);
        assert!(
            text.contains("# {trace_id=\"0000000000abcdef\"}"),
            "exemplar missing from exposition:\n{text}"
        );
        // The untouched bucket renders without an exemplar suffix.
        let bucket_100 = text
            .lines()
            .find(|l| l.contains("le=\"127\""))
            .expect("bucket for 100ns sample rendered");
        assert!(!bucket_100.contains('#'), "unexpected exemplar: {bucket_100}");
    }

    #[test]
    fn histogram_family_merges_labelled_variants() {
        let r = Registry::new();
        r.histogram_with("velox_u_ns", &[("strategy", "naive")]).record(10);
        r.histogram_with("velox_u_ns", &[("strategy", "sherman_morrison")]).record(20);
        let merged = r.snapshot().histogram("velox_u_ns").unwrap();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum, 30);
    }

    #[test]
    fn events_flow_through_registry() {
        let r = Registry::new();
        r.event(EventKind::RetrainStart { observations: 1 });
        r.event(EventKind::VersionSwap { from: 1, to: 2 });
        let events = r.recent_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind.name(), "version_swap");
    }
}
