//! Structured lifecycle events: a bounded ring of "what the system did".
//!
//! Velox's model lifecycle (§4.2, §6) is a sequence of discrete,
//! operationally interesting transitions — a retrain started, a version
//! was swapped in, a deployment rolled back, staleness tripped. Counters
//! tell you *how many*; this log tells you *which, when, and with what*.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// The kinds of lifecycle transitions Velox records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A retrained (or rolled-back) model version was atomically swapped in.
    VersionSwap {
        /// Version being replaced.
        from: u64,
        /// Version now serving.
        to: u64,
    },
    /// An offline retrain began.
    RetrainStart {
        /// Observation-log length at trigger time.
        observations: u64,
    },
    /// An offline retrain finished and its output was published.
    RetrainFinish {
        /// The version the retrain produced.
        version: u64,
        /// Wall-clock duration of the retrain in microseconds.
        duration_us: u64,
    },
    /// The deployment was rolled back to a retained earlier version.
    Rollback {
        /// Version rolled back from.
        from: u64,
        /// Version restored.
        to: u64,
    },
    /// The staleness detector tripped (prequential error drift), which
    /// triggers an automatic retrain.
    StalenessTrip {
        /// Observations seen when the detector fired.
        observations: u64,
    },
    /// The prediction cache was repopulated with hot keys after a swap.
    CacheRepopulation {
        /// Number of cache entries re-primed.
        entries: u64,
    },
    /// A cluster node went down (fault injection or detected failure).
    NodeDown {
        /// The failed node's id.
        node: u64,
    },
    /// A cluster node finished recovery and is serving again.
    NodeRecovered {
        /// The recovered node's id.
        node: u64,
        /// Entries re-populated from surviving replicas during catch-up.
        caught_up: u64,
    },
    /// The observe redo queue was drained after an outage ended.
    RedoDrain {
        /// Buffered observations re-applied to the online state.
        applied: u64,
    },
    /// A durable checkpoint of the deployment was written to disk.
    Checkpoint {
        /// Checkpoint sequence number (monotonic per deployment).
        seq: u64,
        /// Observation-log length the checkpoint covers; WAL records at or
        /// past this offset remain replayable.
        wal_offset: u64,
        /// WAL segment files deleted because every retained checkpoint now
        /// covers them.
        wal_segments_removed: u64,
    },
    /// Startup recovery finished: checkpoint loaded (when one existed) and
    /// the WAL tail replayed through the online-update path.
    Recovery {
        /// WAL records replayed on top of the checkpoint.
        replayed: u64,
        /// 1 when the scan stopped at a torn/corrupt record (truncated
        /// cleanly), 0 when every byte on disk was valid.
        torn: u64,
    },
}

impl EventKind {
    /// Stable snake_case name of the event type.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::VersionSwap { .. } => "version_swap",
            EventKind::RetrainStart { .. } => "retrain_start",
            EventKind::RetrainFinish { .. } => "retrain_finish",
            EventKind::Rollback { .. } => "rollback",
            EventKind::StalenessTrip { .. } => "staleness_trip",
            EventKind::CacheRepopulation { .. } => "cache_repopulation",
            EventKind::NodeDown { .. } => "node_down",
            EventKind::NodeRecovered { .. } => "node_recovered",
            EventKind::RedoDrain { .. } => "redo_drain",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::Recovery { .. } => "recovery",
        }
    }

    /// The event's payload as `(field, value)` pairs — generic enough for
    /// any serializer (the REST layer renders these as JSON numbers).
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::VersionSwap { from, to } => vec![("from", from), ("to", to)],
            EventKind::RetrainStart { observations } => {
                vec![("observations", observations)]
            }
            EventKind::RetrainFinish { version, duration_us } => {
                vec![("version", version), ("duration_us", duration_us)]
            }
            EventKind::Rollback { from, to } => vec![("from", from), ("to", to)],
            EventKind::StalenessTrip { observations } => {
                vec![("observations", observations)]
            }
            EventKind::CacheRepopulation { entries } => vec![("entries", entries)],
            EventKind::NodeDown { node } => vec![("node", node)],
            EventKind::NodeRecovered { node, caught_up } => {
                vec![("node", node), ("caught_up", caught_up)]
            }
            EventKind::RedoDrain { applied } => vec![("applied", applied)],
            EventKind::Checkpoint { seq, wal_offset, wal_segments_removed } => vec![
                ("seq", seq),
                ("wal_offset", wal_offset),
                ("wal_segments_removed", wal_segments_removed),
            ],
            EventKind::Recovery { replayed, torn } => {
                vec![("replayed", replayed), ("torn", torn)]
            }
        }
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (1-based, never reused, survives ring
    /// eviction — gaps at the front tell you how much history was lost).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at record time.
    pub at_unix_ms: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A bounded ring buffer of [`Event`]s.
///
/// Recording takes a short mutex — lifecycle events happen at human
/// timescales (retrains, rollbacks), never on the per-request path, so a
/// mutex is the right tool. The ring keeps the most recent `capacity`
/// events; older ones fall off the front but their sequence numbers remain
/// allocated.
#[derive(Debug)]
pub struct EventLog {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    next_seq: AtomicU64,
    /// Events evicted from the ring before ever being read — the overflow
    /// counter operators watch to size the ring.
    dropped: AtomicU64,
}

/// Default ring capacity: enough for hundreds of retrain cycles.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

impl Default for EventLog {
    fn default() -> Self {
        Self::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// Creates an event log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            next_seq: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records an event now. Returns its sequence number.
    pub fn record(&self, kind: EventKind) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let at_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let event = Event { seq, at_unix_ms, kind };
        let mut ring = self.ring.lock().expect("event ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
        seq
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.ring.lock().expect("event ring poisoned").iter().cloned().collect()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("event ring poisoned").len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) - 1
    }

    /// Events lost to ring overflow (recorded, then evicted to make room).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence() {
        let log = EventLog::new(8);
        log.record(EventKind::RetrainStart { observations: 10 });
        log.record(EventKind::VersionSwap { from: 1, to: 2 });
        let events = log.recent();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
        assert_eq!(events[0].kind.name(), "retrain_start");
        assert_eq!(events[1].kind, EventKind::VersionSwap { from: 1, to: 2 });
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_seq() {
        let log = EventLog::new(3);
        for i in 0..10 {
            log.record(EventKind::CacheRepopulation { entries: i });
        }
        let events = log.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 8, "oldest retained is #8 of 10");
        assert_eq!(log.total_recorded(), 10);
        assert_eq!(log.dropped(), 7, "10 recorded − 3 retained = 7 dropped");
    }

    #[test]
    fn dropped_counter_stays_zero_without_overflow() {
        let log = EventLog::new(4);
        log.record(EventKind::RetrainStart { observations: 1 });
        log.record(EventKind::NodeDown { node: 2 });
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn fields_cover_every_variant() {
        let kinds = [
            EventKind::VersionSwap { from: 1, to: 2 },
            EventKind::RetrainStart { observations: 3 },
            EventKind::RetrainFinish { version: 2, duration_us: 50 },
            EventKind::Rollback { from: 2, to: 1 },
            EventKind::StalenessTrip { observations: 9 },
            EventKind::CacheRepopulation { entries: 4 },
            EventKind::NodeDown { node: 1 },
            EventKind::NodeRecovered { node: 1, caught_up: 12 },
            EventKind::RedoDrain { applied: 3 },
            EventKind::Checkpoint { seq: 1, wal_offset: 100, wal_segments_removed: 2 },
            EventKind::Recovery { replayed: 40, torn: 1 },
        ];
        for k in kinds {
            assert!(!k.name().is_empty());
            assert!(!k.fields().is_empty());
        }
    }

    #[test]
    fn timestamps_are_sane() {
        let log = EventLog::new(2);
        log.record(EventKind::RetrainStart { observations: 0 });
        let e = &log.recent()[0];
        // After 2020, before 2100.
        assert!(e.at_unix_ms > 1_577_836_800_000);
        assert!(e.at_unix_ms < 4_102_444_800_000);
    }
}
