//! Cheap span timers for hot paths.
//!
//! Two clock disciplines are available. [`TimerMode::Precise`] (the
//! default) reads the monotonic clock at span start and end — two
//! `Instant::now()` calls, ~130 ns total on the predict path, with
//! nanosecond-accurate samples. [`TimerMode::Coarse`] instead reads a
//! process-wide cached clock ([`CoarseClock`]) that only touches the real
//! clock every [`COARSE_REFRESH_INTERVAL`]th read: span *counts* stay
//! exact and long spans (retrains, recovery) stay accurate, but
//! sub-refresh-interval spans mostly record as 0 ns. Use it when the
//! timer's own overhead is a measurable fraction of the span, as on fully
//! cached predict hits — the before/after numbers live in `obs_overhead`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::Histogram;

/// Which clock discipline span timers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimerMode {
    /// Two real monotonic clock reads per span: exact durations.
    #[default]
    Precise,
    /// Cached-clock reads ([`CoarseClock`]): near-zero overhead, exact
    /// counts, durations quantized to the refresh cadence.
    Coarse,
}

/// Observability knobs threaded from configuration into hot paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsConfig {
    /// Clock discipline for request-path span timers.
    pub timer_mode: TimerMode,
}

/// Real-clock reads happen once per this many [`CoarseClock::now_ns`]
/// calls; the rest return the cached value.
pub const COARSE_REFRESH_INTERVAL: u64 = 64;

static COARSE_ANCHOR: OnceLock<Instant> = OnceLock::new();
static COARSE_CACHED_NS: AtomicU64 = AtomicU64::new(0);
static COARSE_TICK: AtomicU64 = AtomicU64::new(0);

/// A process-wide, monotonically non-decreasing, low-resolution clock.
///
/// `now_ns` is one relaxed `fetch_add` plus one relaxed load in the common
/// case; every [`COARSE_REFRESH_INTERVAL`]th call pays a real
/// `Instant::now()` and publishes it (via `fetch_max`, so the reading
/// never goes backwards under concurrency).
pub struct CoarseClock;

impl CoarseClock {
    /// Nanoseconds since the first use of the coarse clock, at cached
    /// resolution.
    #[inline]
    pub fn now_ns() -> u64 {
        let tick = COARSE_TICK.fetch_add(1, Ordering::Relaxed);
        if tick.is_multiple_of(COARSE_REFRESH_INTERVAL) {
            Self::refresh()
        } else {
            COARSE_CACHED_NS.load(Ordering::Relaxed)
        }
    }

    /// Forces a real clock read and publishes it. Returns the fresh value.
    #[inline]
    pub fn refresh() -> u64 {
        let anchor = COARSE_ANCHOR.get_or_init(Instant::now);
        let ns = anchor.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        COARSE_CACHED_NS.fetch_max(ns, Ordering::Relaxed);
        ns
    }
}

/// An explicit stopwatch: start it, then record the elapsed nanoseconds
/// into a histogram (or just read them). Two monotonic clock reads total.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        Timer { start: Instant::now() }
    }

    /// Nanoseconds elapsed since `start()`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Records the elapsed time into `hist` and returns it (ns).
    #[inline]
    pub fn observe(&self, hist: &Histogram) -> u64 {
        let ns = self.elapsed_ns();
        hist.record(ns);
        ns
    }
}

/// A guard that records the span from its creation to its drop into a
/// histogram. Created by [`Histogram::span`] or [`time_scope!`].
///
/// Because recording happens in `Drop`, every exit path of the enclosing
/// scope — early returns, `?`, panics during unwinding — is measured.
///
/// [`time_scope!`]: crate::time_scope
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: StartPoint,
}

#[derive(Debug)]
enum StartPoint {
    Precise(Instant),
    Coarse(u64),
}

impl<'a> SpanTimer<'a> {
    /// Starts a precise span recording into `hist` on drop.
    #[inline]
    pub fn new(hist: &'a Histogram) -> Self {
        Self::with_mode(hist, TimerMode::Precise)
    }

    /// Starts a span under the given clock discipline.
    #[inline]
    pub fn with_mode(hist: &'a Histogram, mode: TimerMode) -> Self {
        let start = match mode {
            TimerMode::Precise => StartPoint::Precise(Instant::now()),
            TimerMode::Coarse => StartPoint::Coarse(CoarseClock::now_ns()),
        };
        SpanTimer { hist, start }
    }
}

impl Drop for SpanTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        let ns = match self.start {
            StartPoint::Precise(start) => start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            StartPoint::Coarse(start) => CoarseClock::now_ns().saturating_sub(start),
        };
        self.hist.record(ns);
    }
}

/// Times the rest of the enclosing scope into a [`Histogram`]:
///
/// ```
/// use velox_obs::{time_scope, Histogram};
/// let hist = Histogram::new();
/// {
///     time_scope!(hist);
///     // ... work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[macro_export]
macro_rules! time_scope {
    ($hist:expr) => {
        let _velox_obs_span = $crate::SpanTimer::new(&$hist);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_elapsed() {
        let h = Histogram::new();
        let t = Timer::start();
        std::hint::black_box(1 + 1);
        let ns = t.observe(&h);
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().max, ns);
    }

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _span = h.span();
            assert_eq!(h.count(), 0, "nothing recorded until drop");
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn coarse_spans_count_exactly_and_never_go_negative() {
        let h = Histogram::new();
        for _ in 0..200 {
            let _span = SpanTimer::with_mode(&h, TimerMode::Coarse);
        }
        assert_eq!(h.count(), 200, "coarse mode must not lose span counts");
    }

    #[test]
    fn coarse_clock_is_monotonic() {
        let mut last = 0u64;
        for _ in 0..(COARSE_REFRESH_INTERVAL * 10) {
            let now = CoarseClock::now_ns();
            assert!(now >= last, "coarse clock went backwards: {now} < {last}");
            last = now;
        }
    }

    #[test]
    fn coarse_spans_still_measure_long_durations() {
        let h = Histogram::new();
        {
            let _span = SpanTimer::with_mode(&h, TimerMode::Coarse);
            std::thread::sleep(std::time::Duration::from_millis(5));
            // Enough reads to guarantee at least one real refresh before drop.
            for _ in 0..=COARSE_REFRESH_INTERVAL {
                CoarseClock::now_ns();
            }
        }
        assert!(
            h.snapshot().max >= 1_000_000,
            "a 5 ms span should register at millisecond scale, got {} ns",
            h.snapshot().max
        );
    }

    #[test]
    fn time_scope_records_every_exit_path() {
        let h = Histogram::new();
        fn early_return(h: &Histogram, flag: bool) -> u32 {
            time_scope!(*h);
            if flag {
                return 1;
            }
            2
        }
        early_return(&h, true);
        early_return(&h, false);
        assert_eq!(h.count(), 2);
    }
}
