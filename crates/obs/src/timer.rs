//! Cheap span timers for hot paths.

use std::time::Instant;

use crate::Histogram;

/// An explicit stopwatch: start it, then record the elapsed nanoseconds
/// into a histogram (or just read them). Two monotonic clock reads total.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        Timer { start: Instant::now() }
    }

    /// Nanoseconds elapsed since `start()`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Records the elapsed time into `hist` and returns it (ns).
    #[inline]
    pub fn observe(&self, hist: &Histogram) -> u64 {
        let ns = self.elapsed_ns();
        hist.record(ns);
        ns
    }
}

/// A guard that records the span from its creation to its drop into a
/// histogram. Created by [`Histogram::span`] or [`time_scope!`].
///
/// Because recording happens in `Drop`, every exit path of the enclosing
/// scope — early returns, `?`, panics during unwinding — is measured.
///
/// [`time_scope!`]: crate::time_scope
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> SpanTimer<'a> {
    /// Starts a span recording into `hist` on drop.
    #[inline]
    pub fn new(hist: &'a Histogram) -> Self {
        SpanTimer { hist, start: Instant::now() }
    }
}

impl Drop for SpanTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// Times the rest of the enclosing scope into a [`Histogram`]:
///
/// ```
/// use velox_obs::{time_scope, Histogram};
/// let hist = Histogram::new();
/// {
///     time_scope!(hist);
///     // ... work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[macro_export]
macro_rules! time_scope {
    ($hist:expr) => {
        let _velox_obs_span = $crate::SpanTimer::new(&$hist);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_elapsed() {
        let h = Histogram::new();
        let t = Timer::start();
        std::hint::black_box(1 + 1);
        let ns = t.observe(&h);
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().max, ns);
    }

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _span = h.span();
            assert_eq!(h.count(), 0, "nothing recorded until drop");
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn time_scope_records_every_exit_path() {
        let h = Histogram::new();
        fn early_return(h: &Histogram, flag: bool) -> u32 {
            time_scope!(*h);
            if flag {
                return 1;
            }
            2
        }
        early_return(&h, true);
        early_return(&h, false);
        assert_eq!(h.count(), 2);
    }
}
