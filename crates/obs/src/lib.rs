//! # velox-obs
//!
//! Zero-dependency observability substrate for the Velox reproduction.
//!
//! Velox's §6 lifecycle story — staleness detection, per-user error
//! tracking, retrain triggers, rollback — is fundamentally a *monitoring*
//! problem, and its successor Clipper makes latency-SLO observability a
//! first-class system component. This crate gives every layer of the
//! workspace a shared, std-only instrumentation vocabulary:
//!
//! - [`Counter`] / [`Gauge`]: single relaxed atomics; nanoseconds of
//!   overhead per update, safe on the hottest serving paths.
//! - [`Histogram`]: a lock-free log₂-bucketed latency histogram recording
//!   nanosecond samples into 64 power-of-two buckets, from which p50 / p95 /
//!   p99 / max are derived without ever taking a lock on the record path.
//! - [`Timer`] and [`time_scope!`]: a cheap span timer (two `Instant`
//!   reads) that records into a histogram either explicitly or on scope
//!   exit. [`SpanTimer::with_mode`] + [`TimerMode::Coarse`] swap the real
//!   clock for a cached one ([`CoarseClock`]) when even two clock reads
//!   are too much for the span being measured.
//! - [`EventLog`]: a bounded ring buffer of typed lifecycle events
//!   ([`EventKind`]) — version swaps, retrain start/finish, rollbacks,
//!   staleness trips, cache repopulations — so "what did the system do and
//!   when" survives past the moment it happened.
//! - [`Registry`]: a named collection of the above, snapshotable as plain
//!   data ([`RegistrySnapshot`]) and renderable as Prometheus-style text
//!   exposition for the REST `/metrics` endpoint.
//! - [`Tracer`] / [`TraceContext`] / [`SpanRing`] (module [`trace`]):
//!   end-to-end request tracing with head + tail sampling, lock-free
//!   per-node span rings, and span-tree reassembly — the "where did the
//!   p99 go" companion to the histograms above.
//!
//! ## Metric naming scheme
//!
//! Metrics follow `velox_<component>_<what>_<unit-or-total>`:
//! counters end in `_total`, latency histograms in `_latency_ns`, gauges
//! are bare. Dimensions (endpoint, node, table, strategy) are expressed as
//! labels, e.g. `velox_http_request_latency_ns{endpoint="predict"}`.
//!
//! ## Overhead
//!
//! Counters are one `fetch_add(Relaxed)`. A histogram record is three
//! relaxed `fetch_add`s plus one `fetch_max`. A timer span adds two
//! monotonic clock reads. Nothing on a record path allocates, locks, or
//! syscalls (event recording takes a short mutex but sits only on cold
//! lifecycle paths).

#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod registry;
pub mod timer;
pub mod trace;

pub use events::{Event, EventKind, EventLog};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricSample, MetricValue, Registry, RegistrySnapshot};
pub use timer::{CoarseClock, ObsConfig, SpanTimer, Timer, TimerMode, COARSE_REFRESH_INTERVAL};
pub use trace::{
    build_tree, structure, ActiveSpan, KeepDecision, KeepReason, KeptTrace, RootSpan, SpanKind,
    SpanRecord, SpanRing, SpanStatus, TraceConfig, TraceContext, TraceNode, Tracer, FRONT_NODE,
};
