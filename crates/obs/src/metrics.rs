//! Atomic counters, gauges, and lock-free log₂-bucketed histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// One relaxed `fetch_add` per increment; reads are relaxed loads. Shared
/// via `Arc` between the component that increments it and the [`Registry`]
/// that exposes it, so there is exactly one source of truth.
///
/// [`Registry`]: crate::Registry
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (used by the cluster simulator between experiment
    /// phases; production counters are never reset).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down (e.g. current model version,
/// online-user count).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets. Bucket `i` holds samples in `[2^i, 2^(i+1))`
/// (bucket 0 additionally holds zero), which spans 1 ns .. ~584 years —
/// every latency this system can produce.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free latency histogram with power-of-two buckets.
///
/// Samples are nanoseconds. Recording is three relaxed `fetch_add`s and a
/// `fetch_max` — no locks, no allocation — so it is safe inside `predict`'s
/// cached path. Quantiles are derived from the bucket counts at snapshot
/// time: a reported quantile is the *upper bound* of the bucket containing
/// that rank (clamped to the observed max), i.e. it over-estimates by at
/// most 2× within a bucket, which is the usual trade for a fixed-size
/// lock-free layout.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Last sampled trace_id per bucket (0 = none): OpenMetrics-style
    /// exemplars linking high-latency buckets to traces. Written only by
    /// [`Histogram::record_exemplar`]; plain [`Histogram::record`] never
    /// touches it.
    exemplars: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a sample: `floor(log2(v))`, with 0 mapping to
    /// bucket 0.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i`.
    #[inline]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }

    /// Records one sample (nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one sample and attaches `trace_id` as the bucket's
    /// exemplar (last writer wins), so `/metrics` readers can jump from a
    /// latency bucket straight to the trace that landed there. One extra
    /// relaxed store over [`Histogram::record`]; `trace_id == 0` records
    /// the sample without updating the exemplar.
    #[inline]
    pub fn record_exemplar(&self, value: u64, trace_id: u64) {
        self.record(value);
        if trace_id != 0 {
            self.exemplars[Self::bucket_of(value)].store(trace_id, Ordering::Relaxed);
        }
    }

    /// Records a [`std::time::Duration`] as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Starts a [`SpanTimer`] that records into this histogram when
    /// dropped.
    ///
    /// [`SpanTimer`]: crate::SpanTimer
    pub fn span(&self) -> crate::SpanTimer<'_> {
        crate::SpanTimer::new(self)
    }

    /// Copies the current state out as plain data. Individual fields are
    /// read with relaxed loads, so a snapshot taken during concurrent
    /// recording may be off by in-flight samples — fine for monitoring.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            exemplars: std::array::from_fn(|i| self.exemplars[i].load(Ordering::Relaxed)),
        }
    }
}

/// Plain-data copy of a [`Histogram`] at one point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum: u64,
    /// Largest sample seen (ns).
    pub max: u64,
    /// Per-bucket sample counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Per-bucket exemplar trace_ids (0 = none recorded).
    pub exemplars: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
            exemplars: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Mean sample value in nanoseconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds, or `None` when the
    /// histogram is empty (an empty histogram has no quantiles; callers
    /// that want a sentinel use [`HistogramSnapshot::quantile`]).
    ///
    /// The estimate is the upper bound of the bucket containing the rank,
    /// clamped to the observed max — so when every sample landed in one
    /// bucket, all quantiles collapse to the observed max rather than the
    /// (possibly much larger) bucket bound. A non-finite `q` (NaN /
    /// infinity) is treated as `1.0`; a torn concurrent snapshot whose
    /// bucket counts undershoot `count` also degrades to the max.
    pub fn try_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_finite() { q.clamp(0.0, 1.0) } else { 1.0 };
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Histogram::bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Like [`HistogramSnapshot::try_quantile`], but returns the sentinel
    /// `0` for an empty histogram — convenient for tables and gauges
    /// where "no data" renders the same as zero latency.
    pub fn quantile(&self, q: f64) -> u64 {
        self.try_quantile(q).unwrap_or(0)
    }

    /// Median (ns).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (ns).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (ns).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another snapshot into this one (for aggregating shards).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        for (a, b) in self.exemplars.iter_mut().zip(other.exemplars.iter()) {
            if *b != 0 {
                *a = *b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_basics() {
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_mapping() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
        assert_eq!(Histogram::bucket_upper_bound(0), 1);
        assert_eq!(Histogram::bucket_upper_bound(9), 1023);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        // 90 fast samples (~100ns), 10 slow (~1ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
        // p50 lands in the 100ns bucket [64,128); p99 in the 1ms bucket.
        assert!(s.p50() >= 100 && s.p50() < 128, "p50 = {}", s.p50());
        assert!(s.p99() >= 1_000_000, "p99 = {}", s.p99());
        assert!(s.p99() <= s.max);
        assert!((s.mean() - 100_090.0).abs() < 1.0);
    }

    #[test]
    fn quantile_upper_bounds_within_2x() {
        let h = Histogram::new();
        for v in [3u64, 9, 17, 120, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        // Every reported quantile is >= some real sample and <= max.
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let est = s.quantile(q);
            assert!(est <= s.max);
            assert!(est >= 3);
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.max, s.p50(), s.p99()), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new().snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.try_quantile(q), None, "empty histogram must report no quantile");
            assert_eq!(s.quantile(q), 0, "sentinel for empty histogram is 0");
        }
    }

    #[test]
    fn single_bucket_quantiles_return_observed_max_not_bucket_bound() {
        // All samples in bucket [64, 128): a naive implementation would
        // report the bucket bound 127 for every quantile.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(100);
        }
        let s = h.snapshot();
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(s.try_quantile(q), Some(100), "single-value histogram: q={q}");
        }
        // Single sample: same story.
        let h = Histogram::new();
        h.record(77);
        let s = h.snapshot();
        assert_eq!(s.p50(), 77);
        assert_eq!(s.p99(), 77);
    }

    #[test]
    fn non_finite_quantile_degrades_to_max() {
        let h = Histogram::new();
        h.record(10);
        h.record(2000);
        let s = h.snapshot();
        assert_eq!(s.try_quantile(f64::NAN), Some(s.quantile(1.0)));
        assert_eq!(s.try_quantile(f64::INFINITY), Some(s.quantile(1.0)));
    }

    #[test]
    fn exemplars_attach_to_buckets_and_survive_merge() {
        let h = Histogram::new();
        h.record(100); // plain record: no exemplar
        h.record_exemplar(100, 0xabc);
        h.record_exemplar(1_000_000, 0xdef);
        h.record_exemplar(50, 0); // zero trace_id: sample only
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.exemplars[Histogram::bucket_of(100)], 0xabc);
        assert_eq!(s.exemplars[Histogram::bucket_of(1_000_000)], 0xdef);
        assert_eq!(s.exemplars[Histogram::bucket_of(50)], 0);

        let other = Histogram::new();
        other.record_exemplar(100, 0x123);
        let mut merged = s.clone();
        merged.merge(&other.snapshot());
        assert_eq!(merged.exemplars[Histogram::bucket_of(100)], 0x123, "newest exemplar wins");
        assert_eq!(merged.exemplars[Histogram::bucket_of(1_000_000)], 0xdef, "absent stays");
    }

    #[test]
    fn merge_combines_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1000);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count, 2);
        assert_eq!(sa.max, 1000);
        assert_eq!(sa.sum, 1010);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 1000 + i % 997);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
    }
}
