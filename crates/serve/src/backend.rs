//! The model-abstraction layer: [`PredictBackend`] and its built-in
//! implementations.
//!
//! Clipper's model abstraction hides *what* computes a score behind a
//! uniform predict interface so the serving tier can batch, version, and
//! ensemble heterogeneous backends the same way. Three backends ship
//! in-tree:
//!
//! - [`VeloxBackend`] — a full [`Velox`] deployment (MF or content-basis
//!   model, online weights, caches). Its batched pass delegates to
//!   `Velox::predict_batch`, which amortizes the model snapshot and
//!   per-user weight reads while keeping the score computation
//!   bit-identical to the single-predict path.
//! - [`TransportBackend`] — a cluster connection (`SimTransport` or the
//!   TCP `NetCluster`) behind the `velox-cluster` [`Transport`] seam. Its
//!   batched pass coalesces duplicate `(uid, item)` pairs into one RPC.
//! - [`CustomScorer`] — a user-supplied closure or score table, the
//!   escape hatch for models trained outside Velox.

use std::collections::HashMap;
use std::sync::Arc;

use velox_cluster::Transport;
use velox_core::{DegradationLevel, Item, Velox};

use crate::error::ServeError;

/// Static description of a backend, for listings and diagnostics.
#[derive(Debug, Clone)]
pub struct BackendMeta {
    /// Backend flavor: `"velox"`, `"cluster"`, or `"custom"`.
    pub kind: &'static str,
    /// Feature dimension, when the backend has one (0 = not applicable).
    pub dim: usize,
    /// Internal model version, when the backend tracks one (a `Velox`
    /// deployment bumps this on every retrain swap; 0 = not applicable).
    pub model_version: u64,
}

/// Backend-specific detail carried alongside a score so the REST layer
/// can answer with the same fidelity fields as the unbatched paths.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeDetail {
    /// No extra detail (custom scorers).
    Plain,
    /// Detail from a `Velox` deployment's predict path.
    Velox {
        /// Score came from the prediction cache.
        cached: bool,
        /// User was unknown; bootstrap weights answered.
        bootstrapped: bool,
        /// Fault-degradation level of the answer.
        degradation: DegradationLevel,
    },
    /// Detail from a cluster transport predict.
    Cluster {
        /// Node that computed the score.
        node: u32,
        /// Served by a non-home node (forwarded or failed over).
        routed: bool,
        /// No weights existed; the bootstrap prior answered.
        cold_start: bool,
    },
}

/// One served prediction: the score plus backend-specific detail.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedPredict {
    /// The predicted score.
    pub score: f64,
    /// Backend-specific serving detail.
    pub detail: ServeDetail,
}

impl ServedPredict {
    /// A detail-free prediction (custom scorers).
    pub fn plain(score: f64) -> Self {
        ServedPredict { score, detail: ServeDetail::Plain }
    }
}

/// A uniform predict interface over heterogeneous model backends — the
/// serving tier's equivalent of Clipper's model abstraction layer.
///
/// The batched entry point is the contract the batching queue relies on:
/// `predict_batch` MUST be bit-identical to calling `predict_one` once
/// per request in order (same float op order, same cache policy). The
/// default implementation is exactly that loop; backends override it only
/// to amortize overhead (snapshots, weight reads, duplicate RPCs), never
/// to change the math. The `batched_bit_identity` property suite holds
/// every in-tree backend to this.
pub trait PredictBackend: Send + Sync {
    /// Static description of the backend.
    fn meta(&self) -> BackendMeta;

    /// Scores one `(uid, item)` pair.
    fn predict_one(&self, uid: u64, item: &Item) -> Result<ServedPredict, ServeError>;

    /// Scores a batch in one pass. Must be bit-identical to N sequential
    /// [`PredictBackend::predict_one`] calls.
    fn predict_batch(&self, requests: &[(u64, Item)]) -> Vec<Result<ServedPredict, ServeError>> {
        requests.iter().map(|(uid, item)| self.predict_one(*uid, item)).collect()
    }

    /// Applies one feedback observation. Returns the prequential loss
    /// when the backend computes one (used as the bandit reward signal);
    /// `Ok(None)` means the caller should derive a loss itself.
    fn observe(&self, _uid: u64, _item: &Item, _y: f64) -> Result<Option<f64>, ServeError> {
        Ok(None)
    }

    /// The wrapped `Velox` deployment, when this backend is one. Lets the
    /// tier drive the existing retrain/version-swap lifecycle through the
    /// manager without downcasting.
    fn velox(&self) -> Option<Arc<Velox>> {
        None
    }
}

/// A full [`Velox`] deployment as a serving backend.
pub struct VeloxBackend {
    velox: Arc<Velox>,
}

impl VeloxBackend {
    /// Wraps a deployment.
    pub fn new(velox: Arc<Velox>) -> Self {
        VeloxBackend { velox }
    }
}

impl PredictBackend for VeloxBackend {
    fn meta(&self) -> BackendMeta {
        BackendMeta {
            kind: "velox",
            dim: self.velox.dim(),
            model_version: self.velox.model_version(),
        }
    }

    fn predict_one(&self, uid: u64, item: &Item) -> Result<ServedPredict, ServeError> {
        let r = self.velox.predict(uid, item)?;
        Ok(ServedPredict {
            score: r.score,
            detail: ServeDetail::Velox {
                cached: r.cached,
                bootstrapped: r.bootstrapped,
                degradation: r.degradation,
            },
        })
    }

    fn predict_batch(&self, requests: &[(u64, Item)]) -> Vec<Result<ServedPredict, ServeError>> {
        self.velox
            .predict_batch(requests)
            .into_iter()
            .map(|r| {
                r.map(|r| ServedPredict {
                    score: r.score,
                    detail: ServeDetail::Velox {
                        cached: r.cached,
                        bootstrapped: r.bootstrapped,
                        degradation: r.degradation,
                    },
                })
                .map_err(ServeError::from)
            })
            .collect()
    }

    fn observe(&self, uid: u64, item: &Item, y: f64) -> Result<Option<f64>, ServeError> {
        let out = self.velox.observe(uid, item, y)?;
        Ok(if out.loss.is_nan() { None } else { Some(out.loss) })
    }

    fn velox(&self) -> Option<Arc<Velox>> {
        Some(Arc::clone(&self.velox))
    }
}

/// A cluster connection (simulated or TCP) as a serving backend. Items
/// must be catalog references ([`Item::Id`]); the cluster routes by id.
pub struct TransportBackend {
    transport: Arc<dyn Transport + Send + Sync>,
}

impl TransportBackend {
    /// Wraps a transport.
    pub fn new(transport: Arc<dyn Transport + Send + Sync>) -> Self {
        TransportBackend { transport }
    }

    fn item_id(item: &Item) -> Result<u64, ServeError> {
        item.id().ok_or(ServeError::WrongItemKind { expected: "a catalog item id" })
    }
}

impl PredictBackend for TransportBackend {
    fn meta(&self) -> BackendMeta {
        BackendMeta { kind: "cluster", dim: 0, model_version: 0 }
    }

    fn predict_one(&self, uid: u64, item: &Item) -> Result<ServedPredict, ServeError> {
        let id = Self::item_id(item)?;
        let p = self.transport.predict(uid, id)?;
        Ok(ServedPredict {
            score: p.score,
            detail: ServeDetail::Cluster {
                node: p.node as u32,
                routed: p.routed,
                cold_start: p.cold_start,
            },
        })
    }

    /// The distinct `(uid, item)` pairs of the batch go out as ONE
    /// batched transport call — one RPC per owning node instead of one
    /// round trip per request ([`Transport::predict_many`]) — and
    /// duplicates within the batch reuse the first answer. Scores are a
    /// pure function of the weight table between observes, so both the
    /// dedup and the batched wire path are bit-identical to N sequential
    /// predicts.
    fn predict_batch(&self, requests: &[(u64, Item)]) -> Vec<Result<ServedPredict, ServeError>> {
        let mut distinct: Vec<(u64, u64)> = Vec::new();
        let mut index: HashMap<(u64, u64), usize> = HashMap::new();
        let keys: Vec<Result<usize, ServeError>> = requests
            .iter()
            .map(|(uid, item)| {
                let id = Self::item_id(item)?;
                Ok(*index.entry((*uid, id)).or_insert_with(|| {
                    distinct.push((*uid, id));
                    distinct.len() - 1
                }))
            })
            .collect();
        let answers: Vec<Result<ServedPredict, ServeError>> = self
            .transport
            .predict_many(&distinct)
            .into_iter()
            .map(|r| {
                let p = r?;
                Ok(ServedPredict {
                    score: p.score,
                    detail: ServeDetail::Cluster {
                        node: p.node as u32,
                        routed: p.routed,
                        cold_start: p.cold_start,
                    },
                })
            })
            .collect();
        keys.into_iter().map(|k| k.and_then(|i| answers[i].clone())).collect()
    }

    fn observe(&self, uid: u64, item: &Item, y: f64) -> Result<Option<f64>, ServeError> {
        let id = Self::item_id(item)?;
        self.transport.observe(uid, id, y)?;
        Ok(None)
    }
}

/// Signature of a user-supplied scoring function.
pub type ScoreFn = dyn Fn(u64, &Item) -> Result<f64, ServeError> + Send + Sync;

/// A user-supplied scoring backend: a closure or a score table. This is
/// the deploy path for models trained outside Velox — anything that can
/// map `(uid, item)` to a score serves through the same batching queue
/// and version-swap protocol as the built-ins.
pub struct CustomScorer {
    dim: usize,
    f: Box<ScoreFn>,
}

impl CustomScorer {
    /// A scorer from a closure.
    pub fn from_fn<F>(f: F) -> Self
    where
        F: Fn(u64, &Item) -> Result<f64, ServeError> + Send + Sync + 'static,
    {
        CustomScorer { dim: 0, f: Box::new(f) }
    }

    /// A table-driven scorer: looks item ids up in a fixed score table,
    /// answering `default` on a miss (and for raw-payload items).
    pub fn from_table(table: HashMap<u64, f64>, default: f64) -> Self {
        CustomScorer {
            dim: 0,
            f: Box::new(move |_uid, item| {
                Ok(item.id().and_then(|id| table.get(&id).copied()).unwrap_or(default))
            }),
        }
    }

    /// Declares the feature dimension the scorer expects (metadata only).
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }
}

impl PredictBackend for CustomScorer {
    fn meta(&self) -> BackendMeta {
        BackendMeta { kind: "custom", dim: self.dim, model_version: 0 }
    }

    fn predict_one(&self, uid: u64, item: &Item) -> Result<ServedPredict, ServeError> {
        (self.f)(uid, item).map(ServedPredict::plain)
    }
}
