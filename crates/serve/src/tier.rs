//! The serving tier: batching queues in front of the backend registry,
//! plus bandit selection across backends.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use velox_bandit::{BanditPolicy, Candidate, EpsilonGreedyPolicy};
use velox_core::Item;
use velox_obs::{Registry, Tracer};

use crate::backend::{PredictBackend, ServedPredict, VeloxBackend};
use crate::batch::{lane_worker, BatchConfig, Lane, LaneStats};
use crate::error::ServeError;
use crate::manager::{ManagerSnapshot, ModelManager};

/// Conventional backend name for the cluster transport lane; the REST
/// layer routes `/cluster/predict` through the tier when a backend is
/// registered under this name.
pub const CLUSTER_BACKEND: &str = "cluster";

/// Serving-tier configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Batching-queue configuration applied to every lane.
    pub batch: BatchConfig,
    /// Exploration rate of the cross-backend selection policy.
    pub epsilon: f64,
    /// Seed for the selection policy.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { batch: BatchConfig::default(), epsilon: 0.05, seed: 42 }
    }
}

/// Listing entry for one registered backend (the `GET /models` payload).
#[derive(Debug, Clone)]
pub struct BackendStatus {
    /// Registered name.
    pub name: String,
    /// Backend flavor (`"velox"`, `"cluster"`, `"custom"`).
    pub kind: &'static str,
    /// Feature dimension (0 = not applicable).
    pub dim: usize,
    /// Version the serving alias points at.
    pub serving_version: u64,
    /// All retained versions, ascending.
    pub versions: Vec<u64>,
    /// Internal model version of the serving backend (Velox deployments).
    pub model_version: u64,
    /// Batching-lane statistics.
    pub lane: LaneStats,
}

struct RewardStat {
    n: u64,
    mean_loss: f64,
    m2: f64,
}

/// The serving tier: a [`ModelManager`] of versioned backends, one
/// adaptive batching lane per backend name, and a bandit policy that
/// selects across backends using observed prequential loss.
///
/// Wrap it in an `Arc` and share freely; every `predict` blocks the
/// calling thread until its batch is served.
pub struct ServeTier {
    manager: ModelManager,
    config: ServeConfig,
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
    lanes: Mutex<HashMap<String, Arc<Lane>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    policy: Mutex<Box<dyn BanditPolicy + Send>>,
    rewards: Mutex<HashMap<String, RewardStat>>,
}

impl ServeTier {
    /// A tier with default configuration.
    pub fn new() -> Arc<ServeTier> {
        Self::with_config(ServeConfig::default())
    }

    /// A tier with explicit configuration.
    pub fn with_config(config: ServeConfig) -> Arc<ServeTier> {
        Self::with_parts(config, Arc::new(Registry::new()), Tracer::disabled())
    }

    /// A tier wired to an existing metrics registry and tracer.
    pub fn with_parts(
        config: ServeConfig,
        registry: Arc<Registry>,
        tracer: Arc<Tracer>,
    ) -> Arc<ServeTier> {
        Arc::new(ServeTier {
            manager: ModelManager::new(),
            config,
            registry,
            tracer,
            lanes: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
            policy: Mutex::new(Box::new(EpsilonGreedyPolicy::new(config.epsilon, config.seed))),
            rewards: Mutex::new(HashMap::new()),
        })
    }

    /// The backend registry (for direct version management).
    pub fn manager(&self) -> &ModelManager {
        &self.manager
    }

    /// The tier's metrics registry (`velox_serve_*` series).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn ensure_lane(&self, name: &str) {
        let mut lanes = self.lanes.lock().unwrap();
        if lanes.contains_key(name) {
            return;
        }
        let lane = Lane::new(name, self.config.batch, &self.registry);
        lanes.insert(name.to_string(), Arc::clone(&lane));
        let manager = self.manager.clone();
        let tracer = Arc::clone(&self.tracer);
        let handle = std::thread::Builder::new()
            .name(format!("serve-{name}"))
            .spawn(move || lane_worker(lane, manager, tracer))
            .expect("spawn serve lane worker");
        self.workers.lock().unwrap().push(handle);
    }

    fn lane(&self, name: &str) -> Option<Arc<Lane>> {
        self.lanes.lock().unwrap().get(name).cloned()
    }

    /// Registers a backend version under `name` (new names start serving
    /// immediately; existing names need a [`ServeTier::flip_alias`]).
    pub fn register(
        &self,
        name: &str,
        backend: Arc<dyn PredictBackend>,
    ) -> Result<u64, ServeError> {
        let version = self.manager.register(name, backend)?;
        self.ensure_lane(name);
        Ok(version)
    }

    /// Registers a name that must not already exist.
    pub fn register_new(
        &self,
        name: &str,
        backend: Arc<dyn PredictBackend>,
    ) -> Result<u64, ServeError> {
        let version = self.manager.register_new(name, backend)?;
        self.ensure_lane(name);
        Ok(version)
    }

    /// Atomically flips the serving alias of `name` to `version`. Returns
    /// the previously serving version.
    pub fn flip_alias(&self, name: &str, version: u64) -> Result<u64, ServeError> {
        self.manager.flip_alias(name, version)
    }

    /// Retires a non-serving version of `name`.
    pub fn retire(&self, name: &str, version: u64) -> Result<(), ServeError> {
        self.manager.retire(name, version)
    }

    /// Whether `name` is registered.
    pub fn has(&self, name: &str) -> bool {
        self.manager.snapshot().has(name)
    }

    /// A point-in-time registry snapshot (one per request).
    pub fn snapshot(&self) -> ManagerSnapshot {
        self.manager.snapshot()
    }

    /// Scores through the adaptive batching queue: blocks until the
    /// request's batch is served.
    pub fn predict(&self, name: &str, uid: u64, item: &Item) -> Result<ServedPredict, ServeError> {
        match self.lane(name) {
            Some(lane) => lane.predict(uid, item),
            None => self.predict_direct(name, uid, item),
        }
    }

    /// Scores immediately, bypassing the batching queue (the unbatched
    /// baseline). One manager snapshot per request.
    pub fn predict_direct(
        &self,
        name: &str,
        uid: u64,
        item: &Item,
    ) -> Result<ServedPredict, ServeError> {
        let snapshot = self.manager.snapshot();
        let entry = snapshot.resolve(name)?;
        entry.backend.predict_one(uid, item)
    }

    /// Applies feedback to `name`'s serving backend and records the
    /// prequential loss as the backend's selection reward. Backends that
    /// don't report a loss get a squared-error loss against their own
    /// pre-update prediction.
    pub fn observe(&self, name: &str, uid: u64, item: &Item, y: f64) -> Result<f64, ServeError> {
        let snapshot = self.manager.snapshot();
        let entry = snapshot.resolve(name)?;
        let loss = match entry.backend.observe(uid, item, y)? {
            Some(loss) => loss,
            None => {
                let pred = entry.backend.predict_one(uid, item)?;
                let e = y - pred.score;
                e * e
            }
        };
        if loss.is_finite() {
            let mut rewards = self.rewards.lock().unwrap();
            let stat = rewards.entry(name.to_string()).or_insert(RewardStat {
                n: 0,
                mean_loss: 0.0,
                m2: 0.0,
            });
            stat.n += 1;
            let delta = loss - stat.mean_loss;
            stat.mean_loss += delta / stat.n as f64;
            stat.m2 += delta * (loss - stat.mean_loss);
        }
        Ok(loss)
    }

    /// Bandit-selects a backend by observed loss (lower mean loss =
    /// higher reward; unobserved backends get an optimistic prior) and
    /// serves the request through its batching lane. Returns the chosen
    /// backend name with the prediction. Feed outcomes back through
    /// [`ServeTier::observe`] with the returned name.
    pub fn select_predict(
        &self,
        uid: u64,
        item: &Item,
    ) -> Result<(String, ServedPredict), ServeError> {
        let names = self.manager.snapshot().names();
        if names.is_empty() {
            return Err(ServeError::Registry(velox_models::RegistryError::UnknownModel(
                "<any>".to_string(),
            )));
        }
        let candidates: Vec<Candidate> = {
            let rewards = self.rewards.lock().unwrap();
            names
                .iter()
                .map(|name| match rewards.get(name) {
                    Some(stat) if stat.n > 0 => {
                        let var = if stat.n > 1 { stat.m2 / (stat.n - 1) as f64 } else { 1.0 };
                        Candidate { score: -stat.mean_loss, variance: var / stat.n as f64 }
                    }
                    // Optimistic prior: unobserved backends score high so
                    // every backend gets explored at least once.
                    _ => Candidate { score: f64::MAX, variance: 1.0 },
                })
                .collect()
        };
        let choice = self.policy.lock().unwrap().select(&candidates);
        let name = names[choice.min(names.len() - 1)].clone();
        let prediction = self.predict(&name, uid, item)?;
        Ok((name, prediction))
    }

    /// Retrains a Velox-backed `name` through the existing offline
    /// retrain/swap lifecycle, then mirrors the swap at the manager level:
    /// the retrained deployment is registered as a new version, the alias
    /// flips to it, and the superseded version retires. Returns the new
    /// manager version.
    pub fn retrain(&self, name: &str) -> Result<u64, ServeError> {
        let snapshot = self.manager.snapshot();
        let entry = snapshot.resolve(name)?;
        let velox = entry.backend.velox().ok_or_else(|| {
            ServeError::Custom(format!("backend {name:?} is not a Velox deployment"))
        })?;
        velox.retrain_offline()?;
        let old_version = entry.version;
        let new_version = self.manager.register(name, Arc::new(VeloxBackend::new(velox)))?;
        self.manager.flip_alias(name, new_version)?;
        self.manager.retire(name, old_version)?;
        Ok(new_version)
    }

    /// Listing of every registered backend with its lane statistics,
    /// sorted by name.
    pub fn backends(&self) -> Vec<BackendStatus> {
        let snapshot = self.manager.snapshot();
        snapshot
            .names()
            .into_iter()
            .filter_map(|name| {
                let entry = snapshot.resolve(&name).ok()?;
                let meta = entry.meta();
                let lane = self.lane(&name)?;
                Some(BackendStatus {
                    name: name.clone(),
                    kind: meta.kind,
                    dim: meta.dim,
                    serving_version: entry.version,
                    versions: snapshot.versions(&name).unwrap_or_default(),
                    model_version: meta.model_version,
                    lane: lane.stats(),
                })
            })
            .collect()
    }

    /// Stops every lane worker and fails queued requests with
    /// [`ServeError::ShuttingDown`]. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        for lane in self.lanes.lock().unwrap().values() {
            lane.shutdown();
        }
        let workers: Vec<JoinHandle<()>> = self.workers.lock().unwrap().drain(..).collect();
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeTier {
    fn drop(&mut self) {
        self.shutdown();
    }
}
