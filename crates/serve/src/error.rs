//! Typed serving-tier errors.

use velox_cluster::TransportError;
use velox_core::VeloxError;
use velox_models::RegistryError;

/// Why a serving-tier request or management operation failed. Registry
/// shape mistakes reuse [`RegistryError`] verbatim so the REST layer maps
/// them to the same 400s the model registry produces.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A registry-shaped mistake: duplicate name on register, unknown
    /// name on resolve, or a version that is not retained.
    Registry(RegistryError),
    /// `retire` was asked to drop the version currently serving the
    /// alias; flip the alias to another version first.
    RetireServing {
        /// The backend name.
        name: String,
        /// The serving version the caller tried to retire.
        version: u64,
    },
    /// The underlying `Velox` deployment failed the request.
    Velox(VeloxError),
    /// The underlying cluster transport failed the request.
    Transport(TransportError),
    /// The item payload kind doesn't fit the backend (e.g. a raw feature
    /// vector sent to a transport backend that routes by item id).
    WrongItemKind {
        /// What the backend needed.
        expected: &'static str,
    },
    /// A custom scorer rejected the request.
    Custom(String),
    /// The tier is shutting down; the queued request was not served.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Registry(e) => write!(f, "{e}"),
            ServeError::RetireServing { name, version } => {
                write!(f, "backend {name:?} version {version} is the serving alias; flip first")
            }
            ServeError::Velox(e) => write!(f, "{e}"),
            ServeError::Transport(e) => write!(f, "{e}"),
            ServeError::WrongItemKind { expected } => {
                write!(f, "wrong item kind: this backend expects {expected}")
            }
            ServeError::Custom(msg) => write!(f, "custom scorer failed: {msg}"),
            ServeError::ShuttingDown => write!(f, "serving tier is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> Self {
        ServeError::Registry(e)
    }
}

impl From<VeloxError> for ServeError {
    fn from(e: VeloxError) -> Self {
        ServeError::Velox(e)
    }
}

impl From<TransportError> for ServeError {
    fn from(e: TransportError) -> Self {
        ServeError::Transport(e)
    }
}
