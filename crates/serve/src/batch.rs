//! The adaptive batching queue: per-backend request coalescing under an
//! AIMD-controlled batch size.
//!
//! ## Why batch
//!
//! A single predict is dominated by per-call overhead — snapshot loads,
//! weight-table reads, cache probes, lock traffic under concurrency. One
//! batched pass amortizes all of it (Clipper's core serving-tier insight),
//! trading a small queueing delay for a large throughput win.
//!
//! ## AIMD under a latency SLO
//!
//! The batch size is not configured; it is *learned* against the
//! per-backend SLO, TCP-congestion-control style:
//!
//! ```text
//!            batch served, batch SERVICE latency vs SLO
//!
//!              service under SLO and batch was full
//!            +--------------------------------------+
//!            |                                      v
//!        +-------+  service      +----------------------+
//!        | size  |  over SLO     | size += step (AI)    |
//!        | /= 2  | <------------ | (cap: max_batch)     |
//!        | (MD)  | ------------> |                      |
//!        +-------+   next batch  +----------------------+
//! ```
//!
//! Additive increase only fires when the served batch actually filled the
//! current target — queue pressure, not optimism, grows the batch.
//! Multiplicative decrease halves the target (floor 1) when the *batch
//! service latency* — the one thing batch size controls — exceeds the
//! SLO, so a service-time regression backs off in O(log) batches.
//!
//! The controller deliberately ignores queue wait (Clipper keys its AIMD
//! off processing latency for the same reason): under a backlog every
//! request is over the SLO end-to-end *regardless* of batch size, and
//! the cure for a backlog is a BIGGER batch. Folding queue wait into the
//! decrease signal creates a death spiral — backlog ⇒ violation ⇒
//! halve ⇒ worse backlog — that pins the lane at singleton batches
//! exactly when batching matters most. End-to-end latency is still what
//! the SLO-violation counter and request-latency histogram report, so
//! overload remains visible; it just doesn't drive the batch size down.
//!
//! ## Flush timeout
//!
//! Low-concurrency traffic must never wait out the SLO hoping for a
//! fuller batch: the worker serves a partial batch once the *oldest*
//! queued request has waited `flush_timeout`, and serves immediately when
//! the queue reaches the target size.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use velox_core::Item;
use velox_obs::{Counter, Gauge, Histogram, Registry, SpanKind, SpanStatus, Tracer, FRONT_NODE};

use crate::backend::ServedPredict;
use crate::error::ServeError;
use crate::manager::ModelManager;

/// Batching-queue configuration, per backend.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Latency SLO. The AIMD controller sizes batches so one batched
    /// pass (service time) stays within it; the violation counter and
    /// latency histogram measure requests end-to-end (queue wait +
    /// service) against the same bound.
    pub slo: Duration,
    /// Maximum extra wait for a fuller batch, measured from the oldest
    /// queued request's enqueue time.
    pub flush_timeout: Duration,
    /// Hard cap on the learned batch size.
    pub max_batch: usize,
    /// Initial batch-size target.
    pub initial_batch: usize,
    /// Additive-increase step applied after a full batch under SLO.
    pub additive_step: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            slo: Duration::from_millis(5),
            flush_timeout: Duration::from_micros(200),
            max_batch: 256,
            initial_batch: 1,
            additive_step: 1,
        }
    }
}

/// Point-in-time serving statistics of one backend lane.
#[derive(Debug, Clone)]
pub struct LaneStats {
    /// Requests served through the lane.
    pub requests: u64,
    /// Batched passes executed.
    pub batches: u64,
    /// Mean served batch size.
    pub mean_batch: f64,
    /// Current AIMD batch-size target.
    pub batch_target: usize,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Requests whose end-to-end latency exceeded the SLO.
    pub slo_violations: u64,
    /// p99 end-to-end request latency, nanoseconds.
    pub request_p99_ns: u64,
}

struct Slot {
    result: Mutex<Option<Result<ServedPredict, ServeError>>>,
    cv: Condvar,
}

struct Pending {
    uid: u64,
    item: Item,
    enqueued: Instant,
    slot: Arc<Slot>,
}

/// One backend's queue, AIMD state, and metrics. Shared between callers
/// (enqueue) and the lane's worker thread (drain + serve).
pub(crate) struct Lane {
    name: String,
    config: BatchConfig,
    queue: Mutex<VecDeque<Pending>>,
    cv: Condvar,
    batch_target: AtomicUsize,
    stop: AtomicBool,
    requests: Arc<Counter>,
    batches: Arc<Counter>,
    slo_violations: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    batch_size_hist: Arc<Histogram>,
    batch_latency_ns: Arc<Histogram>,
    request_latency_ns: Arc<Histogram>,
}

impl Lane {
    pub(crate) fn new(name: &str, config: BatchConfig, registry: &Registry) -> Arc<Lane> {
        let labels: &[(&str, &str)] = &[("backend", name)];
        Arc::new(Lane {
            name: name.to_string(),
            config,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            batch_target: AtomicUsize::new(config.initial_batch.clamp(1, config.max_batch)),
            stop: AtomicBool::new(false),
            requests: registry.counter_with("velox_serve_requests_total", labels),
            batches: registry.counter_with("velox_serve_batches_total", labels),
            slo_violations: registry.counter_with("velox_serve_slo_violations_total", labels),
            queue_depth: registry.gauge_with("velox_serve_queue_depth", labels),
            batch_size_hist: registry.histogram_with("velox_serve_batch_size", labels),
            batch_latency_ns: registry.histogram_with("velox_serve_batch_latency_ns", labels),
            request_latency_ns: registry.histogram_with("velox_serve_request_latency_ns", labels),
        })
    }

    pub(crate) fn stats(&self) -> LaneStats {
        let requests = self.requests.get();
        let batches = self.batches.get();
        LaneStats {
            requests,
            batches,
            mean_batch: if batches == 0 { 0.0 } else { requests as f64 / batches as f64 },
            batch_target: self.batch_target.load(Ordering::Relaxed),
            queue_depth: self.queue.lock().unwrap().len(),
            slo_violations: self.slo_violations.get(),
            request_p99_ns: self.request_latency_ns.snapshot().p99(),
        }
    }

    /// Enqueues one request and blocks until its batch is served.
    pub(crate) fn predict(&self, uid: u64, item: &Item) -> Result<ServedPredict, ServeError> {
        if self.stop.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let slot = Arc::new(Slot { result: Mutex::new(None), cv: Condvar::new() });
        {
            let mut q = self.queue.lock().unwrap();
            q.push_back(Pending {
                uid,
                item: item.clone(),
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            });
            self.queue_depth.set(q.len() as i64);
        }
        self.cv.notify_one();
        let mut done = slot.result.lock().unwrap();
        while done.is_none() {
            done = slot.cv.wait(done).unwrap();
        }
        done.take().unwrap()
    }

    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Blocks until a batch is ready per the flush policy, then drains it.
    /// Returns `None` when the lane is shut down and drained.
    fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if q.is_empty() {
                if self.stop.load(Ordering::Acquire) {
                    return None;
                }
                q = self.cv.wait(q).unwrap();
                continue;
            }
            let target = self.batch_target.load(Ordering::Relaxed).clamp(1, self.config.max_batch);
            if q.len() >= target || self.stop.load(Ordering::Acquire) {
                break;
            }
            // Partial batch: wait for more work, but only until the oldest
            // request has been queued for the flush timeout.
            let deadline = q.front().unwrap().enqueued + self.config.flush_timeout;
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, wait) = self.cv.wait_timeout(q, deadline - now).unwrap();
            q = guard;
            if q.is_empty() {
                continue;
            }
            if wait.timed_out() {
                break;
            }
        }
        let target = self.batch_target.load(Ordering::Relaxed).clamp(1, self.config.max_batch);
        let n = q.len().min(target).max(1);
        let batch: Vec<Pending> = q.drain(..n).collect();
        self.queue_depth.set(q.len() as i64);
        Some(batch)
    }

    /// AIMD step after serving a batch. `service` is the batched pass's
    /// own latency, NOT end-to-end request latency — see the module doc
    /// for why queue wait must stay out of the decrease signal.
    fn adjust_target(&self, served: usize, service: Duration) {
        let target = self.batch_target.load(Ordering::Relaxed);
        let next = if service > self.config.slo {
            (target / 2).max(1)
        } else if served >= target {
            (target + self.config.additive_step).min(self.config.max_batch)
        } else {
            target
        };
        self.batch_target.store(next, Ordering::Relaxed);
    }
}

/// The lane's worker loop: drain → one snapshot → one batched backend
/// pass → distribute results → AIMD adjust. Runs until shutdown.
pub(crate) fn lane_worker(lane: Arc<Lane>, manager: ModelManager, tracer: Arc<Tracer>) {
    while let Some(batch) = lane.next_batch() {
        let root = tracer.ingress(SpanKind::Batch, FRONT_NODE);
        let started = Instant::now();
        // One manager snapshot per batch: an alias flip concurrent with
        // this pass cannot be observed mid-batch.
        let snapshot = manager.snapshot();
        let requests: Vec<(u64, Item)> = batch.iter().map(|p| (p.uid, p.item.clone())).collect();
        let results = match snapshot.resolve(&lane.name) {
            Ok(entry) => {
                let ctx = root.as_ref().map(|r| r.ctx());
                let span = tracer.child(ctx.as_ref(), SpanKind::Backend, FRONT_NODE);
                let results = entry.backend.predict_batch(&requests);
                tracer.finish(span);
                results
            }
            Err(e) => {
                if let Some(r) = root.as_ref() {
                    let span = tracer.child(Some(&r.ctx()), SpanKind::Backend, FRONT_NODE);
                    tracer.finish_status(span, SpanStatus::Error);
                }
                batch.iter().map(|_| Err(e.clone())).collect()
            }
        };
        let service = started.elapsed();
        lane.batch_latency_ns.record_duration(service);
        lane.batch_size_hist.record(batch.len() as u64);
        lane.batches.inc();
        lane.requests.add(batch.len() as u64);

        for (pending, result) in batch.into_iter().zip(results) {
            let latency = pending.enqueued.elapsed();
            lane.request_latency_ns.record_duration(latency);
            if latency > lane.config.slo {
                lane.slo_violations.inc();
            }
            let mut done = pending.slot.result.lock().unwrap();
            *done = Some(result);
            pending.slot.cv.notify_one();
        }
        lane.adjust_target(requests.len(), service);
        if let Some(r) = root {
            tracer.end_root(r);
        }
    }
    // Shutdown: fail any requests that raced past the stop flag.
    let drained: Vec<Pending> = lane.queue.lock().unwrap().drain(..).collect();
    for pending in drained {
        let mut done = pending.slot.result.lock().unwrap();
        *done = Some(Err(ServeError::ShuttingDown));
        pending.slot.cv.notify_one();
    }
}
