//! The backend registry: named, versioned `dyn` backends behind an
//! immutable snapshot table.
//!
//! ## Snapshot discipline
//!
//! The whole registry state lives in one immutable [`ManagerSnapshot`]
//! behind an `Arc`; mutations build a fresh table and swap the `Arc`
//! (copy-on-write — entries themselves are shared, only the index is
//! rebuilt). A predict path takes **one snapshot per request** (one per
//! batch in the batching queue) and resolves everything against it, the
//! same discipline the partition maps use: an alias flip concurrent with
//! a request can never be observed mid-request, so no request is ever
//! served by a half-swapped model.
//!
//! ## Swap protocol
//!
//! Upgrading a backend is three steps, each atomic on the snapshot:
//!
//! 1. `register("m", v2_backend)` — the new version is retained but NOT
//!    serving; the alias still points at v1.
//! 2. `flip_alias("m", v2)` — one pointer swap; requests that already
//!    hold a snapshot finish on v1, new snapshots resolve v2.
//! 3. `retire("m", v1)` — drops the old version (refused while it still
//!    holds the alias).
//!
//! Rollback is just `flip_alias` back to a retained version.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use velox_models::RegistryError;

use crate::backend::{BackendMeta, PredictBackend};
use crate::error::ServeError;

/// One registered backend version.
#[derive(Clone)]
pub struct BackendEntry {
    /// Registered name.
    pub name: String,
    /// Manager-assigned version (1-based, monotone per name).
    pub version: u64,
    /// The backend object.
    pub backend: Arc<dyn PredictBackend>,
}

impl BackendEntry {
    /// Static description of the entry's backend.
    pub fn meta(&self) -> BackendMeta {
        self.backend.meta()
    }
}

impl std::fmt::Debug for BackendEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendEntry")
            .field("name", &self.name)
            .field("version", &self.version)
            .field("kind", &self.backend.meta().kind)
            .finish()
    }
}

#[derive(Clone)]
struct Lineage {
    versions: BTreeMap<u64, Arc<BackendEntry>>,
    serving: u64,
    next_version: u64,
}

/// An immutable point-in-time view of the registry. Cheap to clone
/// (one `Arc` bump); every resolution against one snapshot is mutually
/// consistent.
#[derive(Clone)]
pub struct ManagerSnapshot {
    lineages: Arc<HashMap<String, Lineage>>,
}

impl ManagerSnapshot {
    /// The serving entry for `name` (the version the alias points at).
    pub fn resolve(&self, name: &str) -> Result<Arc<BackendEntry>, ServeError> {
        let lin =
            self.lineages.get(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        lin.versions
            .get(&lin.serving)
            .cloned()
            .ok_or_else(|| ServeError::Registry(RegistryError::UnknownModel(name.to_string())))
    }

    /// A specific retained version of `name`.
    pub fn resolve_version(
        &self,
        name: &str,
        version: u64,
    ) -> Result<Arc<BackendEntry>, ServeError> {
        let lin =
            self.lineages.get(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        lin.versions.get(&version).cloned().ok_or_else(|| {
            ServeError::Registry(RegistryError::VersionNotRetained {
                name: name.to_string(),
                version,
            })
        })
    }

    /// Whether `name` is registered.
    pub fn has(&self, name: &str) -> bool {
        self.lineages.contains_key(name)
    }

    /// All registered names, sorted (deterministic candidate order for
    /// bandit selection).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lineages.keys().cloned().collect();
        names.sort();
        names
    }

    /// The serving version of `name`.
    pub fn serving_version(&self, name: &str) -> Result<u64, ServeError> {
        Ok(self
            .lineages
            .get(name)
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?
            .serving)
    }

    /// Retained versions of `name`, ascending.
    pub fn versions(&self, name: &str) -> Result<Vec<u64>, ServeError> {
        Ok(self
            .lineages
            .get(name)
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?
            .versions
            .keys()
            .copied()
            .collect())
    }
}

/// Thread-safe registry of named, versioned serving backends. Cloning
/// shares the registry (handles see each other's mutations).
#[derive(Clone, Default)]
pub struct ModelManager {
    table: Arc<Mutex<Option<ManagerSnapshot>>>,
}

impl ModelManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current snapshot. Take exactly one per request (or batch) and
    /// resolve everything against it.
    pub fn snapshot(&self) -> ManagerSnapshot {
        let guard = self.table.lock().unwrap();
        match guard.as_ref() {
            Some(snap) => snap.clone(),
            None => ManagerSnapshot { lineages: Arc::new(HashMap::new()) },
        }
    }

    fn mutate<R>(
        &self,
        f: impl FnOnce(&mut HashMap<String, Lineage>) -> Result<R, ServeError>,
    ) -> Result<R, ServeError> {
        let mut guard = self.table.lock().unwrap();
        let mut lineages = match guard.as_ref() {
            Some(snap) => (*snap.lineages).clone(),
            None => HashMap::new(),
        };
        let out = f(&mut lineages)?;
        *guard = Some(ManagerSnapshot { lineages: Arc::new(lineages) });
        Ok(out)
    }

    /// Registers a backend under `name` and returns the assigned version.
    /// A new name starts serving immediately at version 1; an existing
    /// name retains the new version WITHOUT flipping the serving alias —
    /// that is [`ModelManager::flip_alias`]'s job (step 1 of the swap
    /// protocol).
    pub fn register(
        &self,
        name: &str,
        backend: Arc<dyn PredictBackend>,
    ) -> Result<u64, ServeError> {
        self.mutate(|lineages| match lineages.get_mut(name) {
            Some(lin) => {
                let version = lin.next_version;
                lin.next_version += 1;
                let entry = BackendEntry { name: name.to_string(), version, backend };
                lin.versions.insert(version, Arc::new(entry));
                Ok(version)
            }
            None => {
                let entry = BackendEntry { name: name.to_string(), version: 1, backend };
                let mut versions = BTreeMap::new();
                versions.insert(1, Arc::new(entry));
                lineages
                    .insert(name.to_string(), Lineage { versions, serving: 1, next_version: 2 });
                Ok(1)
            }
        })
    }

    /// Registers a backend under a name that must NOT already exist —
    /// "create", not "create a version". Mirrors
    /// `ModelRegistry::register`'s duplicate refusal.
    pub fn register_new(
        &self,
        name: &str,
        backend: Arc<dyn PredictBackend>,
    ) -> Result<u64, ServeError> {
        self.mutate(|lineages| {
            if lineages.contains_key(name) {
                return Err(RegistryError::DuplicateModel(name.to_string()).into());
            }
            let entry = BackendEntry { name: name.to_string(), version: 1, backend };
            let mut versions = BTreeMap::new();
            versions.insert(1, Arc::new(entry));
            lineages.insert(name.to_string(), Lineage { versions, serving: 1, next_version: 2 });
            Ok(1)
        })
    }

    /// Atomically points the serving alias of `name` at a retained
    /// `version` (step 2 of the swap protocol; also the rollback path).
    /// Returns the previously serving version.
    pub fn flip_alias(&self, name: &str, version: u64) -> Result<u64, ServeError> {
        self.mutate(|lineages| {
            let lin = lineages
                .get_mut(name)
                .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
            if !lin.versions.contains_key(&version) {
                return Err(
                    RegistryError::VersionNotRetained { name: name.to_string(), version }.into()
                );
            }
            let prev = lin.serving;
            lin.serving = version;
            Ok(prev)
        })
    }

    /// Drops a retained `version` of `name` (step 3 of the swap
    /// protocol). Refused while the version holds the serving alias.
    pub fn retire(&self, name: &str, version: u64) -> Result<(), ServeError> {
        self.mutate(|lineages| {
            let lin = lineages
                .get_mut(name)
                .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
            if !lin.versions.contains_key(&version) {
                return Err(
                    RegistryError::VersionNotRetained { name: name.to_string(), version }.into()
                );
            }
            if lin.serving == version {
                return Err(ServeError::RetireServing { name: name.to_string(), version });
            }
            lin.versions.remove(&version);
            Ok(())
        })
    }

    /// Removes a name and every retained version. Returns whether it
    /// existed.
    pub fn remove(&self, name: &str) -> bool {
        self.mutate(|lineages| Ok(lineages.remove(name).is_some())).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CustomScorer;
    use velox_core::Item;

    fn constant(v: f64) -> Arc<dyn PredictBackend> {
        Arc::new(CustomScorer::from_fn(move |_, _| Ok(v)))
    }

    fn score(snap: &ManagerSnapshot, name: &str) -> f64 {
        snap.resolve(name).unwrap().backend.predict_one(0, &Item::Id(0)).unwrap().score
    }

    #[test]
    fn swap_protocol_register_flip_retire() {
        let mgr = ModelManager::new();
        assert_eq!(mgr.register("m", constant(1.0)).unwrap(), 1);
        // A snapshot taken before the upgrade keeps serving v1 throughout.
        let before = mgr.snapshot();
        assert_eq!(mgr.register("m", constant(2.0)).unwrap(), 2);
        assert_eq!(score(&mgr.snapshot(), "m"), 1.0, "register must not flip the alias");
        assert_eq!(mgr.flip_alias("m", 2).unwrap(), 1);
        assert_eq!(score(&mgr.snapshot(), "m"), 2.0);
        assert_eq!(score(&before, "m"), 1.0, "old snapshot is immutable");
        // Retiring the serving version is refused; the old one drops fine.
        assert_eq!(
            mgr.retire("m", 2).unwrap_err(),
            ServeError::RetireServing { name: "m".into(), version: 2 }
        );
        mgr.retire("m", 1).unwrap();
        assert_eq!(mgr.snapshot().versions("m").unwrap(), vec![2]);
    }

    #[test]
    fn typed_errors_for_unknown_and_duplicate() {
        let mgr = ModelManager::new();
        assert_eq!(
            mgr.snapshot().resolve("ghost").unwrap_err(),
            ServeError::Registry(RegistryError::UnknownModel("ghost".into()))
        );
        mgr.register_new("m", constant(1.0)).unwrap();
        assert_eq!(
            mgr.register_new("m", constant(2.0)).unwrap_err(),
            ServeError::Registry(RegistryError::DuplicateModel("m".into()))
        );
        assert_eq!(
            mgr.flip_alias("m", 9).unwrap_err(),
            ServeError::Registry(RegistryError::VersionNotRetained {
                name: "m".into(),
                version: 9
            })
        );
        assert_eq!(
            mgr.flip_alias("ghost", 1).unwrap_err(),
            ServeError::Registry(RegistryError::UnknownModel("ghost".into()))
        );
        assert!(mgr.remove("m"));
        assert!(!mgr.remove("m"));
    }
}
