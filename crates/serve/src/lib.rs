//! # velox-serve
//!
//! The Clipper-style serving tier (PAPERS.md: "Clipper: A Low-Latency
//! Online Prediction Serving System") layered over the Velox runtime:
//! the piece the paper's §6 model lifecycle stops short of.
//!
//! Two pillars:
//!
//! - **Model abstraction** — [`PredictBackend`] gives every scorer (a
//!   full [`velox_core::Velox`] deployment, a cluster transport, a
//!   user-supplied closure) one predict interface; [`ModelManager`]
//!   registers them by name with retained versions and an atomically
//!   flippable serving alias, resolved through immutable per-request
//!   snapshots so no request ever sees a half-swapped model.
//! - **Adaptive batching** — [`ServeTier`] runs one batching lane per
//!   backend that coalesces concurrent predicts into single batched
//!   passes, sizing batches by AIMD against a per-backend latency SLO
//!   (see [`batch`] for the state machine). Batched passes are
//!   bit-identical to sequential ones — batching buys throughput, never
//!   different answers.
//!
//! The tier exports `velox_serve_*` metrics and `batch`/`backend` trace
//! spans through `velox-obs`, and the REST layer mounts it under
//! `GET /models`, `POST /models/<name>/alias`, and the predict routes.

#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod error;
pub mod manager;
pub mod tier;

pub use backend::{
    BackendMeta, CustomScorer, PredictBackend, ServeDetail, ServedPredict, TransportBackend,
    VeloxBackend,
};
pub use batch::{BatchConfig, LaneStats};
pub use error::ServeError;
pub use manager::{BackendEntry, ManagerSnapshot, ModelManager};
pub use tier::{BackendStatus, ServeConfig, ServeTier, CLUSTER_BACKEND};
