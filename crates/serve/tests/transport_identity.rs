//! Bit-identity of the batched predict pass over cluster transports: the
//! in-process simulator and the real loopback TCP runtime must both come
//! back bit-identical between `predict_batch` and N sequential
//! `predict_one` calls — including when requests flow through the
//! serving tier's batching queue under real concurrency.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use velox_cluster::{Cluster, ClusterConfig, SimTransport, Transport};
use velox_core::Item;
use velox_net::{NetCluster, NetClusterConfig};
use velox_serve::{BatchConfig, PredictBackend, ServeConfig, ServeTier, TransportBackend};

const DIM: usize = 3;
const LR: f64 = 0.1;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 5) as f64 / 4.0).collect()
}

fn seeded_items() -> Vec<(u64, Vec<f64>)> {
    (0..16u64).map(|i| (i, item_features(i))).collect()
}

fn seed_observes(transport: &dyn Transport) {
    for uid in 0..6u64 {
        for i in 0..24u64 {
            let y = ((uid * 7 + i * 3) % 10) as f64 / 3.0;
            transport.observe(uid, i % 16, y).expect("seed observe");
        }
    }
}

fn sim_transport() -> Arc<dyn Transport + Send + Sync> {
    let cluster = Arc::new(Cluster::new(ClusterConfig { n_nodes: 3, ..Default::default() }));
    cluster.publish_item_features(seeded_items());
    let transport = SimTransport::new(cluster, LR);
    seed_observes(&transport);
    Arc::new(transport)
}

fn tcp_transport() -> Arc<dyn Transport + Send + Sync> {
    let cluster = NetCluster::start(NetClusterConfig {
        n_nodes: 3,
        user_replication: 2,
        lr: LR,
        wal_root: None,
        workers: 8,
        request_timeout: Duration::from_secs(2),
        ..Default::default()
    })
    .expect("start loopback cluster");
    cluster.publish_item_features(seeded_items());
    seed_observes(&cluster);
    Arc::new(cluster)
}

fn requests() -> Vec<(u64, Item)> {
    let mut reqs = Vec::new();
    for uid in 0..6u64 {
        for item in 0..16u64 {
            reqs.push((uid, Item::Id(item)));
        }
    }
    // Duplicate pairs exercise the backend's coalescing memo.
    reqs.push((2, Item::Id(3)));
    reqs.push((2, Item::Id(3)));
    reqs
}

fn assert_backend_bit_identity(transport: Arc<dyn Transport + Send + Sync>, label: &str) {
    let backend = TransportBackend::new(transport);
    let reqs = requests();
    let sequential: Vec<f64> = reqs
        .iter()
        .map(|(uid, item)| backend.predict_one(*uid, item).expect("sequential").score)
        .collect();
    for (i, result) in backend.predict_batch(&reqs).into_iter().enumerate() {
        let got = result.expect("batched").score;
        assert_eq!(
            sequential[i].to_bits(),
            got.to_bits(),
            "{label}: request {i} diverged between batched and sequential"
        );
    }
}

fn assert_tier_bit_identity(transport: Arc<dyn Transport + Send + Sync>, label: &str) {
    // Reference scores through the unbatched path first (no observes run
    // concurrently, so scores are a pure function of the weight table).
    let reference: HashMap<(u64, u64), u64> = {
        let backend = TransportBackend::new(Arc::clone(&transport));
        requests()
            .iter()
            .map(|(uid, item)| {
                let score = backend.predict_one(*uid, item).expect("reference").score;
                ((*uid, item.id().unwrap()), score.to_bits())
            })
            .collect()
    };

    let tier = ServeTier::with_config(ServeConfig {
        batch: BatchConfig {
            slo: Duration::from_millis(250),
            flush_timeout: Duration::from_micros(300),
            max_batch: 64,
            initial_batch: 1,
            additive_step: 4,
        },
        ..Default::default()
    });
    tier.register("cluster", Arc::new(TransportBackend::new(transport))).unwrap();

    let threads = 32;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let tier = Arc::clone(&tier);
            let reference = reference.clone();
            std::thread::spawn(move || {
                for round in 0..8u64 {
                    let uid = (t as u64 + round) % 6;
                    let item = (t as u64 * 3 + round) % 16;
                    let got =
                        tier.predict("cluster", uid, &Item::Id(item)).expect("tier predict").score;
                    assert_eq!(
                        reference[&(uid, item)],
                        got.to_bits(),
                        "batched tier answer diverged for ({uid}, {item})"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let status = &tier.backends()[0];
    assert_eq!(status.lane.requests, threads as u64 * 8, "{label}: all requests served");
}

#[test]
fn sim_transport_batched_pass_is_bit_identical() {
    assert_backend_bit_identity(sim_transport(), "sim");
}

#[test]
fn tcp_transport_batched_pass_is_bit_identical() {
    assert_backend_bit_identity(tcp_transport(), "tcp");
}

#[test]
fn tier_batching_is_bit_identical_over_sim_transport() {
    assert_tier_bit_identity(sim_transport(), "sim");
}

#[test]
fn tier_batching_is_bit_identical_over_tcp() {
    assert_tier_bit_identity(tcp_transport(), "tcp");
}
