//! Batching correctness: batched passes are bit-identical to sequential
//! ones for every in-tree backend, coalescing actually happens under
//! concurrency, AIMD backs off on SLO violations, and a concurrent
//! version swap never serves a request from a half-swapped model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use velox_batch::AlsConfig;
use velox_core::{Item, Velox, VeloxConfig};
use velox_linalg::Vector;
use velox_models::{MatrixFactorizationModel, RandomFourierModel};
use velox_serve::{
    BatchConfig, CustomScorer, PredictBackend, ServeConfig, ServeError, ServeTier, VeloxBackend,
};

const DIM: usize = 4;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 5) as f64 / 4.0 - 0.4).collect()
}

/// A deployed MF model with online state for a handful of users.
fn mf_velox() -> Arc<Velox> {
    let factors: HashMap<u64, Vector> =
        (0..32u64).map(|i| (i, Vector::from_vec(item_features(i)))).collect();
    let als = AlsConfig { rank: DIM, ..Default::default() };
    let model = MatrixFactorizationModel::from_table("mf", factors, 3.2, als).expect("mf model");
    let velox =
        Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node()));
    seed_observes(&velox);
    velox
}

/// A deployed content-basis (random Fourier) model.
fn basis_velox() -> Arc<Velox> {
    let model = RandomFourierModel::new("basis", DIM, 8, 0.7, 0.1, 9);
    let velox =
        Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node()));
    for item in 0..32u64 {
        velox.register_item(item, item_features(item));
    }
    seed_observes(&velox);
    velox
}

fn seed_observes(velox: &Velox) {
    for uid in 0..8u64 {
        for item in 0..8u64 {
            let y = ((uid * 7 + item * 3) % 10) as f64 / 3.0;
            velox.observe(uid, &Item::Id(item), y).expect("seed observe");
        }
    }
}

fn requests() -> Vec<(u64, Item)> {
    let mut reqs = Vec::new();
    for uid in 0..10u64 {
        for item in 0..16u64 {
            reqs.push((uid, Item::Id(item)));
        }
    }
    // Duplicates within the batch must also come back identical.
    reqs.push((0, Item::Id(0)));
    reqs.push((3, Item::Id(5)));
    reqs
}

fn assert_bit_identical(backend: &dyn PredictBackend, label: &str) {
    let reqs = requests();
    let sequential: Vec<f64> = reqs
        .iter()
        .map(|(uid, item)| backend.predict_one(*uid, item).expect("sequential predict").score)
        .collect();
    let batched = backend.predict_batch(&reqs);
    assert_eq!(batched.len(), reqs.len());
    for (i, (seq, batch)) in sequential.iter().zip(&batched).enumerate() {
        let got = batch.as_ref().expect("batched predict").score;
        assert_eq!(
            seq.to_bits(),
            got.to_bits(),
            "{label}: request {i} diverged: sequential {seq} vs batched {got}"
        );
    }
    // And in the other order, on a fresh pass: batch-first must agree too
    // (the batch may warm caches; the answers still may not move).
    let batched2 = backend.predict_batch(&reqs);
    for (a, b) in batched.iter().zip(&batched2) {
        assert_eq!(
            a.as_ref().unwrap().score.to_bits(),
            b.as_ref().unwrap().score.to_bits(),
            "{label}: repeated batch diverged"
        );
    }
}

#[test]
fn batched_pass_is_bit_identical_for_every_backend() {
    assert_bit_identical(&VeloxBackend::new(mf_velox()), "velox/mf");
    assert_bit_identical(&VeloxBackend::new(basis_velox()), "velox/basis");
    let table: HashMap<u64, f64> = (0..16u64).map(|i| (i, (i as f64).sin())).collect();
    assert_bit_identical(&CustomScorer::from_table(table, 0.25), "custom/table");
    assert_bit_identical(
        &CustomScorer::from_fn(|uid, item| {
            Ok((uid as f64 + 1.0).ln() + item.id().unwrap_or(0) as f64)
        }),
        "custom/fn",
    );
}

#[test]
fn tier_coalesces_concurrent_predicts_into_batches() {
    let config = ServeConfig {
        batch: BatchConfig {
            slo: Duration::from_millis(250),
            flush_timeout: Duration::from_micros(500),
            max_batch: 64,
            initial_batch: 1,
            additive_step: 4,
        },
        ..Default::default()
    };
    let tier = ServeTier::with_config(config);
    // A deliberately slow scorer so the queue builds up behind the first
    // batches and coalescing must kick in.
    tier.register(
        "slow",
        Arc::new(CustomScorer::from_fn(|uid, item| {
            std::thread::sleep(Duration::from_micros(300));
            Ok(uid as f64 + item.id().unwrap_or(0) as f64)
        })),
    )
    .unwrap();

    let threads = 16;
    let per_thread = 25;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let tier = Arc::clone(&tier);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    let uid = t as u64;
                    let item = Item::Id(i as u64);
                    let got = tier.predict("slow", uid, &item).expect("batched predict");
                    assert_eq!(got.score, uid as f64 + i as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let status = &tier.backends()[0];
    assert_eq!(status.lane.requests, (threads * per_thread) as u64);
    assert!(
        status.lane.batches < status.lane.requests,
        "expected coalescing: {} batches for {} requests",
        status.lane.batches,
        status.lane.requests
    );
    assert!(status.lane.mean_batch > 1.0, "mean batch {}", status.lane.mean_batch);
    // The batch-size histogram saw every batch.
    let hist = tier.registry().snapshot().histogram("velox_serve_batch_size").expect("batch hist");
    assert_eq!(hist.count, status.lane.batches);
}

#[test]
fn aimd_backs_off_to_singleton_batches_on_slo_violation() {
    let config = ServeConfig {
        batch: BatchConfig {
            // Impossible SLO: every batch violates, so multiplicative
            // decrease must pin the target at 1.
            slo: Duration::from_nanos(1),
            flush_timeout: Duration::from_micros(100),
            max_batch: 64,
            initial_batch: 16,
            additive_step: 4,
        },
        ..Default::default()
    };
    let tier = ServeTier::with_config(config);
    tier.register("m", Arc::new(CustomScorer::from_fn(|_, _| Ok(1.0)))).unwrap();
    for i in 0..40u64 {
        tier.predict("m", i, &Item::Id(i)).unwrap();
    }
    let status = &tier.backends()[0];
    assert!(status.lane.slo_violations > 0, "violations must be counted");
    assert_eq!(status.lane.batch_target, 1, "MD must floor the target at 1");
}

#[test]
fn concurrent_version_swap_never_serves_a_half_swapped_model() {
    let tier = ServeTier::with_config(ServeConfig {
        batch: BatchConfig {
            slo: Duration::from_millis(100),
            flush_timeout: Duration::from_micros(200),
            max_batch: 32,
            initial_batch: 1,
            additive_step: 2,
        },
        ..Default::default()
    });
    // v1 scores +f(uid, item); v2 scores -f(uid, item). Any mixing of the
    // two inside one answer would produce a third value.
    let f = |uid: u64, id: u64| (uid * 1000 + id) as f64 + 0.5;
    tier.register(
        "m",
        Arc::new(CustomScorer::from_fn(move |uid, item| Ok(f(uid, item.id().unwrap())))),
    )
    .unwrap();
    tier.register(
        "m",
        Arc::new(CustomScorer::from_fn(move |uid, item| Ok(-f(uid, item.id().unwrap())))),
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let flipper = {
        let tier = Arc::clone(&tier);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut v = 2u64;
            while !stop.load(Ordering::Relaxed) {
                tier.flip_alias("m", v).expect("flip");
                v = if v == 2 { 1 } else { 2 };
                std::thread::yield_now();
            }
        })
    };

    let clients: Vec<_> = (0..8)
        .map(|t| {
            let tier = Arc::clone(&tier);
            std::thread::spawn(move || {
                for i in 0..200u64 {
                    let uid = t as u64;
                    let expect = f(uid, i);
                    let got = tier.predict("m", uid, &Item::Id(i)).expect("predict").score;
                    assert!(
                        got.to_bits() == expect.to_bits() || got.to_bits() == (-expect).to_bits(),
                        "request saw a half-swapped model: got {got}, want ±{expect}"
                    );
                    // The unbatched path holds the same invariant.
                    let direct = tier.predict_direct("m", uid, &Item::Id(i)).unwrap().score;
                    assert!(
                        direct.to_bits() == expect.to_bits()
                            || direct.to_bits() == (-expect).to_bits()
                    );
                }
            })
        })
        .collect();
    for h in clients {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    flipper.join().unwrap();
}

#[test]
fn shutdown_refuses_new_work_with_typed_error() {
    let tier = ServeTier::with_config(ServeConfig::default());
    tier.register("m", Arc::new(CustomScorer::from_fn(|_, _| Ok(1.0)))).unwrap();
    tier.predict("m", 1, &Item::Id(1)).unwrap();
    tier.shutdown();
    assert_eq!(tier.predict("m", 1, &Item::Id(1)).unwrap_err(), ServeError::ShuttingDown);
}

#[test]
fn bandit_selection_converges_to_the_better_backend() {
    let tier = ServeTier::with_config(ServeConfig { epsilon: 0.1, seed: 7, ..Default::default() });
    // "good" predicts the label exactly; "bad" is off by 2.
    let label = |uid: u64, id: u64| ((uid + id) % 5) as f64;
    tier.register(
        "good",
        Arc::new(CustomScorer::from_fn(move |u, i| Ok(label(u, i.id().unwrap())))),
    )
    .unwrap();
    tier.register(
        "bad",
        Arc::new(CustomScorer::from_fn(move |u, i| Ok(label(u, i.id().unwrap()) + 2.0))),
    )
    .unwrap();
    let mut picks: HashMap<String, u32> = HashMap::new();
    for i in 0..300u64 {
        let item = Item::Id(i % 16);
        let (name, _) = tier.select_predict(i % 8, &item).expect("selection");
        *picks.entry(name.clone()).or_default() += 1;
        tier.observe(&name, i % 8, &item, label(i % 8, i % 16)).expect("feedback");
    }
    assert!(
        picks.get("good").copied().unwrap_or(0) > picks.get("bad").copied().unwrap_or(0),
        "selection should favor the lower-loss backend: {picks:?}"
    );
}

#[test]
fn tier_retrain_mirrors_the_velox_swap_at_the_manager_level() {
    let tier = ServeTier::with_config(ServeConfig::default());
    let velox = mf_velox();
    tier.register("mf", Arc::new(VeloxBackend::new(Arc::clone(&velox)))).unwrap();
    let before = tier.backends()[0].clone();
    assert_eq!(before.serving_version, 1);
    let new_version = tier.retrain("mf").expect("retrain through the tier");
    assert_eq!(new_version, 2);
    let after = tier.backends()[0].clone();
    assert_eq!(after.serving_version, 2);
    assert_eq!(after.versions, vec![2], "the superseded version retired");
    assert!(
        after.model_version > before.model_version,
        "the Velox deployment's own version lifecycle advanced"
    );
    // The retrained model still serves.
    tier.predict("mf", 1, &Item::Id(3)).expect("predict after swap");
}
