//! # velox
//!
//! Umbrella crate for the Velox reproduction (CIDR 2015): re-exports every
//! workspace crate under one roof so applications can depend on `velox`
//! alone. See the README for the architecture overview and DESIGN.md for
//! the paper-to-module map.

pub use velox_bandit as bandit;
pub use velox_batch as batch;
pub use velox_cluster as cluster;
pub use velox_core as core;
pub use velox_data as data;
pub use velox_linalg as linalg;
pub use velox_models as models;
pub use velox_net as net;
pub use velox_obs as obs;
pub use velox_online as online;
pub use velox_rest as rest;
pub use velox_serve as serve;
pub use velox_storage as storage;

/// Commonly-used types, one `use velox::prelude::*` away.
pub mod prelude {
    pub use velox_bandit::{BanditPolicy, Candidate};
    pub use velox_batch::{AlsConfig, AlsModel, JobExecutor};
    pub use velox_cluster::{
        ClusterConfig, FaultAction, FaultEvent, FaultPlan, NodeHealth, RoutingPolicy, SimTransport,
        Transport, TransportError, TransportObserve, TransportPredict,
    };
    pub use velox_core::config::BanditChoice;
    pub use velox_core::server::ModelSchema;
    pub use velox_core::{
        BootstrapState, CheckpointReport, DegradationLevel, DurabilityConfig, DurabilityStats,
        Item, ObserveOutcome, PredictResponse, RecoveryReport, SystemStats, TopKResponse,
        TrainingExample, Velox, VeloxConfig, VeloxError, VeloxModel, VeloxServer,
    };
    pub use velox_data::{
        Rating, RatingsDataset, SyntheticConfig, VeloxRng, WorkloadConfig, ZipfGenerator,
    };
    pub use velox_linalg::{Matrix, Vector};
    pub use velox_models::{
        IdentityModel, MatrixFactorizationModel, MlpFeatureModel, RandomFourierModel,
        SvmEnsembleModel,
    };
    pub use velox_net::{
        NetClient, NetClientConfig, NetCluster, NetClusterConfig, NetServer, NetServerConfig,
    };
    pub use velox_obs::{Counter, EventKind, Gauge, Histogram, Registry, SpanTimer, Timer};
    pub use velox_online::UpdateStrategy;
    pub use velox_serve::{
        BatchConfig, CustomScorer, ModelManager, PredictBackend, ServeConfig, ServeError,
        ServeTier, ServedPredict, TransportBackend, VeloxBackend, CLUSTER_BACKEND,
    };
    pub use velox_storage::{FsyncPolicy, ScratchDir};
}
