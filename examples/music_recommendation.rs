//! The paper's running example end-to-end: a song recommendation service.
//!
//! ```text
//! cargo run --release --example music_recommendation
//! ```
//!
//! Walks the full Velox lifecycle of Figure 1:
//!   1. **Train**: ALS matrix factorization on historical ratings (the
//!      "Spark" batch job).
//!   2. **Serve**: deploy to a 4-node simulated cluster; point predictions
//!      and topK with caching.
//!   3. **Observe**: stream new ratings through online updates and watch
//!      held-out error drop.
//!   4. **Retrain**: full offline retrain folds everything back in.

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;
use velox_data::three_way_split;

fn heldout_rmse(velox: &Velox, heldout: &[Rating], mu: f64) -> f64 {
    let mut sse = 0.0;
    for r in heldout {
        let p = velox.predict(r.uid, &Item::Id(r.item_id)).unwrap().score + mu;
        sse += (p - r.value) * (p - r.value);
    }
    (sse / heldout.len() as f64).sqrt()
}

fn main() -> Result<(), VeloxError> {
    // Historical ratings: 2000 listeners, 500 songs, Zipfian popularity.
    println!("=== 1. offline training (the batch phase) ===");
    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: 2000,
        n_items: 500,
        rank: 10,
        ratings_per_user: 30,
        noise_std: 0.4,
        seed: 2015,
        ..Default::default()
    });
    let split = three_way_split(&ds, 0.5, 0.7);
    println!(
        "dataset: {} ratings ({} offline / {} online / {} held out)",
        ds.len(),
        split.offline.len(),
        split.online.len(),
        split.heldout.len()
    );

    let executor = JobExecutor::default_parallelism();
    let als = AlsModel::train(
        &split.offline,
        ds.config.n_users,
        ds.config.n_items,
        AlsConfig { rank: 10, lambda: 0.05, iterations: 10, seed: 1 },
        &executor,
    );
    let mu = als.global_mean;
    println!(
        "ALS: {} iterations, training RMSE {:.4} -> {:.4}",
        als.training_curve.len(),
        als.training_curve.first().unwrap(),
        als.training_curve.last().unwrap()
    );

    println!("\n=== 2. deployment & serving ===");
    let (model, _) = MatrixFactorizationModel::from_als("songs", &als);
    let config = VeloxConfig {
        cluster: ClusterConfig { n_nodes: 4, ..Default::default() },
        bandit: BanditChoice::LinUcb(1.0),
        ..Default::default()
    };
    let velox = Velox::deploy(Arc::new(model), HashMap::new(), config);
    // Seed per-user state with the offline history (Eq. 2 uses each user's
    // full example set).
    let history: Vec<TrainingExample> = split
        .offline
        .iter()
        .map(|r| TrainingExample { uid: r.uid, item: Item::Id(r.item_id), y: r.value - mu })
        .collect();
    velox.ingest_history(&history)?;

    let rmse_static = heldout_rmse(&velox, &split.heldout, mu);
    println!("held-out RMSE after deployment: {rmse_static:.4}");

    // Serving: topK for one user, twice — the second call is cache-warm.
    let candidates: Vec<Item> = (0..100).map(Item::Id).collect();
    let first = velox.top_k(42, &candidates)?;
    let second = velox.top_k(42, &candidates)?;
    println!(
        "topK(100 candidates): first call {:.0}% cached, second {:.0}% cached",
        first.cached_fraction * 100.0,
        second.cached_fraction * 100.0
    );
    let best = first.ranked[0];
    println!("user 42's best song: {} (score {:+.3}); served: {}", best.0, best.1, first.served);

    println!("\n=== 3. online learning ===");
    for r in &split.online {
        velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu)?;
    }
    let rmse_online = heldout_rmse(&velox, &split.heldout, mu);
    println!(
        "held-out RMSE after {} online updates: {rmse_online:.4} ({:+.1}% vs static)",
        split.online.len(),
        (rmse_online / rmse_static - 1.0) * 100.0
    );

    println!("\n=== 4. offline retraining ===");
    let new_version = velox.retrain_offline()?;
    let rmse_retrained = heldout_rmse(&velox, &split.heldout, mu);
    println!(
        "retrained to version {new_version}: held-out RMSE {rmse_retrained:.4} ({:+.1}% vs static)",
        (rmse_retrained / rmse_static - 1.0) * 100.0
    );

    let stats = velox.stats();
    println!("\n=== system stats ===");
    println!("observations logged: {}", stats.observations);
    println!(
        "prediction cache: {} hits / {} misses",
        stats.prediction_cache.0, stats.prediction_cache.1
    );
    println!(
        "cluster locality: {:.1}% of reads local, load imbalance {:.2}",
        stats.cluster.local_fraction() * 100.0,
        stats.cluster.load_imbalance()
    );
    Ok(())
}
