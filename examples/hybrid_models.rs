//! Dynamic model selection: two model families, one serving surface.
//!
//! ```text
//! cargo run --release --example hybrid_models
//! ```
//!
//! The abstract promises "online model maintenance and selection (i.e.,
//! dynamic weighting)". This example runs a collaborative-filtering model
//! (matrix factorization — strong once a user has history) next to a
//! content-based model (identity features over item attributes — works from
//! the first impression) and lets the Hedge-weighted [`EnsembleSelector`]
//! decide, per user, how much to trust each.
//!
//! [`EnsembleSelector`]: velox_core::EnsembleSelector

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;
use velox_core::{EnsembleSelector, WeightScope};
use velox_data::three_way_split;

fn main() -> Result<(), VeloxError> {
    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: 400,
        n_items: 200,
        rank: 6,
        ratings_per_user: 30,
        noise_std: 0.3,
        seed: 0x48B,
        ..Default::default()
    });
    let split = three_way_split(&ds, 0.5, 0.7);
    let executor = JobExecutor::default_parallelism();
    let als = AlsModel::train(
        &split.offline,
        400,
        200,
        AlsConfig { rank: 6, lambda: 0.05, iterations: 8, seed: 2 },
        &executor,
    );
    let mu = als.global_mean;
    let history: Vec<TrainingExample> = split
        .offline
        .iter()
        .map(|r| TrainingExample { uid: r.uid, item: Item::Id(r.item_id), y: r.value - mu })
        .collect();

    // Member 1: collaborative filtering (latent factors).
    let (mf_model, _) = MatrixFactorizationModel::from_als("cf", &als);
    let cf =
        Arc::new(Velox::deploy(Arc::new(mf_model), HashMap::new(), VeloxConfig::single_node()));
    cf.ingest_history(&history)?;

    // Member 2: content-based — a partial view of each item's attributes.
    let content_model = IdentityModel::new("content", 4, 1.0);
    let content = Arc::new(Velox::deploy(
        Arc::new(content_model),
        HashMap::new(),
        VeloxConfig::single_node(),
    ));
    for (item, factors) in ds.true_item_factors.iter().enumerate() {
        content.register_item(item as u64, factors.as_slice()[..4].to_vec());
    }
    content.ingest_history(&history)?;

    // Per-user Hedge weights: different users end up trusting different
    // member models.
    let ensemble = EnsembleSelector::new(
        vec![("cf".into(), Arc::clone(&cf)), ("content".into(), Arc::clone(&content))],
        1.5,
        WeightScope::PerUser,
    );

    println!("streaming {} online observations through the ensemble...\n", split.online.len());
    for r in &split.online {
        ensemble.observe(r.uid, &Item::Id(r.item_id), r.value - mu)?;
    }

    // Held-out accuracy: ensemble vs members.
    let rmse = |f: &dyn Fn(u64, u64) -> f64| -> f64 {
        let mut sse = 0.0;
        for r in &split.heldout {
            let p = f(r.uid, r.item_id);
            sse += (p - (r.value - mu)) * (p - (r.value - mu));
        }
        (sse / split.heldout.len() as f64).sqrt()
    };
    println!("held-out RMSE:");
    println!("  cf member       {:.4}", rmse(&|u, i| cf.predict(u, &Item::Id(i)).unwrap().score));
    println!(
        "  content member  {:.4}",
        rmse(&|u, i| content.predict(u, &Item::Id(i)).unwrap().score)
    );
    println!(
        "  ensemble        {:.4}",
        rmse(&|u, i| ensemble.predict(u, &Item::Id(i)).unwrap().score)
    );

    // Weight diversity across users.
    let mut cf_dominant = 0;
    let mut content_dominant = 0;
    for uid in 0..400u64 {
        match ensemble.dominant_model(uid).0.as_str() {
            "cf" => cf_dominant += 1,
            _ => content_dominant += 1,
        }
    }
    println!(
        "\nper-user model selection: {cf_dominant} users lean cf, {content_dominant} lean content"
    );
    let (name, w) = ensemble.dominant_model(7);
    println!("example: user 7 trusts '{name}' with weight {w:.2}");
    let pred = ensemble.predict(7, &Item::Id(3))?;
    println!(
        "user 7 / item 3 breakdown: {:?} -> ensemble {:.3}",
        pred.breakdown
            .iter()
            .map(|(n, w, s)| format!("{n}: w={w:.2} s={s:+.2}"))
            .collect::<Vec<_>>(),
        pred.score
    );
    Ok(())
}
