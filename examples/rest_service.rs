//! The RESTful client interface (§8: the prototype "exposes a RESTful
//! client interface").
//!
//! ```text
//! cargo run --release --example rest_service
//! ```
//!
//! Starts the HTTP front end on an ephemeral port, then drives it the way
//! an application tier would — plain HTTP requests, no Velox client
//! library — exercising observe/predict/topK/stats/retrain end to end.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use velox::prelude::*;
use velox_rest::RestServer;

fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request =
        format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len());
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    response.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}

fn main() {
    // `--serve <addr>` keeps the server in the foreground for external
    // clients (curl, load generators) instead of running the scripted demo.
    let args: Vec<String> = std::env::args().collect();
    let serve_addr = args
        .iter()
        .position(|a| a == "--serve")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| "127.0.0.1:8366".into()));

    // A deployment: per-user ridge over two song attributes.
    let deployments = Arc::new(VeloxServer::new());
    let velox = Arc::new(Velox::deploy(
        Arc::new(IdentityModel::new("songs", 2, 0.5)),
        HashMap::new(),
        VeloxConfig::single_node(),
    ));
    for song in 0..8u64 {
        velox.register_item(song, vec![(song as f64 * 0.5).sin(), (song as f64 * 0.5).cos()]);
    }
    deployments.install("songs", velox);

    if let Some(addr) = serve_addr {
        let handle = RestServer::new(deployments).serve(&addr).expect("bind");
        println!("velox REST front end listening on http://{} (Ctrl-C to stop)", handle.addr());
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    let handle = RestServer::new(deployments).serve("127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    println!("velox REST front end listening on http://{addr}\n");

    println!("GET /models\n  -> {}", http(addr, "GET", "/models", ""));

    println!("\nPOST /models/songs/observe (three feedback events for user 42)");
    for (song, rating) in [(0u64, 2.0f64), (1, -1.0), (2, 1.5)] {
        let body = format!(r#"{{"uid": 42, "item_id": {song}, "y": {rating}}}"#);
        println!(
            "  song {song}, y={rating:+} -> {}",
            http(addr, "POST", "/models/songs/observe", &body)
        );
    }

    println!("\nPOST /models/songs/predict");
    for song in 0..4u64 {
        let body = format!(r#"{{"uid": 42, "item_id": {song}}}"#);
        println!("  song {song} -> {}", http(addr, "POST", "/models/songs/predict", &body));
    }

    println!("\nPOST /models/songs/topk");
    let body = r#"{"uid": 42, "item_ids": [0,1,2,3,4,5,6,7]}"#;
    println!("  -> {}", http(addr, "POST", "/models/songs/topk", body));

    println!("\nPOST /models/songs/retrain");
    println!("  -> {}", http(addr, "POST", "/models/songs/retrain", ""));

    println!("\nGET /models/songs/stats");
    println!("  -> {}", http(addr, "GET", "/models/songs/stats", ""));

    println!("\nGET /events (lifecycle log)");
    println!("  -> {}", http(addr, "GET", "/events", ""));

    println!("\nGET /metrics (Prometheus exposition at exit)");
    let metrics = http(addr, "GET", "/metrics", "");
    for line in metrics.lines() {
        println!("  {line}");
    }

    handle.shutdown();
    println!("\nserver shut down cleanly.");
}
