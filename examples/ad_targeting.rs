//! Ad targeting with multiple models and bandit exploration.
//!
//! ```text
//! cargo run --release --example ad_targeting
//! ```
//!
//! The §2 scenario: "an advertising service may run a series of ad
//! campaigns, each with separate models over the same set of users." Each
//! campaign is an independent Velox deployment behind one [`VeloxServer`].
//! The example also shows *why* the serving layer owns exploration (§5): a
//! greedy campaign collects feedback only on the ads it already likes and
//! plateaus, while the LinUCB campaign keeps learning.

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;
use velox_core::server::ModelSchema;
use velox_linalg::Vector;

const N_ADS: u64 = 50;
const N_USERS: u64 = 200;
const AD_DIM: usize = 8;
const ROUNDS: usize = 4000;

/// Deterministic ad attribute vectors.
fn ad_attributes(ad: u64) -> Vec<f64> {
    (0..AD_DIM).map(|k| ((ad as f64 + 1.0) * (k as f64 + 1.3) * 0.61).sin()).collect()
}

/// Planted per-user preference over ad attributes: the "true" click model.
fn true_preference(uid: u64) -> Vector {
    Vector::from_vec(
        (0..AD_DIM).map(|k| ((uid as f64 + 2.0) * (k as f64 + 0.7) * 0.39).cos() * 0.5).collect(),
    )
}

/// Simulated click-through: probability follows the planted preference.
fn click(uid: u64, ad: u64, round: usize) -> f64 {
    let affinity = true_preference(uid).dot(&Vector::from_vec(ad_attributes(ad))).unwrap();
    // Deterministic pseudo-random threshold per (uid, ad, round).
    let mut z = uid
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(ad.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(round as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    let p_click = 1.0 / (1.0 + (-3.0 * affinity).exp()); // logistic
    if u < p_click {
        1.0
    } else {
        0.0
    }
}

fn deploy_campaign(name: &str, bandit: BanditChoice) -> Arc<Velox> {
    let model = IdentityModel::new(name, AD_DIM, 1.0);
    let mut config = VeloxConfig::single_node();
    config.bandit = bandit;
    config.seed = 7;
    let velox = Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), config));
    for ad in 0..N_ADS {
        velox.register_item(ad, ad_attributes(ad));
    }
    velox
}

fn run_campaign(server: &VeloxServer, schema: &ModelSchema) -> (f64, usize) {
    let candidates: Vec<Item> = (0..N_ADS).map(Item::Id).collect();
    let mut clicks = 0.0;
    let mut ads_shown = std::collections::HashSet::new();
    for round in 0..ROUNDS {
        let uid = (round as u64 * 17) % N_USERS;
        let resp = server.top_k(schema, uid, &candidates).unwrap();
        let ad = resp.ranked[0].0.max(resp.served) as u64; // served ad
        let served_ad = candidates[resp.served].id().unwrap();
        ads_shown.insert(served_ad);
        let y = click(uid, served_ad, round);
        clicks += y;
        server.observe(schema, uid, &candidates[resp.served], y).unwrap();
        let _ = ad;
    }
    (clicks / ROUNDS as f64, ads_shown.len())
}

fn main() -> Result<(), VeloxError> {
    let server = VeloxServer::new();
    server.install("campaign-greedy", deploy_campaign("campaign-greedy", BanditChoice::Greedy));
    server
        .install("campaign-linucb", deploy_campaign("campaign-linucb", BanditChoice::LinUcb(1.5)));

    println!("simulating {ROUNDS} ad serves per campaign over {N_USERS} users, {N_ADS} ads\n");

    let (ctr_greedy, coverage_greedy) =
        run_campaign(&server, &ModelSchema::named("campaign-greedy"));
    let (ctr_linucb, coverage_linucb) =
        run_campaign(&server, &ModelSchema::named("campaign-linucb"));

    println!("campaign           CTR      catalog coverage");
    println!("greedy             {:.3}    {coverage_greedy}/{N_ADS} ads", ctr_greedy);
    println!("linucb(α=1.5)      {:.3}    {coverage_linucb}/{N_ADS} ads", ctr_linucb);
    println!();
    if coverage_linucb > coverage_greedy {
        println!(
            "LinUCB explored {}x more of the catalog — the feedback-loop escape of §5.",
            coverage_linucb / coverage_greedy.max(1)
        );
    }

    // Campaigns are isolated: their models diverge even on the same users.
    let g = server.deployment(&ModelSchema::named("campaign-greedy"))?;
    let l = server.deployment(&ModelSchema::named("campaign-linucb"))?;
    println!(
        "\nindependent deployments: greedy logged {} observations, linucb {}",
        g.stats().observations,
        l.stats().observations
    );
    Ok(())
}
