//! News personalization with computed features, cold-start bootstrapping,
//! and drift-triggered retraining.
//!
//! ```text
//! cargo run --release --example news_personalization
//! ```
//!
//! Articles arrive continuously and have *content* features (no ratings
//! history), so the feature function is computational: random Fourier
//! features over the article's topic vector (§6's "computational feature
//! function" case — the basis is the global state θ, user weights
//! personalize on top). Demonstrates:
//!
//! - serving brand-new articles (`Item::Raw`) that were never trained on,
//! - the §5 mean-weight bootstrap for brand-new readers,
//! - the §4.3 staleness detector firing on a topic-preference drift and
//!   auto-triggering an offline retrain.

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;
use velox_linalg::Vector;

const TOPIC_DIM: usize = 6; // politics, sports, tech, arts, science, local
const FEATURE_DIM: usize = 64;

fn article_topics(article: u64) -> Vec<f64> {
    // Each article is a mixture over topics, deterministic in its id.
    let mut v: Vec<f64> = (0..TOPIC_DIM)
        .map(|k| (((article as f64 + 1.0) * (k as f64 + 0.5) * 0.77).sin() + 1.0) / 2.0)
        .collect();
    let norm: f64 = v.iter().sum();
    for x in &mut v {
        *x /= norm;
    }
    v
}

/// A reader's true engagement with an article under preference `pref`.
fn engagement(pref: &[f64], article: u64) -> f64 {
    article_topics(article).iter().zip(pref).map(|(t, p)| t * p).sum()
}

fn main() -> Result<(), VeloxError> {
    let model = RandomFourierModel::new("news", TOPIC_DIM, FEATURE_DIM, 1.5, 1.0, 99);
    let mut config = VeloxConfig::single_node();
    config.auto_retrain = true;
    config.staleness_threshold = 2.0;
    config.staleness_warmup = 400;
    config.bandit = BanditChoice::Thompson(1.0);
    let velox = Velox::deploy(Arc::new(model), HashMap::new(), config);

    // The morning's catalog.
    for article in 0..120u64 {
        velox.register_item(article, article_topics(article));
    }

    println!("=== phase 1: readers build profiles ===");
    // 30 readers; reader r initially loves topic r % 6.
    let initial_pref = |uid: u64| -> Vec<f64> {
        let mut p = vec![0.1; TOPIC_DIM];
        p[(uid as usize) % TOPIC_DIM] = 1.0;
        p
    };
    for round in 0..40u64 {
        for uid in 0..30u64 {
            let article = (round * 31 + uid * 7) % 120;
            let y = engagement(&initial_pref(uid), article);
            velox.observe(uid, &Item::Id(article), y)?;
        }
    }
    let s = velox.stats();
    println!("{} observations, mean loss {:.4}", s.observations, s.mean_loss);

    // Reader 3 loves topic 3 (arts): their top article should be arts-heavy.
    let candidates: Vec<Item> = (0..120).map(Item::Id).collect();
    let top = velox.top_k(3, &candidates)?;
    let best_article = top.ranked[0].0 as u64;
    let topics = article_topics(best_article);
    println!(
        "reader 3's top article: {best_article} (topic-3 weight {:.2}, max topic {:.2})",
        topics[3],
        topics.iter().cloned().fold(0.0, f64::max)
    );

    println!("\n=== phase 2: a brand-new reader (cold start) ===");
    let newbie = 999u64;
    let resp = velox.predict(newbie, &Item::Id(5))?;
    println!(
        "new reader served from the mean-weight bootstrap: score {:.3} (bootstrapped: {})",
        resp.score, resp.bootstrapped
    );

    println!("\n=== phase 3: breaking news — a never-seen article ===");
    // Raw items serve immediately; no catalog registration needed.
    let breaking = Item::Raw(Vector::from_vec(vec![0.7, 0.0, 0.2, 0.0, 0.1, 0.0]));
    let resp = velox.predict(3, &breaking)?;
    println!("fresh article scored on content alone: {:.3}", resp.score);

    println!("\n=== phase 4: preference drift triggers retraining ===");
    // Everyone's interests rotate by three topics. Loss rises, the
    // staleness detector fires, and Velox retrains itself.
    let drifted_pref = |uid: u64| -> Vec<f64> {
        let mut p = vec![0.1; TOPIC_DIM];
        p[((uid as usize) + 3) % TOPIC_DIM] = 1.0;
        p
    };
    let version_before = velox.model_version();
    let mut retrained_at = None;
    'outer: for round in 0..200u64 {
        for uid in 0..30u64 {
            let article = (round * 13 + uid * 11) % 120;
            let y = engagement(&drifted_pref(uid), article);
            let outcome = velox.observe(uid, &Item::Id(article), y)?;
            if outcome.retrained {
                retrained_at = Some(round);
                break 'outer;
            }
        }
    }
    match retrained_at {
        Some(round) => println!(
            "staleness detector fired after ~{} drifted observations; retrained v{} -> v{}",
            round * 30,
            version_before,
            velox.model_version()
        ),
        None => println!("no retrain triggered (unexpected)"),
    }
    let s = velox.stats();
    println!(
        "final: version {}, {} retrains, mean loss {:.4}",
        s.model_version, s.retrains, s.mean_loss
    );
    Ok(())
}
