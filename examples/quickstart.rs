//! Quickstart: deploy a model, serve predictions, learn from feedback.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The five-minute tour of the Velox API from Listing 1 of the paper:
//! `predict`, `topK`, and `observe`, on the simplest possible model (per-user
//! ridge regression over raw item features).

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;

fn main() -> Result<(), VeloxError> {
    // 1. A model: identity features of dimension 3 — each item is described
    //    by [tempo, energy, acousticness] and each user learns a personal
    //    weight per attribute.
    let model = IdentityModel::new("quickstart", 3, 0.5);
    let velox = Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node());

    // 2. A catalog: four songs with hand-written attributes.
    velox.register_item(0, vec![0.9, 0.8, 0.1]); // fast, loud, electric
    velox.register_item(1, vec![0.8, 0.9, 0.2]); // fast, loud
    velox.register_item(2, vec![0.2, 0.3, 0.9]); // slow, quiet, acoustic
    velox.register_item(3, vec![0.1, 0.2, 0.8]); // slow, quiet, acoustic

    let alice = 1u64;

    // 3. Before any feedback, Alice is served the bootstrap (mean-user)
    //    model — there are no users yet, so scores are zero.
    let cold = velox.predict(alice, &Item::Id(0))?;
    println!(
        "cold-start prediction for song 0: {:.3} (bootstrapped: {})",
        cold.score, cold.bootstrapped
    );

    // 4. Feedback: Alice loves the acoustic tracks, dislikes the loud ones.
    velox.observe(alice, &Item::Id(0), -1.0)?;
    velox.observe(alice, &Item::Id(2), 1.0)?;
    velox.observe(alice, &Item::Id(3), 0.8)?;

    // 5. Point predictions now reflect her taste ...
    for song in 0..4u64 {
        let p = velox.predict(alice, &Item::Id(song))?;
        println!("song {song}: predicted score {:+.3} (cached: {})", p.score, p.cached);
    }

    // 6. ... and topK ranks the catalog for her. The `served` index is the
    //    bandit's pick, which may explore an uncertain song rather than the
    //    argmax.
    let items: Vec<Item> = (0..4).map(Item::Id).collect();
    let top = velox.top_k(alice, &items)?;
    println!(
        "topK ranking: {:?}",
        top.ranked.iter().map(|(i, s)| format!("song {i}: {s:+.2}")).collect::<Vec<_>>()
    );
    println!("served: song {} (randomized: {})", top.served, top.randomized);

    // 7. System observability.
    let stats = velox.stats();
    println!(
        "stats: version {}, {} observations, {} online users, mean loss {:.3}",
        stats.model_version, stats.observations, stats.online_users, stats.mean_loss
    );
    Ok(())
}
