//! Operator's view: model versions, quality monitoring, and rollback.
//!
//! ```text
//! cargo run --release --example lifecycle_ops
//! ```
//!
//! The §2 "model lifecycle management" challenge from the administrator's
//! chair: watch per-user error aggregates, spot underperforming users, roll
//! a bad model version back, and inspect every observability surface Velox
//! exposes.

use std::sync::Arc;

use velox::prelude::*;
use velox_data::three_way_split;

fn main() -> Result<(), VeloxError> {
    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: 300,
        n_items: 150,
        rank: 6,
        ratings_per_user: 24,
        noise_std: 0.3,
        seed: 8080,
        ..Default::default()
    });
    let split = three_way_split(&ds, 0.5, 0.7);
    let executor = JobExecutor::default_parallelism();
    let als = AlsModel::train(
        &split.offline,
        ds.config.n_users,
        ds.config.n_items,
        AlsConfig { rank: 6, lambda: 0.05, iterations: 8, seed: 4 },
        &executor,
    );
    let mu = als.global_mean;
    let (model, weights) = MatrixFactorizationModel::from_als("ops-demo", &als);
    let mut config = VeloxConfig::single_node();
    config.crossval_holdout_every = 10; // 10% prequential holdout
    let velox = Velox::deploy(Arc::new(model), weights, config);

    println!("=== normal operation: v{} ===", velox.model_version());
    for r in &split.online {
        velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu)?;
    }
    let s = velox.stats();
    println!(
        "mean loss {:.4}, generalization loss {:.4} ({} observations)",
        s.mean_loss,
        s.generalization_loss.unwrap_or(f64::NAN),
        s.observations
    );

    // Per-user diagnostics: nobody should stand out under honest traffic.
    let outliers = velox.underperforming_users(3.0, 5);
    println!("users >3x global mean loss: {outliers:?}");

    println!("\n=== v2: a retrain lands ===");
    velox.retrain_offline()?;
    println!(
        "now serving v{}; rollback targets: {:?}",
        velox.model_version(),
        velox.rollback_versions()
    );

    println!("\n=== incident: v3 is a bad deploy ===");
    // Simulate a broken retrain by feeding garbage labels then retraining —
    // the new version learns the garbage.
    for r in split.online.iter().take(2000) {
        velox.observe(r.uid, &Item::Id(r.item_id), -(r.value - mu) * 3.0)?;
    }
    velox.retrain_offline()?;
    let bad_version = velox.model_version();
    let probe = velox.predict(7, &Item::Id(3))?.score;
    println!("v{bad_version} deployed; user 7 / item 3 now scores {probe:+.3}");

    println!("\n=== rollback ===");
    let targets = velox.rollback_versions();
    let restore_to = targets[targets.len() - 1]; // the pre-incident version
    let new_v = velox.rollback(restore_to)?;
    let probe_after = velox.predict(7, &Item::Id(3))?.score;
    println!(
        "rolled back to v{restore_to} (serving as v{new_v}); user 7 / item 3 scores {probe_after:+.3}"
    );
    println!("rollback targets now: {:?}", velox.rollback_versions());

    println!("\n=== final observability dump ===");
    let s = velox.stats();
    println!("model version:        {}", s.model_version);
    println!("retrains:             {}", s.retrains);
    println!("observations:         {}", s.observations);
    println!("online users:         {}", s.online_users);
    println!("prediction cache:     {:?} (hits, misses, evictions)", s.prediction_cache);
    println!("cluster local reads:  {:.1}%", s.cluster.local_fraction() * 100.0);
    println!("stale:                {}", s.stale);

    println!("\n=== lifecycle event log ===");
    for event in velox.registry().recent_events() {
        let fields: Vec<String> =
            event.kind.fields().iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("#{:<3} {:<18} {}", event.seq, event.kind.name(), fields.join(" "));
    }

    println!("\n=== metrics snapshot (Prometheus exposition) ===");
    print!("{}", velox.registry().render_prometheus(&[]));
    Ok(())
}
